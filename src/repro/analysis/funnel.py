"""The refinement funnel as a printable series (Sec. IV-A/B running text)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.refine import RefinementResult


@dataclass(frozen=True)
class FunnelRow:
    """One stage of the candidate refinement funnel."""

    stage: str
    nft_count: int
    component_count: int
    account_count: int


def funnel_rows(refinement: RefinementResult) -> List[FunnelRow]:
    """The four funnel stages in order."""
    return [
        FunnelRow(
            stage=stage.name,
            nft_count=stage.nft_count,
            component_count=stage.component_count,
            account_count=stage.account_count,
        )
        for stage in refinement.stages
    ]
