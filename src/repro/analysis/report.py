"""One-stop reproduction report.

:class:`PaperReport` wires the whole reproduction together: build the
dataset from a world's node (Sec. III), run the detection pipeline
(Sec. IV), and regenerate every table and figure of the evaluation
(Sec. V-VII).  The benchmark harness, the examples and EXPERIMENTS.md
all go through this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.figures import (
    AccountCountFigure,
    LifetimeCDF,
    VolumeCDFSeries,
    figure_account_counts,
    figure_creation_timeline,
    figure_lifetime_cdf,
    figure_patterns,
    figure_venn,
    figure_volume_cdf,
)
from repro.analysis.funnel import FunnelRow, funnel_rows
from repro.analysis.tables import (
    TableOneRow,
    TableThreeColumn,
    TableTwoRow,
    format_table,
    table_one,
    table_three,
    table_two,
)
from repro.core.characterization.serial import SerialTraderStats, serial_trader_stats
from repro.core.characterization.temporal import CollectionTimeline
from repro.core.detectors.base import DetectionConfig
from repro.core.detectors.pipeline import PipelineResult, WashTradingPipeline
from repro.core.profitability.resale import ResaleProfitability, analyze_resale_profitability
from repro.core.profitability.rewards import RewardProfitability, analyze_reward_profitability
from repro.ingest.dataset import NFTDataset, build_dataset
from repro.simulation.world import World
from repro.utils.currency import wei_to_eth


@dataclass
class PaperReport:
    """Runs and caches the full reproduction for one world."""

    world: World
    detection_config: Optional[DetectionConfig] = None
    #: Detection backend: "legacy" (networkx reference) or "columnar".
    engine: str = "legacy"
    #: Worker processes for the columnar engine (0/1 = in-process serial).
    workers: int = 0
    #: Detection methods to run; None keeps the pipeline's paper set.
    enabled_methods: Optional[frozenset] = None
    _dataset: Optional[NFTDataset] = field(default=None, repr=False)
    _result: Optional[PipelineResult] = field(default=None, repr=False)

    # -- pipeline stages -----------------------------------------------------------
    @property
    def dataset(self) -> NFTDataset:
        """The Sec. III dataset (built lazily and cached)."""
        if self._dataset is None:
            self._dataset = build_dataset(
                self.world.node, self.world.marketplace_addresses
            )
        return self._dataset

    @property
    def result(self) -> PipelineResult:
        """The Sec. IV pipeline result (run lazily and cached)."""
        if self._result is None:
            pipeline = WashTradingPipeline(
                labels=self.world.labels,
                is_contract=self.world.is_contract,
                config=self.detection_config,
                engine=self.engine,
                workers=self.workers,
                enabled_methods=self.enabled_methods,
            )
            self._result = pipeline.run(self.dataset)
        return self._result

    def run(self) -> PipelineResult:
        """Force dataset construction and detection; return the result."""
        return self.result

    # -- tables ----------------------------------------------------------------------
    def table_one(self) -> List[TableOneRow]:
        """Table I: marketplace overview."""
        return table_one(self.dataset, self.world.oracle)

    def table_two(self) -> List[TableTwoRow]:
        """Table II: wash trading per marketplace."""
        return table_two(self.result, self.dataset, self.world.oracle)

    def reward_profitability(self) -> Dict[str, RewardProfitability]:
        """Per-venue reward-farming profitability (feeds Table III)."""
        return analyze_reward_profitability(
            self.result, self.dataset, self.world.market_context()
        )

    def table_three(self) -> List[TableThreeColumn]:
        """Table III: token rewards and wash trading."""
        return table_three(self.reward_profitability())

    def resale_profitability(self) -> ResaleProfitability:
        """Sec. VI-B resale profitability."""
        return analyze_resale_profitability(
            self.result, self.dataset, self.world.market_context()
        )

    # -- figures -----------------------------------------------------------------------
    def figure_venn(self) -> Dict[str, int]:
        """Fig. 2 region sizes."""
        return figure_venn(self.result)

    def figure_volume_cdf(self) -> List[VolumeCDFSeries]:
        """Fig. 3 series."""
        return figure_volume_cdf(self.result, self.dataset, self.world.oracle)

    def figure_lifetime_cdf(self) -> LifetimeCDF:
        """Fig. 4 series."""
        return figure_lifetime_cdf(self.result)

    def figure_creation_timeline(self) -> List[CollectionTimeline]:
        """Fig. 5 series."""
        return figure_creation_timeline(
            self.result,
            self.world.collection_creation_timestamps(),
            names=self.world.collection_names(),
        )

    def figure_account_counts(self) -> AccountCountFigure:
        """Fig. 6 series."""
        return figure_account_counts(self.result)

    def figure_patterns(self) -> Dict[str, int]:
        """Fig. 7 series."""
        return figure_patterns(self.result)

    # -- running-text statistics -----------------------------------------------------------
    def funnel(self) -> List[FunnelRow]:
        """The Sec. IV-A/B refinement funnel."""
        return funnel_rows(self.result.refinement)

    def serial_traders(self) -> SerialTraderStats:
        """The Sec. V-D serial wash trader statistics."""
        return serial_trader_stats(self.result.activities)

    # -- rendering ----------------------------------------------------------------------------
    def render_text(self) -> str:
        """A full plain-text reproduction report."""
        lines: List[str] = []
        oracle = self.world.oracle

        lines.append("=" * 78)
        lines.append("NFT wash trading reproduction report")
        lines.append("=" * 78)

        lines.append("")
        lines.append("Dataset (Sec. III)")
        lines.append(f"  ERC-721-shaped Transfer events : {self.dataset.scan.event_count}")
        lines.append(f"  Emitting contracts             : {self.dataset.scan.contract_count}")
        lines.append(
            f"  ERC-165 compliant contracts    : {self.dataset.compliance.compliant_count}"
            f" ({self.dataset.compliance.compliance_ratio:.1%})"
        )
        lines.append(f"  NFTs with transfers            : {self.dataset.nft_count}")
        lines.append(f"  Transfers retained             : {self.dataset.transfer_count}")

        lines.append("")
        lines.append("Table I - marketplace overview")
        lines.append(
            format_table(
                ["NFTM", "NFTs", "Transactions", "Volume ($)"],
                [
                    [row.marketplace, row.nft_count, row.transaction_count, f"{row.volume_usd:,.0f}"]
                    for row in self.table_one()
                ],
            )
        )

        lines.append("")
        lines.append("Refinement funnel (Sec. IV)")
        lines.append(
            format_table(
                ["stage", "NFTs", "components", "accounts"],
                [
                    [row.stage, row.nft_count, row.component_count, row.account_count]
                    for row in self.funnel()
                ],
            )
        )

        result = self.result
        lines.append("")
        lines.append("Detection (Sec. IV-C/D)")
        lines.append(f"  Confirmed activities : {result.activity_count}")
        lines.append(
            f"  Artificial volume    : {wei_to_eth(result.total_wash_volume_wei):,.1f} ETH"
        )
        for method, count in sorted(result.count_by_method().items(), key=lambda kv: kv[0].value):
            lines.append(f"  {method.value:<16} : {count}")
        lines.append(f"  Venn regions         : {self.figure_venn()}")

        lines.append("")
        lines.append("Table II - wash trading per marketplace")
        lines.append(
            format_table(
                ["NFTM", "#NFT", "Volume ($)", "Share of venue volume"],
                [
                    [
                        row.marketplace,
                        row.washed_nft_count,
                        f"{row.wash_volume_usd:,.0f}",
                        f"{row.share_of_marketplace_volume:.2%}",
                    ]
                    for row in self.table_two()
                ],
            )
        )

        lifetime = self.figure_lifetime_cdf()
        lines.append("")
        lines.append("Temporal analysis (Fig. 4)")
        lines.append(
            f"  <= 1 day : {lifetime.activities_within_one_day}"
            f" ({lifetime.fraction_within_one_day:.1%})"
        )
        lines.append(
            f"  <= 10 days : {lifetime.activities_within_ten_days}"
            f" ({lifetime.fraction_within_ten_days:.1%})"
        )

        accounts_figure = self.figure_account_counts()
        lines.append("")
        lines.append("Accounts per activity (Fig. 6)")
        for key, fraction in accounts_figure.fractions.items():
            lines.append(f"  {key:>3} accounts : {accounts_figure.counts[key]:>5} ({fraction:.1%})")

        lines.append("")
        lines.append("Patterns (Fig. 7)")
        for key, count in self.figure_patterns().items():
            lines.append(f"  {key:<12}: {count}")

        serial = self.serial_traders()
        lines.append("")
        lines.append("Serial wash traders (Sec. V-D)")
        lines.append(
            f"  Serial accounts : {serial.serial_accounts} / {serial.total_accounts}"
            f" ({serial.serial_account_fraction:.1%})"
        )
        lines.append(
            f"  Activities with a serial participant : {serial.activities_with_serial}"
            f" ({serial.serial_activity_fraction:.1%})"
        )

        lines.append("")
        lines.append("Table III - token rewards and wash trading")
        lines.append(
            format_table(
                ["NFTM", "outcome", "#", "mean vol (ETH)", "mean gain/loss ($)", "total ($)"],
                [
                    [
                        column.marketplace,
                        column.outcome,
                        column.event_count,
                        f"{column.mean_volume_eth:,.2f}",
                        f"{column.mean_gain_or_loss_usd:,.0f}",
                        f"{column.total_gain_or_loss_usd:,.0f}",
                    ]
                    for column in self.table_three()
                ],
            )
        )

        resale = self.resale_profitability()
        lines.append("")
        lines.append("NFT resale profitability (Sec. VI-B)")
        lines.append(f"  Activities examined      : {resale.total_activities}")
        lines.append(f"  Never resold             : {resale.unsold_count} ({resale.unsold_fraction:.1%})")
        lines.append(f"  Success rate (price only): {resale.success_rate_gross():.1%}")
        lines.append(f"  Success rate (with fees) : {resale.success_rate_net():.1%}")
        lines.append(f"  Success rate (USD)       : {resale.success_rate_usd():.1%}")

        return "\n".join(lines)
