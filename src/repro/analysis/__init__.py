"""Regeneration of the paper's tables and figures from a pipeline run."""

from repro.analysis.cdf import empirical_cdf, cdf_at
from repro.analysis.tables import (
    TableOneRow,
    TableTwoRow,
    TableThreeColumn,
    table_one,
    table_two,
    table_three,
    format_table,
)
from repro.analysis.figures import (
    figure_venn,
    figure_volume_cdf,
    figure_lifetime_cdf,
    figure_creation_timeline,
    figure_account_counts,
    figure_patterns,
)
from repro.analysis.funnel import funnel_rows
from repro.analysis.report import PaperReport

__all__ = [
    "empirical_cdf",
    "cdf_at",
    "TableOneRow",
    "TableTwoRow",
    "TableThreeColumn",
    "table_one",
    "table_two",
    "table_three",
    "format_table",
    "figure_venn",
    "figure_volume_cdf",
    "figure_lifetime_cdf",
    "figure_creation_timeline",
    "figure_account_counts",
    "figure_patterns",
    "funnel_rows",
    "PaperReport",
]
