"""The paper's tables as data rows plus a plain-text formatter.

* Table I  -- per-venue NFT counts, transaction counts and USD volume.
* Table II -- per-venue wash trading (washed NFTs, wash volume, share).
* Table III -- reward farming gains and losses on LooksRare and Rarible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.characterization.volume import marketplace_wash_stats
from repro.core.detectors.pipeline import PipelineResult
from repro.core.profitability.rewards import RewardProfitability
from repro.ingest.dataset import NFTDataset
from repro.services.oracle import PriceOracle
from repro.utils.currency import wei_to_eth


@dataclass(frozen=True)
class TableOneRow:
    """One row of Table I."""

    marketplace: str
    nft_count: int
    transaction_count: int
    volume_usd: float


@dataclass(frozen=True)
class TableTwoRow:
    """One row of Table II."""

    marketplace: str
    washed_nft_count: int
    wash_volume_usd: float
    share_of_marketplace_volume: float


@dataclass(frozen=True)
class TableThreeColumn:
    """One (venue, outcome class) column of Table III."""

    marketplace: str
    outcome: str
    event_count: int
    min_volume_eth: float
    max_volume_eth: float
    mean_volume_eth: float
    extreme_gain_or_loss_usd: float
    mean_gain_or_loss_usd: float
    total_gain_or_loss_usd: float


def _dataset_usd(dataset: NFTDataset, oracle: PriceOracle, volume_wei: int, reference_ts: int) -> float:
    return oracle.wei_to_usd(volume_wei, reference_ts)


def table_one(dataset: NFTDataset, oracle: PriceOracle) -> List[TableOneRow]:
    """Table I: per-venue activity, sorted by USD volume (largest first).

    USD conversion uses the timestamp of each venue transaction's day via
    per-transfer pricing, matching how the paper values volumes.
    """
    per_venue_usd: Dict[str, float] = {name: 0.0 for name in dataset.marketplace_addresses}
    seen_tx: Dict[str, set] = {name: set() for name in dataset.marketplace_addresses}
    for transfers in dataset.transfers_by_nft.values():
        for transfer in transfers:
            if transfer.marketplace is None:
                continue
            if transfer.tx_hash in seen_tx[transfer.marketplace]:
                continue
            seen_tx[transfer.marketplace].add(transfer.tx_hash)
            per_venue_usd[transfer.marketplace] += oracle.wei_to_usd(
                transfer.price_wei, transfer.timestamp
            )

    activity = dataset.marketplace_activity()
    rows = [
        TableOneRow(
            marketplace=name,
            nft_count=venue.nft_count,
            transaction_count=venue.transaction_count,
            volume_usd=per_venue_usd[name],
        )
        for name, venue in activity.items()
    ]
    rows.sort(key=lambda row: row.volume_usd, reverse=True)
    return rows


def table_two(
    result: PipelineResult, dataset: NFTDataset, oracle: PriceOracle
) -> List[TableTwoRow]:
    """Table II: wash trading per venue, sorted by wash volume."""
    stats = marketplace_wash_stats(result, dataset)

    wash_usd: Dict[str, float] = {name: 0.0 for name in stats}
    total_usd: Dict[str, float] = {name: 0.0 for name in stats}
    for activity in result.activities:
        for transfer in activity.component.transfers:
            if transfer.marketplace is None:
                continue
            wash_usd[transfer.marketplace] += oracle.wei_to_usd(
                transfer.price_wei, transfer.timestamp
            )
    seen_tx: Dict[str, set] = {name: set() for name in stats}
    for transfers in dataset.transfers_by_nft.values():
        for transfer in transfers:
            if transfer.marketplace is None or transfer.tx_hash in seen_tx[transfer.marketplace]:
                continue
            seen_tx[transfer.marketplace].add(transfer.tx_hash)
            total_usd[transfer.marketplace] += oracle.wei_to_usd(
                transfer.price_wei, transfer.timestamp
            )

    rows = []
    for name, venue_stats in stats.items():
        share = wash_usd[name] / total_usd[name] if total_usd[name] > 0 else 0.0
        rows.append(
            TableTwoRow(
                marketplace=name,
                washed_nft_count=venue_stats.washed_nft_count,
                wash_volume_usd=wash_usd[name],
                share_of_marketplace_volume=share,
            )
        )
    rows.sort(key=lambda row: row.wash_volume_usd, reverse=True)
    return rows


def table_three(
    profitability: Mapping[str, RewardProfitability]
) -> List[TableThreeColumn]:
    """Table III: reward-farming outcomes per venue and outcome class."""
    columns: List[TableThreeColumn] = []
    for venue in sorted(profitability):
        stats = profitability[venue]
        for outcome_name, successful in (("successful", True), ("failed", False)):
            group = stats.successful if successful else stats.failed
            volume = stats.volume_stats_eth(successful)
            gain = stats.gain_stats_usd(successful)
            columns.append(
                TableThreeColumn(
                    marketplace=venue,
                    outcome=outcome_name,
                    event_count=len(group),
                    min_volume_eth=volume["min"],
                    max_volume_eth=volume["max"],
                    mean_volume_eth=volume["mean"],
                    extreme_gain_or_loss_usd=gain["max"],
                    mean_gain_or_loss_usd=gain["mean"],
                    total_gain_or_loss_usd=gain["total"],
                )
            )
    return columns


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a simple fixed-width text table."""
    cells = [[str(item) for item in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)),
        "  ".join("-" * width for width in widths),
    ]
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)
