"""Empirical CDF helpers used by the figure generators."""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Sequence, Tuple


def empirical_cdf(values: Sequence[float]) -> List[Tuple[float, float]]:
    """The empirical CDF of a sample as (value, cumulative fraction) points.

    Duplicate values collapse into a single point carrying the cumulative
    fraction after all of them; an empty sample yields an empty list.
    """
    if not values:
        return []
    ordered = sorted(values)
    total = len(ordered)
    points: List[Tuple[float, float]] = []
    for index, value in enumerate(ordered, start=1):
        if points and points[-1][0] == value:
            points[-1] = (value, index / total)
        else:
            points.append((value, index / total))
    return points


def cdf_at(values: Sequence[float], threshold: float) -> float:
    """Fraction of the sample less than or equal to ``threshold``."""
    if not values:
        return 0.0
    ordered = sorted(values)
    return bisect_right(ordered, threshold) / len(ordered)


def quantile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) of the sample using nearest-rank."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    ordered = sorted(values)
    rank = min(int(q * len(ordered)), len(ordered) - 1)
    return ordered[rank]
