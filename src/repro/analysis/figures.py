"""The paper's figures as data series.

Each helper returns the series a plotting library would consume; the
benchmark harness prints the series (or summary points on them) so the
figure can be compared against the paper without a display.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.core.activity import DetectionMethod
from repro.core.characterization.patterns import (
    account_count_distribution,
    account_count_fractions,
    classify_activities,
)
from repro.core.characterization.temporal import (
    CollectionTimeline,
    lifetimes_seconds,
    top_collections_timeline,
)
from repro.core.characterization.volume import legitimate_activity_volumes_wei
from repro.core.detectors.pipeline import PipelineResult
from repro.analysis.cdf import empirical_cdf
from repro.ingest.dataset import NFTDataset
from repro.services.oracle import PriceOracle
from repro.utils.timeutil import SECONDS_PER_DAY


# -- Fig. 2: Venn diagram ------------------------------------------------------------
def figure_venn(result: PipelineResult) -> Dict[str, int]:
    """Fig. 2: the region sizes of the three-method Venn diagram.

    Keys are '+'-joined sorted method names ("common-exit+common-funder"
    for the pairwise overlap, etc.).
    """
    regions: Dict[str, int] = {}
    for methods, count in result.venn_counts().items():
        key = "+".join(sorted(method.value for method in methods))
        regions[key] = count
    return regions


# -- Fig. 3: wash vs legitimate volume CDFs ---------------------------------------------
@dataclass
class VolumeCDFSeries:
    """One CDF series of Fig. 3."""

    label: str
    points: List[Tuple[float, float]]


def figure_volume_cdf(
    result: PipelineResult, dataset: NFTDataset, oracle: PriceOracle
) -> List[VolumeCDFSeries]:
    """Fig. 3: per-venue wash activity volume CDFs vs the legit-volume CDF.

    Volumes are in USD, valued at each activity's first trade.
    """
    series: List[VolumeCDFSeries] = []

    legit_volumes_usd = []
    for nft, transfers in dataset.transfers_by_nft.items():
        if nft in result.washed_nfts():
            continue
        total = sum(transfer.price_wei for transfer in transfers)
        if total <= 0:
            continue
        legit_volumes_usd.append(oracle.wei_to_usd(total, transfers[0].timestamp))
    series.append(
        VolumeCDFSeries(label="Volume w/o wash trading", points=empirical_cdf(legit_volumes_usd))
    )

    by_venue: Dict[str, List[float]] = {}
    for activity in result.activities:
        venue = activity.component.dominant_marketplace()
        if venue is None:
            continue
        usd = oracle.wei_to_usd(activity.volume_wei, activity.component.first_timestamp)
        by_venue.setdefault(venue, []).append(usd)
    for venue in sorted(by_venue):
        series.append(
            VolumeCDFSeries(label=venue, points=empirical_cdf(by_venue[venue]))
        )
    return series


# -- Fig. 4: lifetime CDF --------------------------------------------------------------------
@dataclass
class LifetimeCDF:
    """Fig. 4: the lifetime CDF plus the two highlighted points."""

    points_days: List[Tuple[float, float]]
    fraction_within_one_day: float
    fraction_within_ten_days: float
    activities_within_one_day: int
    activities_within_ten_days: int


def figure_lifetime_cdf(result: PipelineResult) -> LifetimeCDF:
    """Fig. 4: CDF of activity lifetimes, in days."""
    lifetimes_days = [value / SECONDS_PER_DAY for value in lifetimes_seconds(result.activities)]
    total = len(lifetimes_days)
    within_one = sum(1 for value in lifetimes_days if value <= 1.0)
    within_ten = sum(1 for value in lifetimes_days if value <= 10.0)
    return LifetimeCDF(
        points_days=empirical_cdf(lifetimes_days),
        fraction_within_one_day=within_one / total if total else 0.0,
        fraction_within_ten_days=within_ten / total if total else 0.0,
        activities_within_one_day=within_one,
        activities_within_ten_days=within_ten,
    )


# -- Fig. 5: creation timeline -----------------------------------------------------------------
def figure_creation_timeline(
    result: PipelineResult,
    creation_timestamps: Mapping[str, int],
    names: Optional[Mapping[str, str]] = None,
    top_n: int = 10,
) -> List[CollectionTimeline]:
    """Fig. 5: wash events vs creation date for the top affected collections."""
    return top_collections_timeline(
        result, creation_timestamps, names=names, top_n=top_n
    )


# -- Fig. 6: accounts per activity ----------------------------------------------------------------
@dataclass
class AccountCountFigure:
    """Fig. 6: counts and fractions of activities per participant count."""

    counts: Dict[str, int]
    fractions: Dict[str, float]


def figure_account_counts(result: PipelineResult) -> AccountCountFigure:
    """Fig. 6: the distribution of the number of accounts per activity."""
    return AccountCountFigure(
        counts=account_count_distribution(result.activities),
        fractions=account_count_fractions(result.activities),
    )


# -- Fig. 7: structural patterns ---------------------------------------------------------------------
def figure_patterns(result: PipelineResult) -> Dict[str, int]:
    """Fig. 7: occurrences of each canonical SCC pattern.

    Keys are "pattern-<id>" plus "other" for shapes outside the library.
    """
    raw = classify_activities(result.activities)
    figure: Dict[str, int] = {}
    for pattern_id, count in sorted(
        raw.items(), key=lambda item: (item[0] is None, item[0])
    ):
        key = "other" if pattern_id is None else f"pattern-{pattern_id}"
        figure[key] = count
    return figure
