"""Daily USD price oracle.

Every dollar figure in the paper (Tables I-III, the per-collection wash
volumes, the gain/loss analysis) converts on-chain amounts to USD at the
price of the day the value moved.  The oracle provides deterministic
daily series for ETH and the marketplace reward tokens; their levels are
in the right ballpark for the 2021-2022 window but the exact values are
not meant to match history.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.utils.currency import wei_to_eth
from repro.utils.timeutil import SECONDS_PER_DAY, SIMULATION_EPOCH, day_of


@dataclass(frozen=True)
class PriceSeries:
    """A deterministic daily USD price series.

    The price follows ``base * (1 + trend)^years`` modulated by two
    sinusoids (a slow market cycle and a faster wobble); all parameters
    are fixed so two runs agree to the last digit.
    """

    symbol: str
    base_usd: float
    yearly_growth: float = 0.0
    cycle_amplitude: float = 0.15
    cycle_period_days: float = 180.0
    wobble_amplitude: float = 0.05
    wobble_period_days: float = 11.0
    floor_usd: float = 0.01

    def price_on_day(self, day_index: int) -> float:
        """USD price on a given day index (days since the UNIX epoch)."""
        origin_day = SIMULATION_EPOCH // SECONDS_PER_DAY
        days_since_origin = day_index - origin_day
        years = days_since_origin / 365.0
        trend = self.base_usd * math.pow(1.0 + self.yearly_growth, years)
        cycle = 1.0 + self.cycle_amplitude * math.sin(
            2.0 * math.pi * days_since_origin / self.cycle_period_days
        )
        wobble = 1.0 + self.wobble_amplitude * math.sin(
            2.0 * math.pi * days_since_origin / self.wobble_period_days
        )
        return max(trend * cycle * wobble, self.floor_usd)

    def price_at(self, timestamp: int) -> float:
        """USD price at a timestamp (constant within a day)."""
        return self.price_on_day(day_of(timestamp))


class PriceOracle:
    """Registry of price series, with wei and token-unit conversions."""

    def __init__(self) -> None:
        self._series: Dict[str, PriceSeries] = {}
        self.register(PriceSeries(symbol="ETH", base_usd=2600.0, yearly_growth=0.45))
        self.register(PriceSeries(symbol="WETH", base_usd=2600.0, yearly_growth=0.45))
        self.register(
            PriceSeries(symbol="LOOKS", base_usd=3.8, yearly_growth=-0.35, cycle_amplitude=0.3)
        )
        self.register(
            PriceSeries(symbol="RARI", base_usd=18.0, yearly_growth=-0.2, cycle_amplitude=0.25)
        )
        self.register(PriceSeries(symbol="USDC", base_usd=1.0, cycle_amplitude=0.0, wobble_amplitude=0.0))

    def register(self, series: PriceSeries) -> None:
        """Add or replace a price series."""
        self._series[series.symbol] = series

    def has_symbol(self, symbol: str) -> bool:
        """True if a series exists for the symbol."""
        return symbol in self._series

    def usd_price(self, symbol: str, timestamp: int) -> float:
        """USD price of one unit of ``symbol`` at ``timestamp``."""
        if symbol not in self._series:
            raise KeyError(f"no price series for {symbol}")
        return self._series[symbol].price_at(timestamp)

    def token_to_usd(self, symbol: str, amount: float, timestamp: int) -> float:
        """Convert a token amount (whole units) to USD at a timestamp."""
        return amount * self.usd_price(symbol, timestamp)

    def wei_to_usd(self, amount_wei: int, timestamp: int) -> float:
        """Convert an ETH amount in wei to USD at a timestamp."""
        return wei_to_eth(amount_wei) * self.usd_price("ETH", timestamp)

    def eth_to_usd(self, amount_eth: float, timestamp: int) -> float:
        """Convert an ETH amount to USD at a timestamp."""
        return amount_eth * self.usd_price("ETH", timestamp)
