"""DeFi services: a constant-product DEX pool, a flash-loan provider and
a UniswapV3-style position-NFT vault.

* The DEX pool is where reward farmers swap the LOOKS / RARI tokens they
  claim back into ETH (the paper notes wash traders "can swap the reward
  coins for other tokens using, for example, an exchange such as
  Uniswap").
* The flash-loan provider backs the paper's discussion point that wash
  trading does not require capital: the volume can be financed by a loan
  repaid in the same transaction.
* The position-NFT vault reproduces the UniswapV3 distractor described
  in Sec. III-B: an ERC-721 collection whose mints/redeems carry large
  ETH value but have nothing to do with collectible trading.  The paper
  keeps them in the dataset but they must not surface as wash trading.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.chain.errors import ContractExecutionError
from repro.chain.types import Call
from repro.contracts.base import Contract
from repro.contracts.erc20 import ERC20Token
from repro.contracts.erc721 import ERC721Collection

if TYPE_CHECKING:  # pragma: no cover
    from repro.chain.context import TxContext


class ConstantProductPool(Contract):
    """A Uniswap-V2-style token/ETH pool with the x*y=k pricing rule."""

    EXPOSED_FUNCTIONS = {"swapTokenForEth", "swapEthForToken"}
    VIEW_FUNCTIONS = {"supportsInterface", "quoteTokenToEth", "quoteEthToToken", "reserves"}

    def __init__(self, token: ERC20Token, fee_bps: int = 30) -> None:
        super().__init__()
        self.token = token
        self.fee_bps = fee_bps
        self.token_reserve = 0
        self.eth_reserve_wei = 0

    # -- liquidity management (simulation-side, not a transaction) ------------
    def seed_liquidity(self, token_amount: int, eth_amount_wei: int, chain) -> None:
        """Provision initial reserves.

        ETH is faucet-minted to the pool address and tokens are credited
        directly; a full LP-share model is out of scope because no result
        depends on it.
        """
        self.token_reserve += token_amount
        self.eth_reserve_wei += eth_amount_wei
        chain.faucet(self.bound_address, eth_amount_wei)
        self.token._balances[self.bound_address] += token_amount  # noqa: SLF001 - deliberate back-door for seeding

    # -- views ------------------------------------------------------------------
    def reserves(self) -> Dict[str, int]:
        """Current reserves."""
        return {"token": self.token_reserve, "eth_wei": self.eth_reserve_wei}

    def quoteTokenToEth(self, token_amount: int) -> int:
        """ETH (wei) returned for selling ``token_amount`` tokens."""
        if self.token_reserve <= 0 or self.eth_reserve_wei <= 0:
            return 0
        amount_after_fee = token_amount * (10_000 - self.fee_bps) // 10_000
        new_token_reserve = self.token_reserve + amount_after_fee
        new_eth_reserve = self.token_reserve * self.eth_reserve_wei // new_token_reserve
        return self.eth_reserve_wei - new_eth_reserve

    def quoteEthToToken(self, eth_amount_wei: int) -> int:
        """Tokens returned for selling ``eth_amount_wei`` of ETH."""
        if self.token_reserve <= 0 or self.eth_reserve_wei <= 0:
            return 0
        amount_after_fee = eth_amount_wei * (10_000 - self.fee_bps) // 10_000
        new_eth_reserve = self.eth_reserve_wei + amount_after_fee
        new_token_reserve = self.token_reserve * self.eth_reserve_wei // new_eth_reserve
        return self.token_reserve - new_token_reserve

    # -- swaps ---------------------------------------------------------------------
    def swapTokenForEth(self, ctx: "TxContext", amount: int) -> int:
        """Sell reward tokens for ETH; returns the ETH (wei) paid out."""
        trader = ctx.caller
        ctx.require(amount > 0, "swap amount must be positive")
        ctx.require(
            self.token.balanceOf(trader) >= amount,
            f"{trader} holds fewer than {amount} tokens",
        )
        eth_out = self.quoteTokenForEthSafe(amount)
        ctx.require(eth_out > 0, "swap output rounds to zero")
        ctx.require(eth_out < self.eth_reserve_wei, "insufficient pool liquidity")
        self.token.transfer_internal(ctx, trader, self.bound_address, amount)
        ctx.transfer(self.bound_address, trader, eth_out)
        self.token_reserve += amount
        self.eth_reserve_wei -= eth_out
        return eth_out

    def quoteTokenForEthSafe(self, amount: int) -> int:
        """Quote helper that never raises (returns 0 for empty pools)."""
        return self.quoteTokenToEth(amount)

    def swapEthForToken(self, ctx: "TxContext") -> int:
        """Buy reward tokens with the ETH attached to the transaction."""
        trader = ctx.caller
        eth_in = ctx.value_wei
        ctx.require(eth_in > 0, "attach ETH to buy tokens")
        token_out = self.quoteEthToToken(eth_in)
        ctx.require(token_out > 0, "swap output rounds to zero")
        self.token.transfer_internal(ctx, self.bound_address, trader, token_out)
        self.eth_reserve_wei += eth_in
        self.token_reserve -= token_out
        return token_out


class FlashLoanProvider(Contract):
    """An AAVE-style flash-loan pool.

    ``flashLoan`` transfers ETH to a receiver contract, invokes its
    callback, and requires principal plus fee back before the transaction
    ends -- all within one transaction, which is what makes wash-trading
    volume essentially free of capital requirements (paper, Sec. IX).
    """

    EXPOSED_FUNCTIONS = {"flashLoan"}
    VIEW_FUNCTIONS = {"supportsInterface", "liquidity"}

    def __init__(self, fee_bps: int = 9) -> None:
        super().__init__()
        self.fee_bps = fee_bps
        self._liquidity_wei = 0

    def seed_liquidity(self, amount_wei: int, chain) -> None:
        """Provision lendable ETH (faucet-minted to the pool address)."""
        self._liquidity_wei += amount_wei
        chain.faucet(self.bound_address, amount_wei)

    def liquidity(self) -> int:
        """Lendable ETH currently in the pool, in wei."""
        return self._liquidity_wei

    def flashLoan(
        self,
        ctx: "TxContext",
        receiver: str,
        amount_wei: int,
        callback: str,
        callback_args: Optional[dict] = None,
    ) -> None:
        """Lend ``amount_wei`` to ``receiver`` for the duration of the call.

        ``receiver`` must be a contract exposing ``callback``; after the
        callback returns, principal plus fee must be back in the pool or
        the whole transaction reverts.
        """
        ctx.require(amount_wei > 0, "loan amount must be positive")
        ctx.require(amount_wei <= self._liquidity_wei, "insufficient loan liquidity")
        fee_wei = amount_wei * self.fee_bps // 10_000
        pool = self.bound_address
        balance_before = ctx.chain.state.balance_of(pool)

        ctx.transfer(pool, receiver, amount_wei)
        ctx.call_contract(receiver, Call(callback, dict(callback_args or {})))

        balance_after = ctx.chain.state.balance_of(pool)
        if balance_after < balance_before + fee_wei:
            raise ContractExecutionError(
                pool, "flashLoan", "loan not repaid with fee within the transaction"
            )
        self._liquidity_wei += fee_wei


class OTCSwapDesk(Contract):
    """A trust-minimised over-the-counter NFT swap contract.

    The buyer calls :meth:`swap` attaching the agreed price; in a single
    transaction the contract forwards the payment to the seller and moves
    the NFT to the buyer (the seller must have approved the desk as an
    operator beforehand).  There is no venue fee, so a group of colluders
    trading through the desk keeps a textbook zero-risk position -- the
    off-market wash trades the paper's zero-risk technique catches.
    """

    EXPOSED_FUNCTIONS = {"swap"}
    VIEW_FUNCTIONS = {"supportsInterface", "completedSwaps"}

    def __init__(self) -> None:
        super().__init__()
        self._completed = 0

    def completedSwaps(self) -> int:
        """Number of swaps executed through the desk."""
        return self._completed

    def swap(
        self, ctx: "TxContext", collection: str, token_id: int, seller: str, price_wei: int
    ) -> None:
        """Atomically exchange the attached ETH for the seller's NFT."""
        buyer = ctx.caller
        ctx.require(ctx.value_wei == price_wei, "attached value must equal the price")
        nft_contract = ctx.chain.state.contract_at(collection)
        ctx.require(
            nft_contract is not None and hasattr(nft_contract, "ownerOf"),
            f"{collection} is not an NFT collection",
        )
        ctx.require(
            nft_contract.ownerOf(token_id) == seller,
            f"{seller} does not own token {token_id}",
        )
        ctx.call_contract(
            collection,
            Call(
                "transferFrom",
                {"sender": seller, "to": buyer, "token_id": token_id},
            ),
        )
        if price_wei:
            ctx.transfer(self.bound_address, seller, price_wei)
        self._completed += 1


class PositionNFTVault(Contract):
    """A UniswapV3-style vault minting an NFT for every liquidity deposit.

    Deposits lock ETH and mint a position NFT; redeeming burns the NFT
    and returns the ETH.  These NFTs inflate raw ERC-721 volume exactly
    like UniswapV3 does in the paper's dataset (91% of raw volume) while
    being irrelevant to wash trading.
    """

    EXPOSED_FUNCTIONS = {"deposit", "redeem"}
    VIEW_FUNCTIONS = {"supportsInterface", "lockedValue"}

    def __init__(self, positions: ERC721Collection) -> None:
        super().__init__()
        self.positions = positions
        self._locked_by_token: Dict[int, int] = {}
        self._locked_total_wei = 0

    def lockedValue(self) -> int:
        """Total ETH locked in open positions, in wei."""
        return self._locked_total_wei

    def deposit(self, ctx: "TxContext") -> int:
        """Lock the attached ETH and mint a position NFT to the caller."""
        depositor = ctx.caller
        amount = ctx.value_wei
        ctx.require(amount > 0, "attach ETH to open a position")
        token_id = self.positions.mint(ctx, to=depositor)
        self._locked_by_token[token_id] = amount
        self._locked_total_wei += amount
        return token_id

    def redeem(self, ctx: "TxContext", token_id: int) -> None:
        """Burn a position NFT and return the locked ETH to its owner."""
        owner = self.positions.ownerOf(token_id)
        ctx.require(owner is not None, f"position {token_id} does not exist")
        ctx.require(owner == ctx.caller, "only the position owner can redeem")
        locked = self._locked_by_token.pop(token_id, 0)
        # Move the NFT back to the vault before conceptually burning it, so
        # the transfer trail ends at a contract rather than dangling.
        self.positions.transferFrom(ctx, sender=owner, to=self.bound_address, token_id=token_id)
        ctx.transfer(self.bound_address, owner, locked)
        self._locked_total_wei -= locked
