"""Ecosystem services around the NFT market.

These are the parts of the Ethereum ecosystem the paper's pipeline has
to be aware of without studying them directly: centralized exchanges and
CeFi services (whose hot wallets must be stripped from transaction
graphs), DeFi contracts (DEX pools used to swap reward tokens, flash
loans, position NFTs), the Etherscan-style label registry used for that
stripping, and the USD price oracle used by the profitability analysis.
"""

from repro.services.labels import LabelRegistry, SERVICE_LABELS
from repro.services.oracle import PriceOracle, PriceSeries
from repro.services.exchanges import CentralizedExchange
from repro.services.defi import (
    ConstantProductPool,
    FlashLoanProvider,
    OTCSwapDesk,
    PositionNFTVault,
)
from repro.services.games import NFTStakingGame

__all__ = [
    "LabelRegistry",
    "SERVICE_LABELS",
    "PriceOracle",
    "PriceSeries",
    "CentralizedExchange",
    "ConstantProductPool",
    "FlashLoanProvider",
    "OTCSwapDesk",
    "PositionNFTVault",
    "NFTStakingGame",
]
