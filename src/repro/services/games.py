"""NFT-based games and staking services.

These contracts exist to stress the refinement step: staking an NFT into
a game and pulling it back creates a strongly connected component between
the user and the game contract -- a false positive that the paper removes
by discarding every account holding bytecode.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple

from repro.chain.types import Call
from repro.contracts.base import Contract
from repro.contracts.erc721 import ERC721Collection

if TYPE_CHECKING:  # pragma: no cover
    from repro.chain.context import TxContext


class NFTStakingGame(Contract):
    """A play-to-earn style game where users stake NFTs and pull them back."""

    EXPOSED_FUNCTIONS = {"stake", "unstake"}
    VIEW_FUNCTIONS = {"supportsInterface", "stakedCount"}

    def __init__(self, name: str) -> None:
        super().__init__()
        self.game_name = name
        self._staked_by: Dict[Tuple[str, int], str] = {}

    def stakedCount(self) -> int:
        """Number of NFTs currently staked in the game."""
        return len(self._staked_by)

    def stake(self, ctx: "TxContext", collection: str, token_id: int) -> None:
        """Pull the caller's NFT into the game contract."""
        nft_contract = ctx.chain.state.contract_at(collection)
        ctx.require(isinstance(nft_contract, ERC721Collection), "not an NFT collection")
        ctx.require(
            nft_contract.ownerOf(token_id) == ctx.caller,
            "only the owner can stake an NFT",
        )
        ctx.call_contract(
            collection,
            Call(
                "transferFrom",
                {"sender": ctx.caller, "to": self.bound_address, "token_id": token_id},
            ),
        )
        self._staked_by[(collection, token_id)] = ctx.caller

    def unstake(self, ctx: "TxContext", collection: str, token_id: int) -> None:
        """Return a staked NFT to the account that staked it."""
        staker = self._staked_by.get((collection, token_id))
        ctx.require(staker == ctx.caller, "only the staker can unstake")
        ctx.call_contract(
            collection,
            Call(
                "transferFrom",
                {"sender": self.bound_address, "to": staker, "token_id": token_id},
            ),
        )
        del self._staked_by[(collection, token_id)]
