"""Centralized exchanges and CeFi services.

Exchanges matter to the paper in two ways.  First, their hot wallets are
EOAs interacting with thousands of users, which creates spurious
strongly connected components -- the refinement step strips them using
Etherscan labels.  Second, wash traders sometimes fund their colluding
accounts *through* an exchange, which hides the common funder (the paper
finds 737 such events, mostly via Coinbase and Binance); the common-exit
detector is what still catches those.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.chain.chain import Chain
from repro.chain.transaction import Transaction
from repro.services.labels import LabelRegistry
from repro.utils.currency import eth_to_wei
from repro.utils.hashing import address_from_parts

if TYPE_CHECKING:  # pragma: no cover
    pass


class CentralizedExchange:
    """A custodial exchange with a single hot-wallet EOA.

    The hot wallet is an EOA (it holds no bytecode), exactly like the
    real Coinbase / Binance deposit wallets, so only the label registry
    -- not the bytecode check -- can exclude it from transaction graphs.
    """

    def __init__(
        self,
        name: str,
        chain: Chain,
        labels: LabelRegistry,
        initial_liquidity_eth: float = 500_000.0,
        label: str = "exchange",
    ) -> None:
        self.name = name
        self.chain = chain
        self.hot_wallet = address_from_parts("exchange-hot-wallet", name)
        chain.faucet(self.hot_wallet, eth_to_wei(initial_liquidity_eth))
        labels.add(self.hot_wallet, label, name=name)
        self._deposits_received = 0
        self._withdrawals_sent = 0

    # -- user flows ----------------------------------------------------------
    def withdraw_to(
        self, user: str, amount_wei: int, timestamp: int
    ) -> Transaction:
        """Send ETH from the hot wallet to a user (an exchange withdrawal)."""
        tx = self.chain.transact(
            sender=self.hot_wallet, to=user, value_wei=amount_wei, timestamp=timestamp
        )
        self._withdrawals_sent += 1
        return tx

    def deposit_from(
        self, user: str, amount_wei: int, timestamp: int
    ) -> Transaction:
        """Receive ETH from a user into the hot wallet (an exchange deposit)."""
        tx = self.chain.transact(
            sender=user, to=self.hot_wallet, value_wei=amount_wei, timestamp=timestamp
        )
        self._deposits_received += 1
        return tx

    # -- bookkeeping -----------------------------------------------------------
    @property
    def withdrawal_count(self) -> int:
        """Number of withdrawals sent so far."""
        return self._withdrawals_sent

    @property
    def deposit_count(self) -> int:
        """Number of deposits received so far."""
        return self._deposits_received
