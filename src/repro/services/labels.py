"""An Etherscan-style address label registry.

The paper removes from the transaction graphs every EOA labelled by
Etherscan as an Exchange, CeFi service or game, plus the null address,
because such high-fan-out accounts create strongly connected components
that have nothing to do with wash trading.  The reproduction gets the
same information from this registry, which the simulation populates as
it creates service accounts.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Set

from repro.chain.types import NULL_ADDRESS

#: Labels whose holders are stripped from transaction graphs during the
#: refinement step (the paper's "Exchanges, CeFi, and games" list).
SERVICE_LABELS = frozenset({"exchange", "cefi", "game"})

#: Labels identifying DeFi-ish services; common-funder / common-exit
#: confirmation ignores funders and exits carrying one of these (or a
#: service label), because relationships through them are not evidence
#: of collusion.
FINANCIAL_SERVICE_LABELS = frozenset({"exchange", "cefi", "defi", "dex", "lending"})


class LabelRegistry:
    """Maps addresses to free-form labels, mimicking the Etherscan label cloud."""

    def __init__(self) -> None:
        self._labels: Dict[str, Set[str]] = defaultdict(set)
        self._names: Dict[str, str] = {}

    # -- population ---------------------------------------------------------
    def add(self, address: str, label: str, name: str = "") -> None:
        """Attach a label (and optionally a display name) to an address."""
        self._labels[address].add(label)
        if name:
            self._names[address] = name

    def add_many(self, addresses: Iterable[str], label: str) -> None:
        """Attach the same label to several addresses."""
        for address in addresses:
            self.add(address, label)

    # -- queries -----------------------------------------------------------
    def labels_of(self, address: str) -> Set[str]:
        """All labels attached to an address (empty set if unlabelled)."""
        return set(self._labels.get(address, ()))

    def name_of(self, address: str, default: str = "") -> str:
        """Display name of an address, if registered."""
        return self._names.get(address, default)

    def has_label(self, address: str, label: str) -> bool:
        """True if the address carries the given label."""
        return label in self._labels.get(address, ())

    def is_graph_excluded_service(self, address: str) -> bool:
        """True if the address must be stripped from transaction graphs.

        This is the paper's refinement rule: Etherscan Exchange / CeFi /
        game accounts plus the null address.
        """
        if address == NULL_ADDRESS:
            return True
        return bool(self._labels.get(address, set()) & SERVICE_LABELS)

    def is_financial_service(self, address: str) -> bool:
        """True if the address is an exchange or DeFi service.

        Used by the common-funder / common-exit detectors, which do not
        accept such accounts as evidence of collusion.
        """
        return bool(self._labels.get(address, set()) & FINANCIAL_SERVICE_LABELS)

    def addresses_with_label(self, label: str) -> list[str]:
        """All addresses carrying the given label."""
        return [address for address, labels in self._labels.items() if label in labels]

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, address: str) -> bool:
        return address in self._labels
