"""NFT marketplaces.

Each marketplace is a smart contract users interact with to buy and sell
NFTs.  A sale transaction is sent *to the marketplace contract* (this is
how the paper attributes trades to venues), carries the price as ETH
value, and in one transaction moves the NFT, pays the seller, and pays
the venue fee to a treasury account.  LooksRare and Rarible additionally
run token reward programs that pay users pro-rata to their daily volume
-- the mechanism the paper identifies as the main driver of wash trading.
"""

from repro.marketplaces.base import Marketplace, SaleRecord
from repro.marketplaces.rewards import RewardProgram, RewardDistributor, RewardSchedule
from repro.marketplaces.venues import (
    OpenSea,
    LooksRare,
    Rarible,
    SuperRare,
    Foundation,
    Decentraland,
    MARKETPLACE_FEE_BPS,
    build_standard_marketplaces,
)

__all__ = [
    "Marketplace",
    "SaleRecord",
    "RewardProgram",
    "RewardDistributor",
    "RewardSchedule",
    "OpenSea",
    "LooksRare",
    "Rarible",
    "SuperRare",
    "Foundation",
    "Decentraland",
    "MARKETPLACE_FEE_BPS",
    "build_standard_marketplaces",
]
