"""The six marketplaces the paper studies, with their fee schedules.

Fees follow the paper's discussion (Sec. IX): OpenSea 2.5%, LooksRare
2%, Rarible 2%, Foundation 15% (which the paper argues is why it shows
no wash trading), plus typical values for SuperRare and Decentraland.
LooksRare and Rarible carry token reward programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.chain.chain import Chain
from repro.contracts.erc20 import ERC20Token
from repro.contracts.registry import ContractRegistry
from repro.marketplaces.base import Marketplace
from repro.marketplaces.rewards import RewardDistributor, RewardProgram, RewardSchedule
from repro.services.labels import LabelRegistry

#: Venue fee levels, in basis points of the sale price.
MARKETPLACE_FEE_BPS: Dict[str, int] = {
    "OpenSea": 250,
    "LooksRare": 200,
    "Rarible": 200,
    "SuperRare": 300,
    "Foundation": 1500,
    "Decentraland": 250,
}


class OpenSea(Marketplace):
    """The largest venue; no reward token, 2.5% fee."""

    def __init__(self) -> None:
        super().__init__(name="OpenSea", fee_bps=MARKETPLACE_FEE_BPS["OpenSea"])


class LooksRare(Marketplace):
    """2% fee and the LOOKS trading-reward program."""

    def __init__(self) -> None:
        super().__init__(name="LooksRare", fee_bps=MARKETPLACE_FEE_BPS["LooksRare"])


class Rarible(Marketplace):
    """2% fee and the RARI trading-reward program."""

    def __init__(self) -> None:
        super().__init__(name="Rarible", fee_bps=MARKETPLACE_FEE_BPS["Rarible"])


class SuperRare(Marketplace):
    """Curated art venue, 3% secondary fee, no reward token."""

    def __init__(self) -> None:
        super().__init__(name="SuperRare", fee_bps=MARKETPLACE_FEE_BPS["SuperRare"])


class Foundation(Marketplace):
    """High-fee (15%) curated venue; uses an escrow account for listings."""

    def __init__(self) -> None:
        super().__init__(
            name="Foundation", fee_bps=MARKETPLACE_FEE_BPS["Foundation"], uses_escrow=True
        )


class Decentraland(Marketplace):
    """The Decentraland LAND/wearables marketplace, 2.5% fee."""

    def __init__(self) -> None:
        super().__init__(name="Decentraland", fee_bps=MARKETPLACE_FEE_BPS["Decentraland"])


@dataclass
class DeployedMarketplaces:
    """Handles to every deployed venue and its reward machinery."""

    venues: Dict[str, Marketplace]
    reward_tokens: Dict[str, ERC20Token]
    reward_distributors: Dict[str, RewardDistributor]
    reward_token_addresses: Dict[str, str]
    distributor_addresses: Dict[str, str]

    def venue(self, name: str) -> Marketplace:
        """Marketplace handle by name."""
        return self.venues[name]

    def address_of(self, name: str) -> str:
        """On-chain address of a venue contract."""
        return self.venues[name].bound_address

    @property
    def addresses_by_name(self) -> Dict[str, str]:
        """Mapping venue name -> contract address (the paper's Etherscan list)."""
        return {name: venue.bound_address for name, venue in self.venues.items()}


def build_standard_marketplaces(
    chain: Chain,
    labels: LabelRegistry,
    registry: ContractRegistry,
    looks_daily_emission: float = 500_000.0,
    rari_daily_emission: float = 12_000.0,
    reward_start_day: int = 0,
) -> DeployedMarketplaces:
    """Deploy the six venues, their reward tokens and distributors.

    Marketplace contracts, reward tokens, distributors and treasuries are
    labelled so the refinement and profitability stages can recognise
    them the same way the paper does through Etherscan.
    """
    venues: Dict[str, Marketplace] = {
        "OpenSea": OpenSea(),
        "LooksRare": LooksRare(),
        "Rarible": Rarible(),
        "SuperRare": SuperRare(),
        "Foundation": Foundation(),
        "Decentraland": Decentraland(),
    }
    reward_tokens: Dict[str, ERC20Token] = {}
    reward_distributors: Dict[str, RewardDistributor] = {}
    reward_token_addresses: Dict[str, str] = {}
    distributor_addresses: Dict[str, str] = {}

    for name, venue in venues.items():
        address = chain.deploy_contract(venue)
        registry.register(address, kind="marketplace", name=name)
        labels.add(address, "marketplace", name=name)
        labels.add(venue.treasury_address, "treasury", name=f"{name} Treasury")
        if venue.escrow_address:
            # Escrow wallets are venue-operated EOAs; Etherscan labels them
            # under the venue, which the paper's service list covers.  They
            # pay gas for operator approvals and releases, so the venue
            # endows them with a little ETH.
            labels.add(venue.escrow_address, "cefi", name=f"{name} Escrow")
            chain.faucet(venue.escrow_address, 100 * 10**18)

    reward_specs = {
        "LooksRare": ("LooksRare Token", "LOOKS", looks_daily_emission),
        "Rarible": ("Rarible Token", "RARI", rari_daily_emission),
    }
    for venue_name, (token_name, symbol, emission) in reward_specs.items():
        token = ERC20Token(name=token_name, symbol=symbol)
        token_address = chain.deploy_contract(token)
        registry.register(token_address, kind="erc20", name=symbol)
        labels.add(token_address, "reward-token", name=symbol)

        program = RewardProgram(
            venue_name=venue_name,
            token=token,
            schedule=RewardSchedule(daily_emission=emission, start_day=reward_start_day),
        )
        venues[venue_name].attach_reward_program(program)

        distributor = RewardDistributor(program)
        distributor_address = chain.deploy_contract(distributor)
        registry.register(
            distributor_address, kind="reward-distributor", name=f"{venue_name} Rewards"
        )
        labels.add(distributor_address, "reward-distributor", name=f"{venue_name} Rewards")

        reward_tokens[venue_name] = token
        reward_distributors[venue_name] = distributor
        reward_token_addresses[venue_name] = token_address
        distributor_addresses[venue_name] = distributor_address

    return DeployedMarketplaces(
        venues=venues,
        reward_tokens=reward_tokens,
        reward_distributors=reward_distributors,
        reward_token_addresses=reward_token_addresses,
        distributor_addresses=distributor_addresses,
    )
