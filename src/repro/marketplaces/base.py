"""Marketplace contract base class."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.chain.types import Call, NFTKey
from repro.contracts.base import Contract
from repro.contracts.erc721 import ERC721Collection
from repro.utils.hashing import address_from_parts
from repro.utils.timeutil import day_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.chain.context import TxContext
    from repro.marketplaces.rewards import RewardProgram


@dataclass(frozen=True)
class SaleRecord:
    """One completed sale, as the marketplace itself would book it.

    The detection pipeline never reads these records -- it works from
    chain observables only -- but tests and ground-truth validation use
    them as an independent account of what happened.
    """

    marketplace: str
    collection: str
    token_id: int
    seller: str
    buyer: str
    price_wei: int
    fee_wei: int
    timestamp: int

    @property
    def nft(self) -> NFTKey:
        """The traded NFT."""
        return NFTKey(contract=self.collection, token_id=self.token_id)


class Marketplace(Contract):
    """A generic NFT marketplace contract.

    Parameters
    ----------
    name:
        Venue name (e.g. ``"OpenSea"``).
    fee_bps:
        Total venue fee in basis points of the sale price, paid out of the
        seller's proceeds to the venue treasury.
    uses_escrow:
        If True the venue requires the NFT to sit in an escrow EOA while
        listed, and sales transfer it out of escrow instead of out of the
        seller's wallet.
    """

    EXPOSED_FUNCTIONS = {"buy", "depositToEscrow", "releaseFromEscrow"}
    VIEW_FUNCTIONS = {"supportsInterface", "feeBps", "treasuryAddress"}

    def __init__(self, name: str, fee_bps: int, uses_escrow: bool = False) -> None:
        super().__init__()
        self.name = name
        self.fee_bps = fee_bps
        self.uses_escrow = uses_escrow
        #: EOA that accumulates venue fees ("treasury account" in the paper).
        self.treasury_address = address_from_parts("treasury", name)
        #: EOA holding escrowed NFTs, if the venue uses escrow.
        self.escrow_address = address_from_parts("escrow", name) if uses_escrow else None
        self.reward_program: Optional["RewardProgram"] = None
        self.sales: List[SaleRecord] = []
        self._escrowed_by: Dict[Tuple[str, int], str] = {}

    # -- configuration ----------------------------------------------------------
    def attach_reward_program(self, program: "RewardProgram") -> None:
        """Attach a volume-based token reward program to this venue."""
        self.reward_program = program

    # -- views --------------------------------------------------------------------
    def feeBps(self) -> int:
        """Venue fee in basis points."""
        return self.fee_bps

    def treasuryAddress(self) -> str:
        """Address of the fee treasury."""
        return self.treasury_address

    def fee_for(self, price_wei: int) -> int:
        """Fee charged on a sale of the given price."""
        return price_wei * self.fee_bps // 10_000

    # -- escrow -----------------------------------------------------------------------
    def depositToEscrow(self, ctx: "TxContext", collection: str, token_id: int) -> None:
        """Move the caller's NFT into the venue escrow account (a listing)."""
        ctx.require(self.uses_escrow, f"{self.name} does not use escrow")
        nft_contract = self._collection_at(ctx, collection)
        owner = nft_contract.ownerOf(token_id)
        ctx.require(owner == ctx.caller, "only the owner can escrow an NFT")
        ctx.call_contract(
            collection,
            Call(
                "transferFrom",
                {"sender": ctx.caller, "to": self.escrow_address, "token_id": token_id},
            ),
        )
        self._escrowed_by[(collection, token_id)] = ctx.caller

    def releaseFromEscrow(self, ctx: "TxContext", collection: str, token_id: int) -> None:
        """Return an escrowed NFT to the account that deposited it (delisting)."""
        ctx.require(self.uses_escrow, f"{self.name} does not use escrow")
        depositor = self._escrowed_by.get((collection, token_id))
        ctx.require(depositor == ctx.caller, "only the depositor can delist")
        ctx.call_contract(
            collection,
            Call(
                "transferFrom",
                {"sender": self.escrow_address, "to": depositor, "token_id": token_id},
            ),
        )
        del self._escrowed_by[(collection, token_id)]

    # -- sales --------------------------------------------------------------------------
    def buy(
        self,
        ctx: "TxContext",
        collection: str,
        token_id: int,
        seller: str,
        price_wei: int,
    ) -> None:
        """Execute a sale: the caller buys ``token_id`` from ``seller``.

        The transaction must attach exactly ``price_wei`` of ETH.  In one
        transaction the NFT moves to the buyer, the seller receives the
        price minus the venue fee, and the fee lands in the treasury.
        """
        buyer = ctx.caller
        ctx.require(ctx.value_wei == price_wei, "attached value must equal the price")
        ctx.require(price_wei >= 0, "price must be non-negative")
        nft_contract = self._collection_at(ctx, collection)

        if self.uses_escrow:
            depositor = self._escrowed_by.get((collection, token_id))
            ctx.require(
                depositor == seller,
                f"token {token_id} is not escrowed by {seller} on {self.name}",
            )
            nft_source = self.escrow_address
        else:
            owner = nft_contract.ownerOf(token_id)
            ctx.require(owner == seller, f"{seller} does not own token {token_id}")
            nft_source = seller

        fee_wei = self.fee_for(price_wei)
        ctx.call_contract(
            collection,
            Call(
                "transferFrom",
                {"sender": nft_source, "to": buyer, "token_id": token_id},
            ),
        )
        if self.uses_escrow:
            del self._escrowed_by[(collection, token_id)]
        if price_wei:
            ctx.transfer(self.bound_address, seller, price_wei - fee_wei)
            if fee_wei:
                ctx.transfer(self.bound_address, self.treasury_address, fee_wei)

        record = SaleRecord(
            marketplace=self.name,
            collection=collection,
            token_id=token_id,
            seller=seller,
            buyer=buyer,
            price_wei=price_wei,
            fee_wei=fee_wei,
            timestamp=ctx.timestamp,
        )
        self.sales.append(record)
        if self.reward_program is not None:
            day = day_of(ctx.timestamp)
            # Both legs of the trade count toward reward volume, exactly
            # the property wash traders exploit.
            self.reward_program.record_volume(buyer, price_wei, day)
            self.reward_program.record_volume(seller, price_wei, day)

    # -- helpers ---------------------------------------------------------------------------
    def _collection_at(self, ctx: "TxContext", collection: str) -> ERC721Collection:
        contract = ctx.chain.state.contract_at(collection)
        ctx.require(contract is not None, f"{collection} is not a contract")
        ctx.require(
            isinstance(contract, ERC721Collection) or hasattr(contract, "ownerOf"),
            f"{collection} is not an NFT collection",
        )
        return contract  # type: ignore[return-value]

    # -- bookkeeping used by tests and ground truth ------------------------------------------
    @property
    def total_volume_wei(self) -> int:
        """Sum of all sale prices executed on this venue."""
        return sum(sale.price_wei for sale in self.sales)

    @property
    def sale_count(self) -> int:
        """Number of completed sales."""
        return len(self.sales)
