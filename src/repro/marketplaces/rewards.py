"""Volume-based token reward programs (the LooksRare / Rarible mechanism).

The paper (Sec. VI-A) describes the reward rule as

    R_A = a / b * c                                             (Eq. 1)

where ``a`` is the user's trading volume on a given day, ``b`` the total
venue volume that day and ``c`` the number of tokens emitted that day.
Users later call the ``claim`` function of a dedicated distributor
contract to receive the accrued tokens; the paper identifies those claim
transactions by their recipient address and values the tokens in USD on
the day of the claim.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.contracts.base import Contract
from repro.contracts.erc20 import ERC20Token

if TYPE_CHECKING:  # pragma: no cover
    from repro.chain.context import TxContext


@dataclass(frozen=True)
class RewardSchedule:
    """Emission schedule of a reward program.

    ``daily_emission`` is expressed in whole tokens per day and converted
    to the token's smallest units internally.
    """

    daily_emission: float
    start_day: int = 0
    end_day: Optional[int] = None

    def emission_on(self, day: int, decimals: int = 18) -> int:
        """Token units emitted on a given day index."""
        if day < self.start_day:
            return 0
        if self.end_day is not None and day > self.end_day:
            return 0
        return int(self.daily_emission * (10**decimals))


class RewardProgram:
    """Books per-day, per-account trading volume and computes rewards."""

    def __init__(self, venue_name: str, token: ERC20Token, schedule: RewardSchedule) -> None:
        self.venue_name = venue_name
        self.token = token
        self.schedule = schedule
        self._volume: Dict[int, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
        self._total: Dict[int, int] = defaultdict(int)
        self._claimed_day: Dict[str, int] = defaultdict(lambda: -1)

    # -- volume booking ------------------------------------------------------
    def record_volume(self, account: str, volume_wei: int, day: int) -> None:
        """Add one trade leg's volume to an account's daily total."""
        if volume_wei <= 0:
            return
        self._volume[day][account] += volume_wei
        self._total[day] += volume_wei

    def volume_of(self, account: str, day: int) -> int:
        """Volume booked for an account on a day."""
        return self._volume.get(day, {}).get(account, 0)

    def total_volume(self, day: int) -> int:
        """Total venue volume booked on a day."""
        return self._total.get(day, 0)

    # -- reward computation -----------------------------------------------------
    def reward_for_day(self, account: str, day: int) -> int:
        """Token units earned by an account for one day (Eq. 1)."""
        total = self._total.get(day, 0)
        if total <= 0:
            return 0
        share = self._volume[day].get(account, 0)
        if share <= 0:
            return 0
        emission = self.schedule.emission_on(day, self.token.decimals)
        return emission * share // total

    def pending_rewards(self, account: str, current_day: int) -> int:
        """Unclaimed token units for every *completed* day before ``current_day``."""
        start = max(self._claimed_day[account] + 1, self.schedule.start_day)
        pending = 0
        for day in sorted(self._volume.keys()):
            if day < start or day >= current_day:
                continue
            pending += self.reward_for_day(account, day)
        return pending

    def mark_claimed(self, account: str, through_day: int) -> None:
        """Record that an account has claimed everything before ``through_day``."""
        self._claimed_day[account] = max(self._claimed_day[account], through_day - 1)

    def active_days(self) -> list[int]:
        """Days with any booked volume."""
        return sorted(self._volume.keys())


class RewardDistributor(Contract):
    """The claim contract users call to redeem accrued reward tokens.

    The paper identifies claim transactions as the transactions sent by a
    participating account *to this contract*, and takes the number of
    tokens obtained from the first claim after the activity -- both
    behaviours the simulation reproduces.
    """

    EXPOSED_FUNCTIONS = {"claim"}
    VIEW_FUNCTIONS = {"supportsInterface", "pendingOf"}

    def __init__(self, program: RewardProgram) -> None:
        super().__init__()
        self.program = program
        self.claims: list[tuple[str, int, int]] = []

    def pendingOf(self, account: str, current_day: int) -> int:
        """Pending (claimable) token units for an account."""
        return self.program.pending_rewards(account, current_day)

    def claim(self, ctx: "TxContext") -> int:
        """Mint every pending reward token to the caller.

        Reverts when nothing is claimable, mirroring the real distributor
        (a claim with an empty proof fails); the gas of the failed claim
        is still spent, which is one of the cost terms wash traders face.
        """
        from repro.utils.timeutil import day_of

        account = ctx.caller
        current_day = day_of(ctx.timestamp)
        amount = self.program.pending_rewards(account, current_day)
        ctx.require(amount > 0, "nothing to claim")
        self.program.token.mint_internal(ctx, account, amount)
        self.program.mark_claimed(account, current_day)
        self.claims.append((account, current_day, amount))
        return amount
