"""Prometheus-style text exposition for a metrics registry.

:func:`render_prometheus` serializes a registry snapshot into the
plain-text format scrape endpoints speak: ``# HELP``/``# TYPE`` header
lines followed by ``name{labels} value`` samples.  Counters and gauges
map directly; histograms are rendered as Prometheus *summaries* --
``name{quantile="0.5"}`` samples for each tracked quantile plus
``name_sum`` / ``name_count`` -- because the reservoir tracks
quantiles, not fixed buckets.

The CLI's ``--metrics-out PATH`` rewrites one exposition file per
stats interval (and once at shutdown) so an operator -- or a node
exporter's textfile collector -- always sees a recent, complete view.

:func:`parse_prometheus` is the inverse used by tests and the CI smoke
job: it folds an exposition back into ``{name: value}`` (labeled
samples keep their rendered ``name{label="value"}`` key).
"""

from __future__ import annotations

import math
import os
import re
from typing import Dict, Tuple

from repro.obs.registry import QUANTILES, Family, MetricsRegistry

__all__ = ["render_prometheus", "parse_prometheus", "write_prometheus"]

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{.*\})?"
    r"\s+(?P<value>[^\s]+)$"
)


def _format_value(value: float) -> str:
    if isinstance(value, float) and (math.isnan(value) or math.isinf(value)):
        return str(value)
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def _merge_labels(name: str, extra: str) -> str:
    """Insert ``extra`` (e.g. ``quantile="0.5"``) into a sample name that
    may already carry labels."""
    if name.endswith("}"):
        return f"{name[:-1]},{extra}}}"
    return f"{name}{{{extra}}}"


def _strip_suffix_into(name: str, suffix: str) -> str:
    """``name{labels}`` -> ``name_suffix{labels}`` (labels optional)."""
    brace = name.find("{")
    if brace < 0:
        return f"{name}{suffix}"
    return f"{name[:brace]}{suffix}{name[brace:]}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry's current state in Prometheus text format."""
    lines = []
    snapshot = registry.snapshot()
    described = set()

    def describe(base: str, kind: str, help_text: str) -> None:
        if base in described:
            return
        described.add(base)
        if help_text:
            lines.append(f"# HELP {base} {help_text}")
        lines.append(f"# TYPE {base} {kind}")

    help_by_base: Dict[str, Tuple[str, str]] = {}
    for metric in registry.families():
        kind = metric.kind if not isinstance(metric, Family) else metric.kind
        help_by_base[metric.name] = (kind, metric.help)

    def base_of(sample_name: str) -> str:
        brace = sample_name.find("{")
        return sample_name if brace < 0 else sample_name[:brace]

    for name, value in sorted(snapshot["counters"].items()):
        base = base_of(name)
        describe(base, "counter", help_by_base.get(base, ("", ""))[1])
        lines.append(f"{name} {_format_value(value)}")

    for name, value in sorted(snapshot["gauges"].items()):
        base = base_of(name)
        describe(base, "gauge", help_by_base.get(base, ("", ""))[1])
        lines.append(f"{name} {_format_value(value)}")

    for name, stats in sorted(snapshot["histograms"].items()):
        base = base_of(name)
        describe(base, "summary", help_by_base.get(base, ("", ""))[1])
        for quantile in QUANTILES:
            key = f"p{int(quantile * 100)}"
            sample = _merge_labels(name, f'quantile="{quantile}"')
            lines.append(f"{sample} {_format_value(stats[key])}")
        lines.append(
            f"{_strip_suffix_into(name, '_sum')} {_format_value(stats['sum'])}"
        )
        lines.append(
            f"{_strip_suffix_into(name, '_count')} {_format_value(stats['count'])}"
        )

    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(registry: MetricsRegistry, path: str) -> None:
    """Atomic rewrite of the exposition file at ``path``.

    The text lands in ``path + ".tmp"`` first and is moved into place
    with :func:`os.replace` (atomic on POSIX and Windows within one
    filesystem), so a scraper -- or a reporter process killed mid-write
    -- can never leave a torn file at ``path``: readers see the old
    complete exposition or the new complete one, nothing in between.
    """
    text = render_prometheus(registry)
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)


def parse_prometheus(text: str) -> Dict[str, float]:
    """Fold an exposition back into ``{sample_name: value}``.

    Comment (``#``) and blank lines are skipped; malformed sample lines
    raise ``ValueError`` so tests catch encoding bugs rather than
    silently dropping samples.
    """
    samples: Dict[str, float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed exposition line: {raw!r}")
        name = match.group("name") + (match.group("labels") or "")
        samples[name] = float(match.group("value"))
    return samples
