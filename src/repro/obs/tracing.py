"""Span tracing: timed stages with attributes, rings, and sinks.

A *span* is one timed stage of work -- ``with registry.span("refine",
tokens=42): ...`` -- recorded as a :class:`SpanRecord` when the block
exits.  Each registry owns one :class:`Tracer` that fans completed
records out three ways:

* an in-memory ring buffer (``registry.recent_spans()``) for live
  inspection and tests;
* any registered sinks -- e.g. :class:`JsonLinesSink` behind the
  ``--log-json`` CLI flag;
* a ``span_seconds`` histogram family labeled by span name, which is
  how per-stage timings (ingest/refine/detect/publish/fanout) surface
  in ``stats`` snapshots and the Prometheus exposition.

Spans nest freely and are cheap: one ``perf_counter`` pair plus a dict
of attributes.  The null registry returns a shared no-op context
manager instead, so uninstrumented paths never construct a tracer.
"""

from __future__ import annotations

import json
import threading
import time
import zlib
from collections import deque
from typing import Any, Callable, Dict, List, Optional

__all__ = ["SpanRecord", "Span", "Tracer", "JsonLinesSink", "mint_trace"]

#: How many completed spans the in-memory ring retains.
DEFAULT_RING_SIZE = 256


def mint_trace(tick: int, next_block: int) -> str:
    """The deterministic trace id of one monitor tick.

    A pure function of the tick counter and the cursor position, so the
    id is identical with observability on or off (alerts carry it, and
    the obs-on/off serving surface must stay byte-identical) -- and so
    the serving layer can *predict* the next tick's trace id before the
    tick runs, which is how the block-seen latency mark lands on the
    right ledger entry.
    """
    digest = zlib.crc32(f"{tick}:{next_block}".encode("utf-8"))
    return f"t{tick:06d}-{digest:08x}"


class SpanRecord:
    """One completed span: name, attributes, wall-clock start, duration."""

    __slots__ = ("name", "attrs", "started_at", "duration", "error", "trace")

    def __init__(
        self,
        name: str,
        attrs: Dict[str, Any],
        started_at: float,
        duration: float,
        error: Optional[str] = None,
        trace: str = "",
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.started_at = started_at
        self.duration = duration
        self.error = error
        self.trace = trace

    def as_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "span": self.name,
            "ts": self.started_at,
            "duration_s": self.duration,
        }
        if self.trace:
            record["trace"] = self.trace
        if self.attrs:
            record["attrs"] = self.attrs
        if self.error is not None:
            record["error"] = self.error
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanRecord({self.as_dict()})"


class Span:
    """The live context manager handed out by :meth:`Tracer.span`."""

    __slots__ = (
        "_tracer",
        "name",
        "attrs",
        "_started_wall",
        "_started_perf",
        "_trace",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._started_wall = 0.0
        self._started_perf = 0.0
        self._trace = ""

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span (e.g. result counts)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._trace = self._tracer.current_trace()
        self._started_wall = time.time()
        self._started_perf = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._started_perf
        error = None if exc_type is None else exc_type.__name__
        self._tracer.record(
            SpanRecord(
                self.name,
                self.attrs,
                self._started_wall,
                duration,
                error,
                trace=self._trace,
            )
        )
        return None


class _TraceContext:
    """Scopes a trace id to the current thread for the ``with`` body."""

    __slots__ = ("_tracer", "_trace", "_previous")

    def __init__(self, tracer: "Tracer", trace: str) -> None:
        self._tracer = tracer
        self._trace = trace
        self._previous = ""

    def __enter__(self) -> str:
        self._previous = self._tracer.current_trace()
        self._tracer._set_trace(self._trace)
        return self._trace

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._set_trace(self._previous)
        return None


class Tracer:
    """Per-registry span state: the ring, the sinks, the histogram family."""

    def __init__(self, registry, ring_size: int = DEFAULT_RING_SIZE) -> None:
        self._lock = threading.Lock()
        self._ring: "deque[SpanRecord]" = deque(maxlen=ring_size)
        self._sinks: List[Callable[[SpanRecord], None]] = []
        self._trace_local = threading.local()
        self._durations = registry.histogram(
            "span_seconds",
            "Wall-clock duration of traced stages.",
            labels=("span",),
        )

    def span(self, name: str, **attrs: Any) -> Span:
        return Span(self, name, attrs)

    def trace_context(self, trace: str) -> _TraceContext:
        """Bind ``trace`` as the current thread's trace id for a block."""
        return _TraceContext(self, trace)

    def current_trace(self) -> str:
        return getattr(self._trace_local, "trace", "")

    def _set_trace(self, trace: str) -> None:
        self._trace_local.trace = trace

    def add_sink(self, sink: Callable[[SpanRecord], None]) -> None:
        with self._lock:
            self._sinks.append(sink)

    def record(self, record: SpanRecord) -> None:
        self._durations.labels(span=record.name).observe(record.duration)
        with self._lock:
            self._ring.append(record)
            sinks = list(self._sinks)
        for sink in sinks:
            try:
                sink(record)
            except Exception:  # noqa: BLE001 - a broken sink must never
                # fail the instrumented operation.
                pass

    def recent(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._ring)


class JsonLinesSink:
    """A span sink writing one structured JSON object per line.

    Thread-safe and append-only; the underlying file is line-buffered so
    an operator can ``tail -f`` a live service.  Also usable directly as
    an event log (:meth:`emit`) for non-span records.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._handle = open(path, "a", buffering=1, encoding="utf-8")

    def __call__(self, record: SpanRecord) -> None:
        self.emit(record.as_dict())

    def emit(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            if not self._handle.closed:
                self._handle.write(line + "\n")

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()
