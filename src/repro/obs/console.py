"""Periodic console stats for live `monitor` / `serve` runs.

:class:`PeriodicReporter` is a daemon thread that every ``interval``
seconds prints a one-line health summary built from a registry
snapshot, and (optionally) rewrites the Prometheus exposition file.
The CLI wires it behind ``--stats-interval`` / ``--metrics-out``; a
final report runs at shutdown so short runs still leave a snapshot.

The summary line is intentionally dense -- one glance answers "is
ingest moving, are alerts flowing, is the cache hitting, is the wire
keeping up":

    stats: blocks=1200 transfers=8410 alerts=37 reorgs=2
        tick_p50=3.1ms tick_p95=9.8ms cache_hit=92.4% wire_reqs=412
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.obs.exposition import write_prometheus
from repro.obs.registry import MetricsRegistry

__all__ = ["PeriodicReporter", "format_stats_line"]


def _ms(seconds: float) -> str:
    return f"{seconds * 1000:.1f}ms"


def format_stats_line(registry: MetricsRegistry) -> str:
    """One dense health line from a registry snapshot."""
    snapshot = registry.snapshot()
    counters = snapshot["counters"]
    gauges = snapshot["gauges"]
    histograms = snapshot["histograms"]

    parts = []
    blocks = counters.get("cursor_blocks_ingested_total")
    if blocks is not None:
        parts.append(f"blocks={int(blocks)}")
    transfers = counters.get("cursor_transfers_ingested_total")
    if transfers is not None:
        parts.append(f"transfers={int(transfers)}")
    alerts = sum(
        value for name, value in counters.items()
        if name.startswith("monitor_alerts_total")
    )
    if alerts:
        parts.append(f"alerts={int(alerts)}")
    reorgs = counters.get("cursor_reorgs_total")
    if reorgs:
        parts.append(f"reorgs={int(reorgs)}")
    tick = histograms.get("serve_tick_seconds") or histograms.get(
        'span_seconds{span="tick"}'
    )
    if tick and tick["count"]:
        parts.append(f"tick_p50={_ms(tick['p50'])}")
        parts.append(f"tick_p95={_ms(tick['p95'])}")
    hits = counters.get("serve_cache_hits_total")
    misses = counters.get("serve_cache_misses_total")
    if hits is not None and misses is not None and (hits + misses):
        parts.append(f"cache_hit={100.0 * hits / (hits + misses):.1f}%")
    wire_requests = sum(
        value for name, value in counters.items()
        if name.startswith("wire_requests_total")
    )
    if wire_requests:
        parts.append(f"wire_reqs={int(wire_requests)}")
    connections = gauges.get("wire_active_connections")
    if connections:
        parts.append(f"conns={int(connections)}")
    if not parts:
        parts.append("idle")
    return "stats: " + " ".join(parts)


class PeriodicReporter:
    """Daemon thread: print a stats line (and rewrite the exposition
    file) every ``interval`` seconds until stopped."""

    def __init__(
        self,
        registry: MetricsRegistry,
        interval: float,
        emit: Callable[[str], None] = print,
        metrics_out: Optional[str] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.registry = registry
        self.interval = interval
        self.emit = emit
        self.metrics_out = metrics_out
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _report_once(self) -> None:
        try:
            self.emit(format_stats_line(self.registry))
        except Exception:  # noqa: BLE001 - reporting must never kill the run
            pass
        if self.metrics_out:
            try:
                write_prometheus(self.registry, self.metrics_out)
            except OSError:
                pass

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._report_once()

    def start(self) -> "PeriodicReporter":
        self._thread = threading.Thread(
            target=self._run, name="obs-reporter", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, final_report: bool = True) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval + 1.0)
        if final_report:
            self._report_once()
