"""Periodic console stats for live `monitor` / `serve` runs.

:class:`PeriodicReporter` is a daemon thread that every ``interval``
seconds prints a one-line health summary built from a registry
snapshot, and (optionally) rewrites the Prometheus exposition file.
The CLI wires it behind ``--stats-interval`` / ``--metrics-out``; a
final report runs at shutdown so short runs still leave a snapshot.

The summary line is intentionally dense -- one glance answers "is
ingest moving, are alerts flowing, is the cache hitting, is the wire
keeping up":

    stats: blocks=1200 transfers=8410 alerts=37 reorgs=2
        tick_p50=3.1ms tick_p95=9.8ms cache_hit=92.4% wire_reqs=412
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.obs.exposition import write_prometheus
from repro.obs.registry import MetricsRegistry

__all__ = ["PeriodicReporter", "format_stats_line", "render_dashboard"]


def _ms(seconds: float) -> str:
    return f"{seconds * 1000:.1f}ms"


def format_stats_line(registry: MetricsRegistry) -> str:
    """One dense health line from a registry snapshot."""
    snapshot = registry.snapshot()
    counters = snapshot["counters"]
    gauges = snapshot["gauges"]
    histograms = snapshot["histograms"]

    parts = []
    blocks = counters.get("cursor_blocks_ingested_total")
    if blocks is not None:
        parts.append(f"blocks={int(blocks)}")
    transfers = counters.get("cursor_transfers_ingested_total")
    if transfers is not None:
        parts.append(f"transfers={int(transfers)}")
    alerts = sum(
        value for name, value in counters.items()
        if name.startswith("monitor_alerts_total")
    )
    if alerts:
        parts.append(f"alerts={int(alerts)}")
    reorgs = counters.get("cursor_reorgs_total")
    if reorgs:
        parts.append(f"reorgs={int(reorgs)}")
    tick = histograms.get("serve_tick_seconds") or histograms.get(
        'span_seconds{span="tick"}'
    )
    if tick and tick["count"]:
        parts.append(f"tick_p50={_ms(tick['p50'])}")
        parts.append(f"tick_p95={_ms(tick['p95'])}")
    hits = counters.get("serve_cache_hits_total")
    misses = counters.get("serve_cache_misses_total")
    if hits is not None and misses is not None and (hits + misses):
        parts.append(f"cache_hit={100.0 * hits / (hits + misses):.1f}%")
    wire_requests = sum(
        value for name, value in counters.items()
        if name.startswith("wire_requests_total")
    )
    if wire_requests:
        parts.append(f"wire_reqs={int(wire_requests)}")
    connections = gauges.get("wire_active_connections")
    if connections:
        parts.append(f"conns={int(connections)}")
    if not parts:
        parts.append("idle")
    return "stats: " + " ".join(parts)


#: Latency stages rendered by the dashboard, pipeline order.
_DASHBOARD_STAGES = ("schedule", "detect", "fanout", "deliver", "total")


def render_dashboard(stats: dict, health: dict, endpoint: str = "") -> str:
    """The ``repro top`` screen: one node's stats+health as plain text.

    Pure dict-in/str-out (the dicts are the ``stats`` and ``health``
    verb payloads) so the rendering is unit-testable without a socket.
    """
    metrics = stats.get("metrics") or {}
    counters = metrics.get("counters") or {}
    gauges = metrics.get("gauges") or {}
    histograms = metrics.get("histograms") or {}
    status = str(health.get("status", "unknown")).upper()
    lines = []
    title = "repro top"
    if endpoint:
        title += f" — {endpoint}"
    lines.append(f"{title} — status: {status}")

    ingest = health.get("ingest") or {}
    if ingest:
        processed = ingest.get("processed_block", -1)
        head = ingest.get("head_block", -1)
        state = (
            "crashed"
            if ingest.get("crashed")
            else "running" if ingest.get("running") else "done"
        )
        age = ingest.get("last_tick_age_seconds")
        age_part = "" if age is None else f"  last_tick={age:.1f}s ago"
        lines.append(
            f"ingest   block {processed}/{head} "
            f"(lag {ingest.get('lag_blocks', 0)})  "
            f"ticks {ingest.get('ticks', 0)}  [{state}]{age_part}"
        )
    tick = histograms.get("serve_tick_seconds") or histograms.get(
        'span_seconds{span="tick"}'
    )
    if tick and tick.get("count"):
        lines.append(
            f"ticks    p50 {_ms(tick['p50'])}  p95 {_ms(tick['p95'])}  "
            f"count {int(tick['count'])}"
        )

    alerts = sum(
        value
        for name, value in counters.items()
        if name.startswith("monitor_alerts_total")
    )
    publish = health.get("publish") or {}
    if alerts or publish:
        lines.append(
            f"alerts   total {int(alerts)}  "
            f"published_seq {publish.get('published_seq', -1)}  "
            f"publish_lag {publish.get('lag_alerts', 0)}  "
            f"shards {publish.get('shards', stats.get('shards', 1))}"
        )

    stage_parts = []
    for stage in _DASHBOARD_STAGES:
        snapshot = histograms.get(f'alert_latency_seconds{{stage="{stage}"}}')
        if snapshot and snapshot.get("count"):
            stage_parts.append(f"{stage} {_ms(snapshot['p95'])}")
    if stage_parts:
        lines.append("latency  p95: " + "  ".join(stage_parts))

    wire = health.get("wire") or {}
    if wire:
        pressure = wire.get("subscriber_queue_pressure", 0.0)
        lines.append(
            f"wire     conns {wire.get('active_connections', 0)}  "
            f"subs {wire.get('active_subscribers', 0)}  "
            f"reqs {wire.get('requests', 0)} "
            f"(err {wire.get('request_errors', 0)})  "
            f"queue {pressure:.0%}"
        )

    slo = health.get("slo") or {}
    for name in sorted(slo):
        state = slo[name]
        verdict = "OK" if state.get("healthy") else "BREACHED"
        lines.append(
            f"slo      {name}: {verdict}  "
            f"budget {state.get('budget_used', 0.0):.0%}  "
            f"burn {state.get('burn_rate', 0.0):.2f}"
        )
    if not slo:
        healthy_gauges = {
            name: value
            for name, value in gauges.items()
            if name.startswith("slo_healthy")
        }
        for name in sorted(healthy_gauges):
            verdict = "OK" if healthy_gauges[name] else "BREACHED"
            lines.append(f"slo      {name}: {verdict}")
    return "\n".join(lines)


class PeriodicReporter:
    """Daemon thread: print a stats line (and rewrite the exposition
    file) every ``interval`` seconds until stopped."""

    def __init__(
        self,
        registry: MetricsRegistry,
        interval: float,
        emit: Callable[[str], None] = print,
        metrics_out: Optional[str] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.registry = registry
        self.interval = interval
        self.emit = emit
        self.metrics_out = metrics_out
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        # Reports are serialized: a SIGINT/SIGTERM stop() can land while
        # the interval timer is mid-fire, and two interleaved
        # write_prometheus calls could race the same tmp file.
        self._report_lock = threading.Lock()
        self._final_done = False

    def _report_once(self) -> None:
        with self._report_lock:
            try:
                self.emit(format_stats_line(self.registry))
            except Exception:  # noqa: BLE001 - reporting must never kill the run
                pass
            if self.metrics_out:
                try:
                    write_prometheus(self.registry, self.metrics_out)
                except OSError:
                    pass

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._report_once()

    def start(self) -> "PeriodicReporter":
        self._thread = threading.Thread(
            target=self._run, name="obs-reporter", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, final_report: bool = True) -> None:
        """Stop the timer; run the final flush exactly once.

        Idempotent and safe against a mid-fire interval timer: the stop
        flag halts the loop, the join waits out any in-flight report,
        and the ``_final_done`` latch guarantees exactly one final
        report even when stop() is called from both a signal handler
        and a finally block.
        """
        self._stop.set()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=self.interval + 1.0)
        if final_report:
            with self._report_lock:
                if self._final_done:
                    return
                self._final_done = True
            self._report_once()
