"""The ingest-to-alert latency ledger.

Answers the operator's first question -- *how long from a block
appearing on-chain to its alert reaching a wire subscriber, stage by
stage?* -- by timestamping each trace at five marks along the pipeline
and folding the deltas into an ``alert_latency_seconds{stage}``
histogram family:

====================  =====================================================
mark                  placed by
====================  =====================================================
``block_seen``        the serve drive loop, *before* the tick runs (the
                      trace id is deterministic, so it can be predicted)
``tick_start``        :meth:`StreamingMonitor.advance`, once the tick's
                      trace is minted
``publish``           the serve index (plain or sharded) after the new
                      version commits
``fanout_enqueue``    the wire server when the version notification
                      enqueues the tick's alerts to subscribers
``socket_write``      the wire pusher thread after each alert frame is
                      written to a subscriber socket
====================  =====================================================

Stage histograms are the deltas between consecutive marks, plus a
``total`` stage spanning the whole block-seen-to-socket-write path:

* ``schedule`` -- block_seen to tick_start
* ``detect``   -- tick_start to publish
* ``fanout``   -- publish to fanout_enqueue
* ``deliver``  -- fanout_enqueue to socket_write (one observation per
  alert frame per subscriber)
* ``total``    -- block_seen to socket_write

The ledger is bounded (oldest traces evicted) and tolerant of missing
marks: a monitor running without a serving layer only ever lands
``tick_start``, so only the stages whose both edges arrived are
observed.  Late marks for traces the ledger never opened (e.g. a
subscriber replaying ancient alerts) are dropped rather than creating
orphan entries.

Ledgers attach lazily to a registry via ``registry.latency`` -- the
null registry returns a shared no-op ledger, so bare runs pay only an
attribute access per mark site.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Dict, Optional, Tuple

__all__ = ["AlertLatencyLedger", "MARKS", "STAGES", "STAGE_EDGES"]

#: Every mark a trace can receive, in pipeline order.
MARKS = ("block_seen", "tick_start", "publish", "fanout_enqueue", "socket_write")

#: Marks allowed to open a new ledger entry.  Later marks for unknown
#: traces (replayed alerts, evicted entries) are dropped.
_OPENING_MARKS = frozenset({"block_seen", "tick_start"})

#: Stage name -> (earlier mark, later mark).  A stage is observed the
#: moment its later mark lands, if the earlier one is present.
STAGE_EDGES: Dict[str, Tuple[str, str]] = {
    "schedule": ("block_seen", "tick_start"),
    "detect": ("tick_start", "publish"),
    "fanout": ("publish", "fanout_enqueue"),
    "deliver": ("fanout_enqueue", "socket_write"),
    "total": ("block_seen", "socket_write"),
}

#: Stage label values, pipeline-ordered, ``total`` last.
STAGES = ("schedule", "detect", "fanout", "deliver", "total")

#: How many in-flight traces the ledger retains before evicting the
#: oldest.  A trace is one monitor tick, so 512 covers minutes of
#: backlog at any realistic tick cadence.
DEFAULT_CAPACITY = 512


class AlertLatencyLedger:
    """Per-trace mark timestamps feeding ``alert_latency_seconds{stage}``."""

    def __init__(self, registry, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Dict[str, float]]" = OrderedDict()
        self._stages = registry.histogram(
            "alert_latency_seconds",
            "Ingest-to-alert latency, broken down by pipeline stage.",
            labels=("stage",),
        )
        # Pre-create every stage child so expositions and dashboards
        # show the full taxonomy from the first scrape.
        for stage in STAGES:
            self._stages.labels(stage=stage)

    def mark(self, trace: str, mark: str, at: Optional[float] = None) -> None:
        """Record that ``trace`` reached ``mark`` (now, unless ``at``).

        Non-terminal marks are first-wins: re-marking an existing mark
        is a no-op, so idempotent call sites need no guards.  The
        terminal ``socket_write`` mark re-observes its stages on every
        call -- one delivery observation per alert frame per subscriber.
        """
        if not trace or mark not in MARKS:
            return
        if at is None:
            at = time.perf_counter()
        with self._lock:
            entry = self._entries.get(trace)
            if entry is None:
                if mark not in _OPENING_MARKS:
                    return
                entry = {}
                self._entries[trace] = entry
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
            if mark in entry:
                if mark != "socket_write":
                    return
            else:
                entry[mark] = at
            starts = {
                stage: entry.get(earlier)
                for stage, (earlier, later) in STAGE_EDGES.items()
                if later == mark
            }
        for stage, started in starts.items():
            if started is not None and at >= started:
                self._stages.labels(stage=stage).observe(at - started)

    def marks(self, trace: str) -> Dict[str, float]:
        """A copy of the marks recorded for ``trace`` (empty if unknown)."""
        with self._lock:
            entry = self._entries.get(trace)
            return dict(entry) if entry else {}

    def pending(self) -> int:
        """How many traces the ledger currently retains."""
        with self._lock:
            return len(self._entries)
