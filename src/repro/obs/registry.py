"""The metrics registry: thread-safe counters, gauges and histograms.

One :class:`MetricsRegistry` instance is threaded through every layer of
a live service (ingest cursor, scheduler, monitor, serving index, wire
server); each layer registers the instruments it needs by name and
records into them on its own hot path.  Three instrument kinds:

* :class:`Counter` -- a monotone total (``blocks ingested``,
  ``requests served``).
* :class:`Gauge` -- a point-in-time level (``journal size``,
  ``tracked tokens``).
* :class:`Histogram` -- a bounded-reservoir distribution with exact
  ``count``/``sum``/``min``/``max`` and estimated p50/p95/p99 (tick
  latencies, per-verb request latencies).  The reservoir is a classic
  Algorithm-R sample driven by a *privately seeded* RNG, so recording a
  latency can never perturb the globally seeded simulation streams --
  instrumentation must stay parity-neutral by construction.

Names may declare *label families* (``wire_requests_total`` by
``verb``); a family lazily materializes one child instrument per label
value and snapshots each child under ``name{label="value"}``.

Two registry tiers share the API: the real :class:`MetricsRegistry`
and the no-op :class:`NullRegistry` (module singleton
:data:`NULL_REGISTRY`), which every instrumented component falls back
to when no registry is supplied.  The null tier allocates nothing and
records nothing, so uninstrumented runs pay only an attribute call --
the ``--obs`` benchmark column pins the instrumented-vs-bare overhead
under 5%.

Registries also accept *collectors*: callables polled at snapshot time
that contribute read-only values from state which already exists
elsewhere (the aggregate cache's hit counters, the wire server's live
connection count) -- the hot paths of those components stay untouched.
"""

from __future__ import annotations

import random
import threading
import zlib
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
]

#: Default size of a histogram's value reservoir.  512 samples bound the
#: memory of an arbitrarily long run while keeping the p99 estimate
#: stable at per-tick / per-request cadences.
DEFAULT_RESERVOIR_SIZE = 512

#: Quantiles every histogram snapshot and exposition reports.
QUANTILES = (0.5, 0.95, 0.99)


def _labeled_name(name: str, label_names: Tuple[str, ...], values: Tuple[str, ...]) -> str:
    inner = ",".join(
        f'{label}="{_escape_label(value)}"'
        for label, value in zip(label_names, values)
    )
    return f"{name}{{{inner}}}"


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


class Counter:
    """A thread-safe monotone total."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A thread-safe point-in-time level."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()
        self._value: float = 0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class HistogramSnapshot:
    """One consistent read of a histogram (plain data, JSON-friendly)."""

    __slots__ = ("count", "sum", "min", "max", "p50", "p95", "p99")

    def __init__(self, count, total, minimum, maximum, p50, p95, p99) -> None:
        self.count = count
        self.sum = total
        self.min = minimum
        self.max = maximum
        self.p50 = p50
        self.p95 = p95
        self.p99 = p99

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HistogramSnapshot({self.as_dict()})"


class Histogram:
    """Bounded-reservoir distribution; exact count/sum, estimated tails.

    Up to ``reservoir_size`` observations are kept verbatim; beyond
    that, Algorithm R replaces a uniformly random slot so the reservoir
    stays an unbiased sample of the whole stream.  The replacement RNG
    is seeded from the metric name (not the global ``random`` state):
    observing a value is deterministic across runs and invisible to the
    seeded simulation streams.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        reservoir_size: int = DEFAULT_RESERVOIR_SIZE,
    ) -> None:
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be >= 1")
        self.name = name
        self.help = help_text
        self.reservoir_size = reservoir_size
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._reservoir: List[float] = []
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            if len(self._reservoir) < self.reservoir_size:
                self._reservoir.append(value)
            else:
                slot = self._rng.randrange(self._count)
                if slot < self.reservoir_size:
                    self._reservoir[slot] = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, quantile: float) -> float:
        """Estimated value at ``quantile`` (0..1); 0.0 when empty."""
        if not 0.0 <= quantile <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        with self._lock:
            sample = sorted(self._reservoir)
        if not sample:
            return 0.0
        # Nearest-rank on the sample; exact while the reservoir has not
        # overflowed, an unbiased estimate afterwards.
        rank = min(len(sample) - 1, max(0, round(quantile * (len(sample) - 1))))
        return sample[rank]

    def snapshot(self) -> HistogramSnapshot:
        with self._lock:
            sample = sorted(self._reservoir)
            count, total = self._count, self._sum
            minimum = self._min if self._min is not None else 0.0
            maximum = self._max if self._max is not None else 0.0

        def at(quantile: float) -> float:
            if not sample:
                return 0.0
            rank = min(
                len(sample) - 1, max(0, round(quantile * (len(sample) - 1)))
            )
            return sample[rank]

        return HistogramSnapshot(
            count, total, minimum, maximum, at(0.5), at(0.95), at(0.99)
        )


_INSTRUMENTS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class Family:
    """A labeled family: one child instrument per label-value tuple."""

    def __init__(
        self,
        kind: str,
        name: str,
        help_text: str,
        label_names: Tuple[str, ...],
        **instrument_kwargs: Any,
    ) -> None:
        self.kind = kind
        self.name = name
        self.help = help_text
        self.label_names = label_names
        self._instrument_kwargs = instrument_kwargs
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], Any] = {}

    def labels(self, *values: str, **named: str) -> Any:
        """The child instrument for one label-value combination."""
        if named:
            if values:
                raise ValueError("pass label values positionally or by name")
            try:
                values = tuple(named[label] for label in self.label_names)
            except KeyError as missing:
                raise ValueError(f"missing label {missing}") from None
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, got {values!r}"
            )
        values = tuple(str(value) for value in values)
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = _INSTRUMENTS[self.kind](
                    _labeled_name(self.name, self.label_names, values),
                    self.help,
                    **self._instrument_kwargs,
                )
                self._children[values] = child
            return child

    def children(self) -> Dict[Tuple[str, ...], Any]:
        with self._lock:
            return dict(self._children)


class MetricsRegistry:
    """Named, typed instruments plus snapshot-time collectors.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same instrument (asking with a
    conflicting kind or label set raises).  The registry also owns the
    span/trace surface -- see :mod:`repro.obs.tracing`; ``span`` is
    attached there to keep this module dependency-free.
    """

    #: Distinguishes the real tier from :class:`NullRegistry` without
    #: an isinstance dance at every call site.
    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: "Dict[str, Any]" = {}
        self._collectors: List[Callable[[], Dict[str, Dict[str, float]]]] = []
        # Tracing state is installed lazily by repro.obs.tracing the
        # first time span() runs; kept here so one object travels
        # through the stack.  The alert-latency ledger follows the same
        # lazy pattern (repro.obs.latency).
        self._tracer = None
        self._latency = None

    # -- instrument creation ----------------------------------------------
    def _get_or_create(
        self,
        kind: str,
        name: str,
        help_text: str,
        labels: Tuple[str, ...],
        **kwargs: Any,
    ) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                expected_labels = getattr(existing, "label_names", ())
                if existing.kind != kind or expected_labels != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{expected_labels or ''}"
                    )
                return existing
            if labels:
                metric = Family(kind, name, help_text, tuple(labels), **kwargs)
            else:
                metric = _INSTRUMENTS[kind](name, help_text, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help_text: str = "", labels: Iterable[str] = ()
    ) -> Any:
        return self._get_or_create("counter", name, help_text, tuple(labels))

    def gauge(
        self, name: str, help_text: str = "", labels: Iterable[str] = ()
    ) -> Any:
        return self._get_or_create("gauge", name, help_text, tuple(labels))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Iterable[str] = (),
        reservoir_size: int = DEFAULT_RESERVOIR_SIZE,
    ) -> Any:
        return self._get_or_create(
            "histogram",
            name,
            help_text,
            tuple(labels),
            reservoir_size=reservoir_size,
        )

    def register_collector(
        self, collector: Callable[[], Dict[str, Dict[str, float]]]
    ) -> None:
        """Poll ``collector`` at snapshot time.

        The collector returns ``{"counters": {...}, "gauges": {...}}``
        (either key optional) with plain name-to-number mappings; the
        values are merged into snapshots and expositions as if they were
        registered instruments.
        """
        with self._lock:
            self._collectors.append(collector)

    # -- tracing (installed by repro.obs.tracing) --------------------------
    @property
    def tracer(self):
        """The registry's tracer, materialized on first use."""
        if self._tracer is None:
            from repro.obs.tracing import Tracer

            # Built outside the registry lock: Tracer registers its
            # span_seconds histogram through _get_or_create, which takes
            # the same (non-reentrant) lock.  A racing duplicate is
            # harmless -- both share the one get-or-created histogram --
            # and only one wins the assignment.
            candidate = Tracer(self)
            with self._lock:
                if self._tracer is None:
                    self._tracer = candidate
        return self._tracer

    def span(self, name: str, **attrs: Any):
        """A timing span context manager -- see :mod:`repro.obs.tracing`."""
        return self.tracer.span(name, **attrs)

    def add_span_sink(self, sink: Callable[..., None]) -> None:
        self.tracer.add_sink(sink)

    def recent_spans(self):
        """The tracer's ring buffer contents, oldest first."""
        if self._tracer is None:
            return []
        return self._tracer.recent()

    def trace_context(self, trace: str):
        """Bind ``trace`` as the calling thread's trace id for a block.

        Spans opened inside the block (on the same thread) record the
        id, which is how one tick's ingest/refine/detect/publish/fanout
        spans end up queryable as a single trace.
        """
        return self.tracer.trace_context(trace)

    def current_trace(self) -> str:
        """The calling thread's active trace id ("" outside any)."""
        if self._tracer is None:
            return ""
        return self._tracer.current_trace()

    # -- alert latency (installed by repro.obs.latency) --------------------
    @property
    def latency(self):
        """The registry's alert-latency ledger, materialized on first use."""
        if self._latency is None:
            from repro.obs.latency import AlertLatencyLedger

            # Same benign race as ``tracer`` above: built outside the
            # lock, first assignment wins, duplicates share the one
            # get-or-created histogram family.
            candidate = AlertLatencyLedger(self)
            with self._lock:
                if self._latency is None:
                    self._latency = candidate
        return self._latency

    # -- reading -----------------------------------------------------------
    def _flattened(self) -> List[Any]:
        """Every concrete instrument, families expanded into children."""
        with self._lock:
            metrics = list(self._metrics.values())
        flat: List[Any] = []
        for metric in metrics:
            if isinstance(metric, Family):
                flat.extend(metric.children().values())
            else:
                flat.append(metric)
        return flat

    def families(self) -> List[Any]:
        """Registered top-level metrics/families, registration-ordered."""
        with self._lock:
            return list(self._metrics.values())

    def _collected(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            collectors = list(self._collectors)
        merged: Dict[str, Dict[str, float]] = {"counters": {}, "gauges": {}}
        for collector in collectors:
            try:
                contributed = collector()
            except Exception:  # noqa: BLE001 - a broken collector must not
                # take down the stats surface it feeds.
                continue
            for key in ("counters", "gauges"):
                merged[key].update(contributed.get(key, ()))
        return merged

    def counter_values(self) -> Dict[str, float]:
        """Counter samples only -- the cheap slice of :meth:`snapshot`.

        Per-tick consumers (the SLO engine's error-rate objectives) read
        this instead of the full snapshot so no histogram reservoir is
        sorted on the ingest hot path.
        """
        counters: Dict[str, float] = {}
        for metric in self._flattened():
            if metric.kind == "counter":
                counters[metric.name] = metric.value
        counters.update(self._collected()["counters"])
        return counters

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """One JSON-friendly read of everything the registry knows."""
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, float]] = {}
        for metric in self._flattened():
            if metric.kind == "counter":
                counters[metric.name] = metric.value
            elif metric.kind == "gauge":
                gauges[metric.name] = metric.value
            else:
                histograms[metric.name] = metric.snapshot().as_dict()
        collected = self._collected()
        counters.update(collected["counters"])
        gauges.update(collected["gauges"])
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


class _NullInstrument:
    """Counter, gauge and histogram at once; records nothing."""

    kind = "null"
    name = "null"
    value = 0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, quantile: float) -> float:
        return 0.0

    def snapshot(self) -> HistogramSnapshot:
        return HistogramSnapshot(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    def labels(self, *values: str, **named: str) -> "_NullInstrument":
        return self


class _NullSpan:
    """A reusable, reentrant no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def annotate(self, **attrs: Any) -> None:
        pass


class _NullLedger:
    """The no-op alert-latency ledger; same surface, records nothing."""

    __slots__ = ()

    def mark(self, trace: str, mark: str, at: Optional[float] = None) -> None:
        pass

    def marks(self, trace: str) -> Dict[str, float]:
        return {}

    def pending(self) -> int:
        return 0


_NULL_INSTRUMENT = _NullInstrument()
_NULL_SPAN = _NullSpan()
_NULL_LEDGER = _NullLedger()


class NullRegistry(MetricsRegistry):
    """The no-op tier: same API, no allocation, no recording.

    Every component defaults to this when constructed without a
    registry, so uninstrumented services keep their exact pre-obs cost.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def _get_or_create(self, kind, name, help_text, labels, **kwargs):
        return _NULL_INSTRUMENT

    def register_collector(self, collector) -> None:
        pass

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def add_span_sink(self, sink) -> None:
        pass

    def recent_spans(self):
        return []

    def trace_context(self, trace: str) -> _NullSpan:
        return _NULL_SPAN

    def current_trace(self) -> str:
        return ""

    @property
    def latency(self) -> _NullLedger:
        return _NULL_LEDGER

    def counter_values(self) -> Dict[str, float]:
        return {}

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: The shared no-op registry every instrumented component falls back to.
NULL_REGISTRY = NullRegistry()
