"""A bounded list for error retention.

Several layers keep "last errors" logs for their CLI reports (monitor
subscriber errors, serve-index callback failures).  Historically those
were plain unbounded lists; a long-running service with one broken
subscriber would grow them forever.  :class:`BoundedLog` keeps the
plain-``list`` interface those reports (and existing tests) rely on --
indexing, slicing, equality against a list -- while retaining only the
most recent ``maxlen`` entries and counting every append in ``total``.
"""

from __future__ import annotations

from typing import Any, Iterable

__all__ = ["BoundedLog", "DEFAULT_ERROR_RETENTION"]

#: How many recent entries the error logs keep by default.  Large enough
#: that any realistic CLI report sees everything; small enough that a
#: pathological subscriber cannot exhaust memory.
DEFAULT_ERROR_RETENTION = 100


class BoundedLog(list):
    """A ``list`` that drops its oldest entries beyond ``maxlen``.

    ``total`` counts every append ever made, so the retained window and
    the lifetime count are both always available.
    """

    def __init__(self, maxlen: int = DEFAULT_ERROR_RETENTION, iterable: Iterable[Any] = ()) -> None:
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        super().__init__()
        self.maxlen = maxlen
        self.total = 0
        for item in iterable:
            self.append(item)

    def append(self, item: Any) -> None:
        super().append(item)
        self.total += 1
        if len(self) > self.maxlen:
            del self[: len(self) - self.maxlen]

    def extend(self, iterable: Iterable[Any]) -> None:
        for item in iterable:
            self.append(item)

    @property
    def dropped(self) -> int:
        """How many entries have been evicted from the window."""
        return self.total - len(self)
