"""Observability core: metrics registry, span tracing, exposition.

Stdlib-only.  One :class:`MetricsRegistry` travels through a live
service's layers (cursor, scheduler, monitor, serve index, wire
server); every component defaults to the shared no-op
:data:`NULL_REGISTRY` so uninstrumented runs pay nothing.  See
``docs/architecture.md`` § Observability for the metric catalog, span
taxonomy, trace lifecycle, latency stages and SLO catalog.
"""

from repro.obs.bounded import DEFAULT_ERROR_RETENTION, BoundedLog
from repro.obs.console import (
    PeriodicReporter,
    format_stats_line,
    render_dashboard,
)
from repro.obs.exposition import (
    parse_prometheus,
    render_prometheus,
    write_prometheus,
)
from repro.obs.latency import MARKS, STAGES, AlertLatencyLedger
from repro.obs.registry import (
    DEFAULT_RESERVOIR_SIZE,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.slo import (
    SLOBreach,
    SLOEngine,
    SLOObjective,
    latency_objective,
    wire_error_objective,
)
from repro.obs.tracing import (
    JsonLinesSink,
    Span,
    SpanRecord,
    Tracer,
    mint_trace,
)

__all__ = [
    "AlertLatencyLedger",
    "BoundedLog",
    "Counter",
    "DEFAULT_ERROR_RETENTION",
    "DEFAULT_RESERVOIR_SIZE",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "JsonLinesSink",
    "MARKS",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "PeriodicReporter",
    "SLOBreach",
    "SLOEngine",
    "SLOObjective",
    "STAGES",
    "Span",
    "SpanRecord",
    "Tracer",
    "format_stats_line",
    "latency_objective",
    "mint_trace",
    "parse_prometheus",
    "render_dashboard",
    "render_prometheus",
    "wire_error_objective",
    "write_prometheus",
]
