"""Observability core: metrics registry, span tracing, exposition.

Stdlib-only.  One :class:`MetricsRegistry` travels through a live
service's layers (cursor, scheduler, monitor, serve index, wire
server); every component defaults to the shared no-op
:data:`NULL_REGISTRY` so uninstrumented runs pay nothing.  See
``docs/architecture.md`` § Observability for the metric catalog and
span taxonomy.
"""

from repro.obs.bounded import DEFAULT_ERROR_RETENTION, BoundedLog
from repro.obs.console import PeriodicReporter, format_stats_line
from repro.obs.exposition import (
    parse_prometheus,
    render_prometheus,
    write_prometheus,
)
from repro.obs.registry import (
    DEFAULT_RESERVOIR_SIZE,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.tracing import JsonLinesSink, Span, SpanRecord, Tracer

__all__ = [
    "BoundedLog",
    "Counter",
    "DEFAULT_ERROR_RETENTION",
    "DEFAULT_RESERVOIR_SIZE",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "JsonLinesSink",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "PeriodicReporter",
    "Span",
    "SpanRecord",
    "Tracer",
    "format_stats_line",
    "parse_prometheus",
    "render_prometheus",
    "write_prometheus",
]
