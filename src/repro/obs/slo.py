"""Declarative SLOs: rolling windows, error budgets, burn rates.

An :class:`SLOObjective` states what "good" means -- ``p95 of the
end-to-end alert latency stays under 250ms``, ``the wire error rate
stays under 1%`` -- and an :class:`SLOEngine` evaluates every attached
objective once per monitor tick:

* each evaluation classifies the tick as *good* or *bad* against the
  objective's threshold and appends it to a rolling window of the last
  ``window`` evaluations;
* the *error budget* is the fraction of that window allowed to be bad
  (``budget=0.1`` tolerates 10% bad ticks); ``budget_used`` is how much
  of it the current window has consumed, and ``burn_rate`` is the pace
  (1.0 = exactly exhausting the budget over a full window);
* three gauge families track every objective live --
  ``slo_healthy{slo}``, ``slo_budget_used{slo}``,
  ``slo_burn_rate{slo}``;
* the moment ``budget_used`` crosses 1.0 the engine reports a
  :class:`SLOBreach`, which the monitor turns into a typed
  ``SLO_BREACH`` operator alert on the ordinary alert bus -- wire
  subscribers see budget exhaustion through the same channel as
  detections.  Breaches are edge-triggered: one alert per excursion,
  re-armed when the budget recovers below 1.0.

The engine is strictly opt-in (``--slo-*`` CLI flags) and read-only
over the metrics surface, so attaching it cannot perturb detection
results -- only add operator alerts to the stream.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SLOObjective",
    "SLOBreach",
    "SLOEngine",
    "latency_objective",
    "wire_error_objective",
]

#: Wire counters whose sum forms the error numerator of the
#: ``error_rate`` objective kind.  Matched by prefix against snapshot
#: counter names so labeled children aggregate naturally.
_WIRE_ERROR_COUNTERS = (
    "wire_request_errors_total",
    "wire_internal_errors_total",
    "wire_frame_errors_total",
)
_WIRE_REQUEST_COUNTER = "wire_requests_total"


@dataclass(frozen=True)
class SLOObjective:
    """One service-level objective, declaratively."""

    name: str
    description: str
    kind: str  # "latency" | "error_rate"
    threshold: float
    window: int = 32
    budget: float = 0.1
    stage: str = "total"  # latency kind: alert_latency_seconds stage
    quantile: float = 0.95  # latency kind: which percentile to test

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "error_rate"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < self.budget <= 1.0:
            raise ValueError("budget must be within (0, 1]")
        if self.kind == "latency" and not 0.0 <= self.quantile <= 1.0:
            raise ValueError("quantile must be within [0, 1]")


def latency_objective(
    threshold_seconds: float,
    stage: str = "total",
    quantile: float = 0.95,
    window: int = 32,
    budget: float = 0.1,
    name: Optional[str] = None,
) -> SLOObjective:
    """``p<quantile>(alert_latency_seconds{stage}) < threshold``."""
    label = name or f"alert-latency-{stage}-p{int(round(quantile * 100))}"
    return SLOObjective(
        name=label,
        description=(
            f"p{int(round(quantile * 100))} of alert_latency_seconds"
            f"{{stage={stage}}} stays under {threshold_seconds}s"
        ),
        kind="latency",
        threshold=threshold_seconds,
        window=window,
        budget=budget,
        stage=stage,
        quantile=quantile,
    )


def wire_error_objective(
    max_ratio: float,
    window: int = 32,
    budget: float = 0.1,
    name: str = "wire-error-rate",
) -> SLOObjective:
    """``errors / requests`` over each evaluation interval stays under
    ``max_ratio`` (intervals with no new requests are skipped)."""
    return SLOObjective(
        name=name,
        description=f"wire error rate stays under {max_ratio:.2%}",
        kind="error_rate",
        threshold=max_ratio,
        window=window,
        budget=budget,
    )


@dataclass(frozen=True)
class SLOBreach:
    """An objective whose error budget just crossed exhaustion."""

    objective: SLOObjective
    value: float
    budget_used: float
    burn_rate: float

    @property
    def detail(self) -> str:
        return (
            f"{self.objective.description}; observed {self.value:.6g} vs "
            f"threshold {self.objective.threshold:.6g}, budget "
            f"{self.budget_used:.0%} used"
        )


class _ObjectiveState:
    __slots__ = ("window", "breached", "last_requests", "last_errors")

    def __init__(self, objective: SLOObjective) -> None:
        self.window: Deque[bool] = deque(maxlen=objective.window)
        self.breached = False
        self.last_requests = 0.0
        self.last_errors = 0.0


class SLOEngine:
    """Evaluates a set of objectives against a registry, once per tick."""

    def __init__(self, registry, objectives: Sequence[SLOObjective]) -> None:
        names = [objective.name for objective in objectives]
        if len(set(names)) != len(names):
            raise ValueError("objective names must be unique")
        self.registry = registry
        self.objectives: Tuple[SLOObjective, ...] = tuple(objectives)
        self._lock = threading.Lock()
        self._states = {
            objective.name: _ObjectiveState(objective)
            for objective in self.objectives
        }
        # Latency objectives re-read the same histogram child every
        # tick; cache the child so the hot path skips the family lookup.
        self._latency_children: Dict[str, object] = {}
        self._healthy = registry.gauge(
            "slo_healthy",
            "1 while the objective's error budget holds, 0 once breached.",
            labels=("slo",),
        )
        self._budget_used = registry.gauge(
            "slo_budget_used",
            "Fraction of the objective's error budget consumed (1.0 = exhausted).",
            labels=("slo",),
        )
        self._burn_rate = registry.gauge(
            "slo_burn_rate",
            "Pace of budget consumption (1.0 = exhausting exactly one "
            "window's budget per window).",
            labels=("slo",),
        )
        for objective in self.objectives:
            self._healthy.labels(slo=objective.name).set(1)
            self._budget_used.labels(slo=objective.name).set(0.0)
            self._burn_rate.labels(slo=objective.name).set(0.0)

    # -- measurement -------------------------------------------------------
    def _measure_latency(self, objective: SLOObjective) -> Optional[float]:
        child = self._latency_children.get(objective.name)
        if child is None:
            family = self.registry.histogram(
                "alert_latency_seconds",
                "Ingest-to-alert latency, broken down by pipeline stage.",
                labels=("stage",),
            )
            child = family.labels(stage=objective.stage)
            self._latency_children[objective.name] = child
        if child.count == 0:
            return None
        return child.percentile(objective.quantile)

    def _measure_error_rate(
        self, objective: SLOObjective, state: _ObjectiveState
    ) -> Optional[float]:
        # Counters only: evaluate() runs on the ingest hot path, and a
        # full snapshot would sort every histogram reservoir per tick.
        counters = self.registry.counter_values()
        requests = sum(
            value
            for name, value in counters.items()
            if name.startswith(_WIRE_REQUEST_COUNTER)
        )
        errors = sum(
            value
            for name, value in counters.items()
            if name.startswith(_WIRE_ERROR_COUNTERS)
        )
        delta_requests = requests - state.last_requests
        delta_errors = errors - state.last_errors
        state.last_requests = requests
        state.last_errors = errors
        if delta_requests <= 0:
            return None
        return max(delta_errors, 0.0) / delta_requests

    # -- evaluation --------------------------------------------------------
    def evaluate(self) -> List[SLOBreach]:
        """Classify this tick for every objective; report new breaches."""
        breaches: List[SLOBreach] = []
        with self._lock:
            for objective in self.objectives:
                state = self._states[objective.name]
                if objective.kind == "latency":
                    value = self._measure_latency(objective)
                else:
                    value = self._measure_error_rate(objective, state)
                if value is None:
                    # Nothing observable this tick -- neither good nor
                    # bad; the window and budget hold still.
                    continue
                state.window.append(value > objective.threshold)
                bad = sum(state.window)
                allowed = objective.budget * objective.window
                budget_used = bad / allowed if allowed else float(bad > 0)
                bad_fraction = bad / len(state.window)
                burn_rate = bad_fraction / objective.budget
                healthy = budget_used < 1.0
                self._healthy.labels(slo=objective.name).set(int(healthy))
                self._budget_used.labels(slo=objective.name).set(budget_used)
                self._burn_rate.labels(slo=objective.name).set(burn_rate)
                if not healthy and not state.breached:
                    state.breached = True
                    breaches.append(
                        SLOBreach(objective, value, budget_used, burn_rate)
                    )
                elif healthy:
                    state.breached = False
        return breaches

    def state(self) -> Dict[str, Dict[str, float]]:
        """Per-objective budget state for the health surface."""
        out: Dict[str, Dict[str, float]] = {}
        with self._lock:
            for objective in self.objectives:
                state = self._states[objective.name]
                bad = sum(state.window)
                allowed = objective.budget * objective.window
                budget_used = bad / allowed if allowed else float(bad > 0)
                window_len = len(state.window)
                burn_rate = (
                    (bad / window_len) / objective.budget if window_len else 0.0
                )
                out[objective.name] = {
                    "healthy": budget_used < 1.0,
                    "breached": state.breached,
                    "budget_used": budget_used,
                    "burn_rate": burn_rate,
                    "window": window_len,
                    "threshold": objective.threshold,
                }
        return out
