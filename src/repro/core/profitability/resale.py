"""Profitability of reselling a wash-traded NFT (Sec. VI-B).

On venues without a reward program the only way to profit is to resell
the pumped NFT to an outsider at a higher price.  The per-activity
balance is

    balance = resell_price - (buy_price + fees)                   (Eq. 3)

with fees covering the gas of the wash trades and the venue fees they
paid.  The analysis reports three views, as the paper does: the naive
buy-vs-resell comparison, the fee-inclusive ETH balance, and the USD
balance using the exchange rate of each transaction's day.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.chain.transaction import Transaction
from repro.core.activity import WashTradingActivity
from repro.core.detectors.pipeline import PipelineResult
from repro.core.profitability.context import MarketContext
from repro.ingest.dataset import NFTDataset
from repro.ingest.records import NFTTransfer
from repro.utils.currency import wei_to_eth
from repro.utils.timeutil import SECONDS_PER_DAY


@dataclass
class ResaleOutcome:
    """Gain/loss of one resale-style activity."""

    activity: WashTradingActivity
    venue: Optional[str]
    sold: bool
    buy_price_wei: int = 0
    resell_price_wei: int = 0
    fees_wei: int = 0
    buy_timestamp: int = 0
    resell_timestamp: int = 0
    buy_price_usd: float = 0.0
    resell_price_usd: float = 0.0
    fees_usd: float = 0.0

    # -- ETH views ------------------------------------------------------------
    @property
    def gross_profit_eth(self) -> float:
        """Resell price minus buy price, ignoring fees."""
        return wei_to_eth(self.resell_price_wei - self.buy_price_wei)

    @property
    def net_profit_eth(self) -> float:
        """Eq. 3 in ETH: resell minus buy minus fees."""
        return wei_to_eth(self.resell_price_wei - self.buy_price_wei - self.fees_wei)

    @property
    def net_profit_usd(self) -> float:
        """Eq. 3 in USD at per-transaction exchange rates."""
        return self.resell_price_usd - self.buy_price_usd - self.fees_usd

    @property
    def sold_same_day(self) -> bool:
        """True if the resale happened the day the manipulation ended."""
        if not self.sold:
            return False
        return (
            self.resell_timestamp - self.activity.component.last_timestamp
            <= SECONDS_PER_DAY
        )

    @property
    def sold_within_month(self) -> bool:
        """True if the resale happened within 30 days of the manipulation's end."""
        if not self.sold:
            return False
        return (
            self.resell_timestamp - self.activity.component.last_timestamp
            <= 30 * SECONDS_PER_DAY
        )


@dataclass
class ResaleProfitability:
    """Aggregate resale statistics (the Sec. VI-B numbers)."""

    outcomes: List[ResaleOutcome] = field(default_factory=list)

    @property
    def total_activities(self) -> int:
        """Number of activities examined."""
        return len(self.outcomes)

    @property
    def sold(self) -> List[ResaleOutcome]:
        """Activities followed by a sale to an external entity."""
        return [outcome for outcome in self.outcomes if outcome.sold]

    @property
    def unsold_count(self) -> int:
        """Activities never followed by an external sale."""
        return self.total_activities - len(self.sold)

    @property
    def unsold_fraction(self) -> float:
        """Share of activities never followed by an external sale (~65% in the paper)."""
        if not self.outcomes:
            return 0.0
        return self.unsold_count / self.total_activities

    # -- success rates under the three accounting views -----------------------------
    def success_rate_gross(self) -> float:
        """Share of sold activities with resell > buy (no fees)."""
        sold = self.sold
        if not sold:
            return 0.0
        return sum(1 for outcome in sold if outcome.gross_profit_eth > 0) / len(sold)

    def success_rate_net(self) -> float:
        """Share of sold activities with a positive fee-inclusive ETH balance."""
        sold = self.sold
        if not sold:
            return 0.0
        return sum(1 for outcome in sold if outcome.net_profit_eth > 0) / len(sold)

    def success_rate_usd(self) -> float:
        """Share of sold activities with a positive USD balance."""
        sold = self.sold
        if not sold:
            return 0.0
        return sum(1 for outcome in sold if outcome.net_profit_usd > 0) / len(sold)

    # -- magnitude statistics -----------------------------------------------------------
    def mean_gain_eth(self, net: bool = True) -> float:
        """Mean ETH profit of the profitable sold activities."""
        gains = [
            outcome.net_profit_eth if net else outcome.gross_profit_eth
            for outcome in self.sold
            if (outcome.net_profit_eth if net else outcome.gross_profit_eth) > 0
        ]
        return sum(gains) / len(gains) if gains else 0.0

    def mean_loss_eth(self, net: bool = True) -> float:
        """Mean ETH loss (positive number) of the losing sold activities."""
        losses = [
            -(outcome.net_profit_eth if net else outcome.gross_profit_eth)
            for outcome in self.sold
            if (outcome.net_profit_eth if net else outcome.gross_profit_eth) <= 0
        ]
        return sum(losses) / len(losses) if losses else 0.0

    def max_gain_eth(self, net: bool = True) -> float:
        """Largest ETH profit among sold activities."""
        profits = [
            outcome.net_profit_eth if net else outcome.gross_profit_eth
            for outcome in self.sold
        ]
        return max(profits) if profits else 0.0

    def max_loss_eth(self, net: bool = True) -> float:
        """Largest ETH loss (positive number) among sold activities."""
        profits = [
            outcome.net_profit_eth if net else outcome.gross_profit_eth
            for outcome in self.sold
        ]
        return -min(profits) if profits else 0.0

    def sold_same_day_fraction(self) -> float:
        """Share of sold NFTs resold the day the manipulation ended."""
        sold = self.sold
        if not sold:
            return 0.0
        return sum(1 for outcome in sold if outcome.sold_same_day) / len(sold)

    def sold_within_month_fraction(self) -> float:
        """Share of sold NFTs resold within 30 days of the manipulation's end."""
        sold = self.sold
        if not sold:
            return 0.0
        return sum(1 for outcome in sold if outcome.sold_within_month) / len(sold)


def _acquisition_transfer(
    dataset: NFTDataset, activity: WashTradingActivity
) -> Optional[NFTTransfer]:
    """The last transfer that brought the NFT into the colluding set."""
    component = activity.component
    acquisition: Optional[NFTTransfer] = None
    for transfer in dataset.transfers_of(activity.nft):
        if transfer.timestamp >= component.first_timestamp:
            break
        if (
            transfer.recipient in component.accounts
            and transfer.sender not in component.accounts
        ):
            acquisition = transfer
    return acquisition


def _resale_transfer(
    dataset: NFTDataset, activity: WashTradingActivity
) -> Optional[NFTTransfer]:
    """The first paid transfer of the NFT out of the colluding set."""
    component = activity.component
    for transfer in dataset.transfers_of(activity.nft):
        if transfer.timestamp <= component.last_timestamp:
            continue
        if (
            transfer.sender in component.accounts
            and transfer.recipient not in component.accounts
            and transfer.price_wei > 0
        ):
            return transfer
    return None


def analyze_resale_activity(
    activity: WashTradingActivity,
    dataset: NFTDataset,
    context: MarketContext,
) -> ResaleOutcome:
    """Compute Eq. 3 for one activity."""
    component = activity.component
    oracle = context.oracle
    treasuries = context.all_treasuries()

    acquisition = _acquisition_transfer(dataset, activity)
    resale = _resale_transfer(dataset, activity)

    # Fees: gas of the wash-trade transactions paid by members, plus venue
    # fees those transactions routed to any marketplace treasury.
    wash_txs: Dict[str, Transaction] = {}
    for member in component.accounts:
        for tx in dataset.transactions_of(member):
            if tx.hash in component.tx_hashes and tx.hash not in wash_txs:
                wash_txs[tx.hash] = tx
    fees_wei = 0
    fees_usd = 0.0
    for tx in wash_txs.values():
        if tx.sender in component.accounts:
            fees_wei += tx.fee_wei
            fees_usd += oracle.wei_to_usd(tx.fee_wei, tx.timestamp)
        to_treasury = sum(
            movement.amount_wei
            for movement in tx.value_transfers
            if movement.recipient in treasuries
        )
        fees_wei += to_treasury
        fees_usd += oracle.wei_to_usd(to_treasury, tx.timestamp)

    buy_price_wei = acquisition.price_wei if acquisition else 0
    buy_timestamp = acquisition.timestamp if acquisition else component.first_timestamp
    resell_price_wei = resale.price_wei if resale else 0
    resell_timestamp = resale.timestamp if resale else 0

    return ResaleOutcome(
        activity=activity,
        venue=component.dominant_marketplace(),
        sold=resale is not None,
        buy_price_wei=buy_price_wei,
        resell_price_wei=resell_price_wei,
        fees_wei=fees_wei,
        buy_timestamp=buy_timestamp,
        resell_timestamp=resell_timestamp,
        buy_price_usd=oracle.wei_to_usd(buy_price_wei, buy_timestamp),
        resell_price_usd=(
            oracle.wei_to_usd(resell_price_wei, resell_timestamp) if resale else 0.0
        ),
        fees_usd=fees_usd,
    )


def analyze_resale_profitability(
    result: PipelineResult,
    dataset: NFTDataset,
    context: MarketContext,
    venues: Optional[Sequence[str]] = None,
) -> ResaleProfitability:
    """Run the resale analysis over every activity on non-reward venues."""
    target_venues = set(venues) if venues is not None else set(context.non_reward_venues())
    profitability = ResaleProfitability()
    for activity in result.activities:
        venue = activity.component.dominant_marketplace()
        if venue is None or venue not in target_venues:
            continue
        profitability.outcomes.append(
            analyze_resale_activity(activity, dataset, context)
        )
    return profitability
