"""Profitability analysis of wash trading (Sec. VI) and case studies (Sec. VII)."""

from repro.core.profitability.context import MarketContext
from repro.core.profitability.rewards import (
    RewardOutcome,
    RewardProfitability,
    analyze_reward_profitability,
)
from repro.core.profitability.resale import (
    ResaleOutcome,
    ResaleProfitability,
    analyze_resale_profitability,
)
from repro.core.profitability.case_studies import (
    best_reward_operation,
    best_resale_operation,
    find_rarity_games,
)

__all__ = [
    "MarketContext",
    "RewardOutcome",
    "RewardProfitability",
    "analyze_reward_profitability",
    "ResaleOutcome",
    "ResaleProfitability",
    "analyze_resale_profitability",
    "best_reward_operation",
    "best_resale_operation",
    "find_rarity_games",
]
