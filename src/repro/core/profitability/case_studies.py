"""Case-study extraction (Sec. VII).

The paper walks through three notable operations: the most lucrative
reward-system exploit, a high-return resale pump, and the "rarity game"
pattern in which NFTs are repeatedly sold on a venue and silently handed
back to the seller off-market to farm sale-triggered trait upgrades.
These helpers surface the same kinds of examples from a pipeline run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.activity import WashTradingActivity
from repro.core.detectors.pipeline import PipelineResult
from repro.core.profitability.resale import ResaleOutcome
from repro.core.profitability.rewards import RewardOutcome, RewardProfitability


def best_reward_operation(
    profitability: Mapping[str, RewardProfitability]
) -> Optional[RewardOutcome]:
    """The single most profitable reward-farming activity across venues."""
    best: Optional[RewardOutcome] = None
    for venue_stats in profitability.values():
        for outcome in venue_stats.outcomes:
            if best is None or outcome.balance_usd > best.balance_usd:
                best = outcome
    return best


def best_resale_operation(outcomes: Sequence[ResaleOutcome]) -> Optional[ResaleOutcome]:
    """The single most profitable resale activity."""
    sold = [outcome for outcome in outcomes if outcome.sold]
    if not sold:
        return None
    return max(sold, key=lambda outcome: outcome.net_profit_usd)


@dataclass
class RarityGameCase:
    """One suspected rarity-farming operation.

    The fingerprint: within one activity, the same seller repeatedly sells
    the NFT through a marketplace (paid legs) and each buyer returns it
    off-market for free (unpaid legs outside any venue).
    """

    activity: WashTradingActivity
    seller: str
    paid_marketplace_sales: int
    free_offmarket_returns: int


def find_rarity_games(result: PipelineResult, min_rounds: int = 2) -> List[RarityGameCase]:
    """Detect the OG:Crystals-style rarity-farming pattern."""
    cases: List[RarityGameCase] = []
    for activity in result.activities:
        component = activity.component
        sales_by_seller: Dict[str, int] = {}
        returns_by_recipient: Dict[str, int] = {}
        for transfer in component.transfers:
            if transfer.marketplace is not None and transfer.price_wei > 0:
                sales_by_seller[transfer.sender] = sales_by_seller.get(transfer.sender, 0) + 1
            if transfer.marketplace is None and transfer.price_wei == 0:
                returns_by_recipient[transfer.recipient] = (
                    returns_by_recipient.get(transfer.recipient, 0) + 1
                )
        for seller, sale_count in sales_by_seller.items():
            free_returns = returns_by_recipient.get(seller, 0)
            if sale_count >= min_rounds and free_returns >= min_rounds:
                cases.append(
                    RarityGameCase(
                        activity=activity,
                        seller=seller,
                        paid_marketplace_sales=sale_count,
                        free_offmarket_returns=free_returns,
                    )
                )
                break
    return cases
