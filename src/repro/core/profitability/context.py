"""Market metadata the profitability analysis needs.

The paper resolves these from Etherscan and the marketplaces' public
documentation: the addresses of the venue contracts, their fee
treasuries, the reward-token distributor contracts and the reward tokens
themselves, plus a USD price source.  The world builder produces one
:class:`MarketContext` per simulated world.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.services.oracle import PriceOracle


@dataclass
class MarketContext:
    """Addresses and prices the gain/loss analysis relies on."""

    #: Venue name -> marketplace contract address.
    marketplace_addresses: Mapping[str, str]
    #: Venue name -> fee treasury address.
    treasury_addresses: Mapping[str, str]
    #: Venue name -> reward distributor contract address (reward venues only).
    distributor_addresses: Mapping[str, str] = field(default_factory=dict)
    #: Venue name -> reward token contract address (reward venues only).
    reward_token_addresses: Mapping[str, str] = field(default_factory=dict)
    #: Venue name -> reward token symbol (for USD pricing).
    reward_token_symbols: Mapping[str, str] = field(default_factory=dict)
    #: USD price source.
    oracle: PriceOracle = field(default_factory=PriceOracle)

    def reward_venues(self) -> list[str]:
        """Venues that run a token reward program."""
        return sorted(self.distributor_addresses)

    def non_reward_venues(self) -> list[str]:
        """Venues without a reward program (resale analysis targets)."""
        return sorted(
            name
            for name in self.marketplace_addresses
            if name not in self.distributor_addresses
        )

    def treasury_of(self, venue: str) -> Optional[str]:
        """Treasury address of a venue, if known."""
        return self.treasury_addresses.get(venue)

    def all_treasuries(self) -> set[str]:
        """Every known treasury address."""
        return set(self.treasury_addresses.values())
