"""Profitability of reward-system exploitation (Sec. VI-A, Table III).

For every confirmed activity on a reward venue the balance is

    balance = rewards - (NFTM_fees + Transaction_fees)            (Eq. 2)

where *rewards* is the USD value (at claim time) of the tokens obtained
by the participants in their first claim after the activity,
*NFTM_fees* the ETH sent to the venue treasury during the wash trades
and *Transaction_fees* the gas spent on the wash trades and the claims.
Activities whose participants never claim are reported separately and
excluded from the success statistics, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.chain.transaction import Transaction
from repro.core.activity import WashTradingActivity
from repro.core.detectors.pipeline import PipelineResult
from repro.core.profitability.context import MarketContext
from repro.ingest.dataset import NFTDataset
from repro.utils.currency import wei_to_eth


@dataclass
class RewardOutcome:
    """Gain/loss of one reward-farming activity."""

    activity: WashTradingActivity
    venue: str
    claimed: bool
    rewards_usd: float = 0.0
    nftm_fees_usd: float = 0.0
    transaction_fees_usd: float = 0.0
    volume_eth: float = 0.0
    tokens_claimed: float = 0.0

    @property
    def balance_usd(self) -> float:
        """Eq. 2: rewards minus venue fees minus gas."""
        return self.rewards_usd - (self.nftm_fees_usd + self.transaction_fees_usd)

    @property
    def successful(self) -> bool:
        """True if the activity closed with a positive balance."""
        return self.claimed and self.balance_usd > 0


@dataclass
class RewardProfitability:
    """Table III statistics for one venue."""

    venue: str
    outcomes: List[RewardOutcome] = field(default_factory=list)
    unclaimed_count: int = 0

    @property
    def successful(self) -> List[RewardOutcome]:
        """Outcomes with a positive balance."""
        return [outcome for outcome in self.outcomes if outcome.successful]

    @property
    def failed(self) -> List[RewardOutcome]:
        """Claimed outcomes with a non-positive balance."""
        return [outcome for outcome in self.outcomes if not outcome.successful]

    @property
    def success_rate(self) -> float:
        """Share of claimed activities that closed with a gain."""
        if not self.outcomes:
            return 0.0
        return len(self.successful) / len(self.outcomes)

    # -- Table III rows ---------------------------------------------------------
    def volume_stats_eth(self, successful: bool) -> Dict[str, float]:
        """Min / max / mean activity volume in ETH for one outcome class."""
        group = self.successful if successful else self.failed
        volumes = [outcome.volume_eth for outcome in group]
        if not volumes:
            return {"min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "min": min(volumes),
            "max": max(volumes),
            "mean": sum(volumes) / len(volumes),
        }

    def gain_stats_usd(self, successful: bool) -> Dict[str, float]:
        """Max / mean / total balance in USD for one outcome class."""
        group = self.successful if successful else self.failed
        balances = [outcome.balance_usd for outcome in group]
        if not balances:
            return {"max": 0.0, "mean": 0.0, "total": 0.0}
        extreme = max(balances) if successful else min(balances)
        return {
            "max": extreme,
            "mean": sum(balances) / len(balances),
            "total": sum(balances),
        }


def _claim_transactions(
    dataset: NFTDataset,
    account: str,
    distributor_address: str,
    not_before_ts: int,
) -> List[Transaction]:
    """Transactions from ``account`` to the distributor at or after a timestamp."""
    claims = [
        tx
        for tx in dataset.transactions_of(account)
        if tx.to == distributor_address
        and tx.sender == account
        and tx.timestamp >= not_before_ts
        and tx.succeeded
    ]
    claims.sort(key=lambda tx: (tx.block_number, tx.hash))
    return claims


def _tokens_received(tx: Transaction, token_address: str, account: str) -> int:
    """Reward-token units minted/transferred to ``account`` in one transaction."""
    total = 0
    for log in tx.logs:
        if log.address == token_address and log.is_erc20_transfer and log.topics[2] == account:
            total += int(log.data.get("value", 0))
    return total


def analyze_reward_activity(
    activity: WashTradingActivity,
    venue: str,
    dataset: NFTDataset,
    context: MarketContext,
) -> RewardOutcome:
    """Compute Eq. 2 for one activity on one reward venue."""
    component = activity.component
    oracle = context.oracle
    distributor = context.distributor_addresses[venue]
    token_address = context.reward_token_addresses[venue]
    symbol = context.reward_token_symbols[venue]
    treasury = context.treasury_addresses.get(venue)

    # Gas spent on the wash trades themselves (paid by member senders).
    wash_txs: Dict[str, Transaction] = {}
    for member in component.accounts:
        for tx in dataset.transactions_of(member):
            if tx.hash in component.tx_hashes and tx.hash not in wash_txs:
                wash_txs[tx.hash] = tx

    transaction_fees_usd = 0.0
    nftm_fees_usd = 0.0
    for tx in wash_txs.values():
        if tx.sender in component.accounts:
            transaction_fees_usd += oracle.wei_to_usd(tx.fee_wei, tx.timestamp)
        if treasury is not None:
            to_treasury = sum(
                movement.amount_wei
                for movement in tx.value_transfers
                if movement.recipient == treasury
            )
            nftm_fees_usd += oracle.wei_to_usd(to_treasury, tx.timestamp)

    # Rewards: the first claim of each member after the activity.
    rewards_usd = 0.0
    tokens_claimed_units = 0
    claimed = False
    for member in component.accounts:
        claims = _claim_transactions(
            dataset, member, distributor, not_before_ts=component.first_timestamp
        )
        if not claims:
            continue
        first_claim = claims[0]
        claimed = True
        transaction_fees_usd += oracle.wei_to_usd(first_claim.fee_wei, first_claim.timestamp)
        received = _tokens_received(first_claim, token_address, member)
        tokens_claimed_units += received
        rewards_usd += oracle.token_to_usd(
            symbol, received / 1e18, first_claim.timestamp
        )

    return RewardOutcome(
        activity=activity,
        venue=venue,
        claimed=claimed,
        rewards_usd=rewards_usd,
        nftm_fees_usd=nftm_fees_usd,
        transaction_fees_usd=transaction_fees_usd,
        volume_eth=wei_to_eth(component.volume_wei),
        tokens_claimed=tokens_claimed_units / 1e18,
    )


def analyze_reward_profitability(
    result: PipelineResult,
    dataset: NFTDataset,
    context: MarketContext,
    venues: Optional[Sequence[str]] = None,
) -> Dict[str, RewardProfitability]:
    """Compute Table III for every reward venue."""
    venues = list(venues) if venues is not None else context.reward_venues()
    profitability: Dict[str, RewardProfitability] = {
        venue: RewardProfitability(venue=venue) for venue in venues
    }
    for venue in venues:
        for activity in result.activities_on(venue):
            outcome = analyze_reward_activity(activity, venue, dataset, context)
            if outcome.claimed:
                profitability[venue].outcomes.append(outcome)
            else:
                profitability[venue].unclaimed_count += 1
    return profitability
