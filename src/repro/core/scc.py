"""Strongly connected components.

The paper uses "Tarjan's algorithm with Nuutila's modifications
implemented by the Python library NetworkX" and then keeps the SCCs with
at least two nodes **plus** single nodes that carry a self-loop (a
self-trade is a one-node wash trade).  This module provides both an
independent iterative Tarjan implementation and a NetworkX-backed one;
tests cross-check them against each other, and the pipeline uses the
NetworkX path by default, as the paper does.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Set

import networkx as nx


def tarjan_scc(graph: nx.DiGraph | nx.MultiDiGraph) -> List[Set[Hashable]]:
    """Iterative Tarjan SCC over a (multi)digraph.

    Returns every strongly connected component, including trivial
    single-node ones, in reverse topological order of the condensation
    (the classic Tarjan emission order).
    """
    index_counter = 0
    index: dict[Hashable, int] = {}
    lowlink: dict[Hashable, int] = {}
    on_stack: Set[Hashable] = set()
    stack: List[Hashable] = []
    components: List[Set[Hashable]] = []

    for root in graph.nodes:
        if root in index:
            continue
        # Each frame is (node, iterator over successors).
        work: List[tuple[Hashable, Iterable[Hashable]]] = [(root, iter(graph.successors(root)))]
        index[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)

        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index:
                    index[successor] = lowlink[successor] = index_counter
                    index_counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(graph.successors(successor))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: Set[Hashable] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


def strongly_connected_components(
    graph: nx.DiGraph | nx.MultiDiGraph, use_networkx: bool = True
) -> List[Set[Hashable]]:
    """SCCs under the paper's definition.

    Keeps components with at least two nodes, plus single-node components
    whose node has a self-loop.
    """
    if use_networkx:
        raw = [set(component) for component in nx.strongly_connected_components(graph)]
    else:
        raw = tarjan_scc(graph)

    kept: List[Set[Hashable]] = []
    for component in raw:
        if len(component) >= 2:
            kept.append(component)
            continue
        (only,) = component
        if graph.has_edge(only, only):
            kept.append(component)
    return kept


def has_suspicious_component(graph: nx.DiGraph | nx.MultiDiGraph) -> bool:
    """True if the graph has at least one SCC under the paper's definition."""
    return bool(strongly_connected_components(graph))
