"""Strongly connected components.

The paper uses "Tarjan's algorithm with Nuutila's modifications
implemented by the Python library NetworkX" and then keeps the SCCs with
at least two nodes **plus** single nodes that carry a self-loop (a
self-trade is a one-node wash trade).  This module provides both an
independent iterative Tarjan implementation and a NetworkX-backed one;
tests cross-check them against each other, and the pipeline uses the
NetworkX path by default, as the paper does.

The iterative Tarjan is split in two layers: a flat, integer-indexed
adjacency-list core (:func:`tarjan_scc_adjacency`) used directly by the
columnar detection engine, and a thin graph-object wrapper
(:func:`tarjan_scc`) that preserves the original NetworkX-facing API.
"""

from __future__ import annotations

from typing import Hashable, List, Sequence, Set

import networkx as nx


def tarjan_scc_adjacency(
    node_count: int, adjacency: Sequence[Sequence[int]]
) -> List[List[int]]:
    """Iterative Tarjan SCC over an integer adjacency list.

    Nodes are the integers ``0 .. node_count - 1``; ``adjacency[u]`` lists
    the successors of ``u``.  Duplicate successors are tolerated (they
    only re-check an already-visited node) but cost time on every walk,
    so builders are expected to dedupe edges once at construction --
    ``token_components`` and the CSR builder in
    :mod:`repro.engine.kernels` both keep the first occurrence, which
    leaves discovery and emission order unchanged.  Returns every
    strongly connected component, including trivial single-node ones, in
    reverse topological order of the condensation (the classic Tarjan
    emission order).
    """
    index = [-1] * node_count
    lowlink = [0] * node_count
    on_stack = [False] * node_count
    stack: List[int] = []
    components: List[List[int]] = []
    counter = 0

    for root in range(node_count):
        if index[root] != -1:
            continue
        # Each frame is (node, position of the next successor to visit).
        work: List[List[int]] = [[root, 0]]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True

        while work:
            frame = work[-1]
            node = frame[0]
            successors = adjacency[node]
            advanced = False
            position = frame[1]
            while position < len(successors):
                successor = successors[position]
                position += 1
                if index[successor] == -1:
                    frame[1] = position
                    index[successor] = lowlink[successor] = counter
                    counter += 1
                    stack.append(successor)
                    on_stack[successor] = True
                    work.append([successor, 0])
                    advanced = True
                    break
                if on_stack[successor] and index[successor] < lowlink[node]:
                    lowlink[node] = index[successor]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
            if lowlink[node] == index[node]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def kept_components_adjacency(
    node_count: int,
    adjacency: Sequence[Sequence[int]],
    has_self_loop: Sequence[bool],
) -> List[List[int]]:
    """SCCs under the paper's definition, over a flat adjacency list.

    Keeps components with at least two nodes, plus single-node components
    whose node has a self-loop (``has_self_loop[u]`` flags those).
    """
    kept: List[List[int]] = []
    for component in tarjan_scc_adjacency(node_count, adjacency):
        if len(component) >= 2 or has_self_loop[component[0]]:
            kept.append(component)
    return kept


def tarjan_scc(graph: nx.DiGraph | nx.MultiDiGraph) -> List[Set[Hashable]]:
    """Iterative Tarjan SCC over a (multi)digraph.

    Returns every strongly connected component, including trivial
    single-node ones, in reverse topological order of the condensation
    (the classic Tarjan emission order).
    """
    nodes = list(graph.nodes)
    ids = {node: position for position, node in enumerate(nodes)}
    adjacency = [
        [ids[successor] for successor in graph.successors(node)] for node in nodes
    ]
    return [
        {nodes[member] for member in component}
        for component in tarjan_scc_adjacency(len(nodes), adjacency)
    ]


def strongly_connected_components(
    graph: nx.DiGraph | nx.MultiDiGraph, use_networkx: bool = True
) -> List[Set[Hashable]]:
    """SCCs under the paper's definition.

    Keeps components with at least two nodes, plus single-node components
    whose node has a self-loop.
    """
    if use_networkx:
        raw = [set(component) for component in nx.strongly_connected_components(graph)]
    else:
        raw = tarjan_scc(graph)

    kept: List[Set[Hashable]] = []
    for component in raw:
        if len(component) >= 2:
            kept.append(component)
            continue
        (only,) = component
        if graph.has_edge(only, only):
            kept.append(component)
    return kept


def has_suspicious_component(graph: nx.DiGraph | nx.MultiDiGraph) -> bool:
    """True if the graph has at least one SCC under the paper's definition."""
    return bool(strongly_connected_components(graph))
