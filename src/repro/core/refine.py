"""Candidate search and refinement (Sec. IV-A / IV-B).

The funnel has four stages:

1. **Candidates** -- every NFT whose transaction graph contains an SCC of
   at least two nodes or a single node with a self-loop.
2. **Service-account removal** -- drop Exchange / CeFi / game accounts
   (per the label registry) and the null address from the graphs, then
   recompute SCCs.
3. **Contract-account removal** -- drop every account that holds
   bytecode, then recompute SCCs.
4. **Zero-volume removal** -- drop components in which no intra-component
   transfer moved any ETH or ERC-20 value.

The funnel records, at each stage, how many NFTs still have a component
and how many accounts are involved -- the numbers the paper reports in
the running text (905,562 -> 318,500 -> 305,314 -> 13,156 NFTs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.chain.types import NFTKey
from repro.core.activity import CandidateComponent
from repro.core.graph import NFTTransactionGraph, build_all_graphs
from repro.core.scc import strongly_connected_components
from repro.ingest.dataset import NFTDataset
from repro.services.labels import LabelRegistry


@dataclass(frozen=True)
class FunnelStage:
    """Statistics of one refinement stage."""

    name: str
    nft_count: int
    component_count: int
    account_count: int


@dataclass
class RefinementResult:
    """Final candidates plus the per-stage funnel statistics."""

    candidates: List[CandidateComponent]
    stages: List[FunnelStage] = field(default_factory=list)

    def stage(self, name: str) -> FunnelStage:
        """Look up one stage by name."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"no funnel stage named {name!r}")

    @property
    def final_nft_count(self) -> int:
        """NFTs that still have a candidate component after refinement."""
        return len({candidate.nft for candidate in self.candidates})

    @property
    def final_account_count(self) -> int:
        """Accounts involved in the final candidates."""
        return len({account for candidate in self.candidates for account in candidate.accounts})


class RefinementFunnel:
    """Runs the candidate search and the three refinement steps."""

    STAGE_CANDIDATES = "candidates"
    STAGE_SERVICES_REMOVED = "services-removed"
    STAGE_CONTRACTS_REMOVED = "contracts-removed"
    STAGE_NONZERO_VOLUME = "nonzero-volume"

    def __init__(
        self,
        labels: LabelRegistry,
        is_contract: Callable[[str], bool],
        skip_service_removal: bool = False,
        skip_contract_removal: bool = False,
        skip_zero_volume_removal: bool = False,
    ) -> None:
        self.labels = labels
        self.is_contract = is_contract
        self.skip_service_removal = skip_service_removal
        self.skip_contract_removal = skip_contract_removal
        self.skip_zero_volume_removal = skip_zero_volume_removal

    # -- public API -----------------------------------------------------------
    def run(self, dataset: NFTDataset) -> RefinementResult:
        """Run candidate search plus refinement over a full dataset."""
        graphs = build_all_graphs(dataset.transfers_by_nft)
        stages: List[FunnelStage] = []

        components = self._components_of(graphs)
        stages.append(self._stage_stats(self.STAGE_CANDIDATES, components))

        if not self.skip_service_removal:
            graphs = {
                nft: graph.without_nodes(
                    node for node in graph.nodes if self.labels.is_graph_excluded_service(node)
                )
                for nft, graph in graphs.items()
            }
            components = self._components_of(graphs)
        stages.append(self._stage_stats(self.STAGE_SERVICES_REMOVED, components))

        if not self.skip_contract_removal:
            graphs = {
                nft: graph.without_nodes(
                    node for node in graph.nodes if self.is_contract(node)
                )
                for nft, graph in graphs.items()
            }
            components = self._components_of(graphs)
        stages.append(self._stage_stats(self.STAGE_CONTRACTS_REMOVED, components))

        if not self.skip_zero_volume_removal:
            components = {
                nft: [component for component in nft_components if not component.is_zero_volume]
                for nft, nft_components in components.items()
            }
            components = {nft: comps for nft, comps in components.items() if comps}
        stages.append(self._stage_stats(self.STAGE_NONZERO_VOLUME, components))

        flattened = [
            component
            for nft_components in components.values()
            for component in nft_components
        ]
        return RefinementResult(candidates=flattened, stages=stages)

    # -- internals ----------------------------------------------------------------
    def _components_of(
        self, graphs: Dict[NFTKey, NFTTransactionGraph]
    ) -> Dict[NFTKey, List[CandidateComponent]]:
        components: Dict[NFTKey, List[CandidateComponent]] = {}
        for nft, graph in graphs.items():
            if graph.edge_count == 0:
                continue
            sccs = strongly_connected_components(graph.graph)
            if not sccs:
                continue
            nft_components = []
            for member_set in sccs:
                members = frozenset(member_set)
                transfers = tuple(graph.edges_between(members))
                if not transfers:
                    continue
                nft_components.append(
                    CandidateComponent(nft=nft, accounts=members, transfers=transfers)
                )
            if nft_components:
                components[nft] = nft_components
        return components

    @staticmethod
    def _stage_stats(
        name: str, components: Dict[NFTKey, List[CandidateComponent]]
    ) -> FunnelStage:
        accounts: Set[str] = set()
        component_count = 0
        for nft_components in components.values():
            for component in nft_components:
                component_count += 1
                accounts.update(component.accounts)
        return FunnelStage(
            name=name,
            nft_count=len(components),
            component_count=component_count,
            account_count=len(accounts),
        )
