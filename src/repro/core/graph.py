"""Per-NFT transaction graphs.

For each NFT *i* the paper builds a directed multigraph ``G_i = (V_i,
E_i)``: one node per account ever involved in a transaction of that NFT,
and one edge ``u -> v`` per transaction in which ``u`` sells (or simply
transfers) the NFT to ``v``, annotated with the tuple ``(t, h, s, p)`` --
timestamp, transaction hash, interacted smart contract and amount paid.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.chain.types import NFTKey
from repro.ingest.records import NFTTransfer


@dataclass
class NFTTransactionGraph:
    """The transaction multigraph of one NFT."""

    nft: NFTKey
    graph: nx.MultiDiGraph
    transfers: List[NFTTransfer] = field(default_factory=list)
    #: Sorted transfer timestamps, built lazily for bisect-based queries.
    _timestamps: Optional[List[int]] = field(default=None, repr=False, compare=False)

    # -- structure ---------------------------------------------------------
    @property
    def nodes(self) -> Set[str]:
        """Accounts that ever held or received this NFT."""
        return set(self.graph.nodes)

    @property
    def edge_count(self) -> int:
        """Number of transfers represented in the graph."""
        return self.graph.number_of_edges()

    def has_self_loop(self, node: str) -> bool:
        """True if the node ever transferred the NFT to itself."""
        return self.graph.has_edge(node, node)

    def edges_between(self, members: Iterable[str]) -> List[NFTTransfer]:
        """Transfers whose both endpoints are inside ``members``."""
        member_set = set(members)
        return [
            transfer
            for transfer in self.transfers
            if transfer.sender in member_set and transfer.recipient in member_set
        ]

    def without_nodes(self, excluded: Iterable[str]) -> "NFTTransactionGraph":
        """A copy of the graph with the given accounts (and their edges) removed."""
        excluded_set = set(excluded)
        if not excluded_set or excluded_set.isdisjoint(self.graph.nodes):
            return self
        kept_transfers = [
            transfer
            for transfer in self.transfers
            if transfer.sender not in excluded_set
            and transfer.recipient not in excluded_set
        ]
        return build_transaction_graph(self.nft, kept_transfers)

    # -- chronology -----------------------------------------------------------
    def first_transfer(self) -> Optional[NFTTransfer]:
        """The earliest transfer of the NFT, if any."""
        return self.transfers[0] if self.transfers else None

    def last_transfer(self) -> Optional[NFTTransfer]:
        """The latest transfer of the NFT, if any."""
        return self.transfers[-1] if self.transfers else None

    def _sorted_timestamps(self) -> List[int]:
        """Transfer timestamps, cached; valid because transfers are sorted."""
        if self._timestamps is None:
            self._timestamps = [transfer.timestamp for transfer in self.transfers]
        return self._timestamps

    def transfers_before(self, timestamp: int) -> List[NFTTransfer]:
        """Transfers strictly earlier than a timestamp."""
        return self.transfers[: bisect_left(self._sorted_timestamps(), timestamp)]

    def transfers_after(self, timestamp: int) -> List[NFTTransfer]:
        """Transfers strictly later than a timestamp."""
        return self.transfers[bisect_right(self._sorted_timestamps(), timestamp) :]

    # -- volume -------------------------------------------------------------------
    @property
    def total_volume_wei(self) -> int:
        """Sum of the payments attached to every transfer of the NFT."""
        return sum(transfer.price_wei for transfer in self.transfers)

    def __iter__(self) -> Iterator[NFTTransfer]:
        return iter(self.transfers)

    def __len__(self) -> int:
        return len(self.transfers)


def build_transaction_graph(
    nft: NFTKey, transfers: Sequence[NFTTransfer]
) -> NFTTransactionGraph:
    """Build the transaction multigraph of one NFT from its transfers.

    Edges carry the paper's ``(t, h, s, p)`` annotation as attributes
    plus a reference to the full transfer record.
    """
    graph = nx.MultiDiGraph()
    ordered = sorted(transfers, key=lambda item: (item.timestamp, item.block_number, item.tx_hash))
    for transfer in ordered:
        graph.add_node(transfer.sender)
        graph.add_node(transfer.recipient)
        graph.add_edge(
            transfer.sender,
            transfer.recipient,
            t=transfer.timestamp,
            h=transfer.tx_hash,
            s=transfer.interacted_contract,
            p=transfer.price_wei,
            transfer=transfer,
        )
    return NFTTransactionGraph(nft=nft, graph=graph, transfers=ordered)


def build_all_graphs(
    transfers_by_nft: Dict[NFTKey, List[NFTTransfer]]
) -> Dict[NFTKey, NFTTransactionGraph]:
    """Build the transaction graph of every NFT in a dataset."""
    return {
        nft: build_transaction_graph(nft, transfers)
        for nft, transfers in transfers_by_nft.items()
    }
