"""The paper's contribution: wash trading detection and characterization.

Sub-packages follow the paper's structure:

* :mod:`repro.core.graph` / :mod:`repro.core.scc` -- per-NFT transaction
  graphs and strongly connected component candidate search (Sec. IV-A).
* :mod:`repro.core.refine` -- the three refinement steps (Sec. IV-B).
* :mod:`repro.core.detectors` -- the five confirmation techniques and
  the combined pipeline (Sec. IV-C/D).
* :mod:`repro.core.characterization` -- volume, temporal, pattern and
  serial-trader analysis (Sec. V).
* :mod:`repro.core.profitability` -- reward-system and resale
  profitability (Sec. VI) and case studies (Sec. VII).
"""

from repro.core.activity import CandidateComponent, WashTradingActivity, DetectionMethod
from repro.core.graph import NFTTransactionGraph, build_transaction_graph
from repro.core.scc import strongly_connected_components, tarjan_scc
from repro.core.refine import RefinementFunnel, FunnelStage
from repro.core.detectors import (
    DetectionConfig,
    DetectionContext,
    WashTradingPipeline,
    PipelineResult,
)

__all__ = [
    "CandidateComponent",
    "WashTradingActivity",
    "DetectionMethod",
    "NFTTransactionGraph",
    "build_transaction_graph",
    "strongly_connected_components",
    "tarjan_scc",
    "RefinementFunnel",
    "FunnelStage",
    "DetectionConfig",
    "DetectionContext",
    "WashTradingPipeline",
    "PipelineResult",
]
