"""(ii) Common funder.

Clear evidence of collusion is an account that supplies funds to the
alleged colluders before the manipulation starts.  A *funding
transaction* exclusively transfers ETH or ERC-20 tokens to a member
before the first transaction that moves the NFT inside the colluding
set.  The funder is a **common internal funder** if it belongs to the
component (and funds at least one other member) and a **common external
funder** if it does not (and funds at least two distinct members, and is
not an exchange or DeFi service).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional, Set

from repro.core.activity import CandidateComponent, DetectionEvidence, DetectionMethod
from repro.core.detectors.base import DetectionContext


class CommonFunderDetector:
    """Confirms components funded from a common account."""

    name = "common-funder"

    def detect(
        self, component: CandidateComponent, context: DetectionContext
    ) -> Optional[DetectionEvidence]:
        """Return evidence naming the common funder(s), if any."""
        members = component.accounts
        start_ts = component.first_timestamp

        funded_by: Dict[str, Set[str]] = defaultdict(set)
        for member in members:
            for flow in context.incoming_flows(member, before_ts=start_ts):
                funder = flow.counterparty
                if funder == member:
                    continue
                funded_by[funder].add(member)

        internal_funders: Dict[str, Set[str]] = {}
        external_funders: Dict[str, Set[str]] = {}
        config = context.config
        for funder, funded_members in funded_by.items():
            if funder in members:
                others = funded_members - {funder}
                if len(others) >= config.min_internally_funded_members:
                    internal_funders[funder] = others
            else:
                if not context.is_acceptable_external_party(funder):
                    continue
                if len(funded_members) >= config.min_externally_funded_members:
                    external_funders[funder] = funded_members

        if not internal_funders and not external_funders:
            return None
        kind = "internal" if internal_funders else "external"
        return DetectionEvidence(
            method=DetectionMethod.COMMON_FUNDER,
            details={
                "kind": kind,
                "internal_funders": {
                    funder: sorted(funded) for funder, funded in internal_funders.items()
                },
                "external_funders": {
                    funder: sorted(funded) for funder, funded in external_funders.items()
                },
            },
        )
