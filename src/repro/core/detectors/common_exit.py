"""(iii) Common exit.

Symmetric to the common funder: after the last transaction that moves
the NFT inside the colluding set, the members send their funds to a
single account.  A **common internal exit** receives funds from at least
one other member and belongs to the component; a **common external
exit** receives funds from at least two members, does not belong to the
component and is not an exchange or DeFi service.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional, Set

from repro.core.activity import CandidateComponent, DetectionEvidence, DetectionMethod
from repro.core.detectors.base import DetectionContext


class CommonExitDetector:
    """Confirms components whose members cash out to a common account."""

    name = "common-exit"

    def detect(
        self, component: CandidateComponent, context: DetectionContext
    ) -> Optional[DetectionEvidence]:
        """Return evidence naming the common exit(s), if any."""
        members = component.accounts
        end_ts = component.last_timestamp

        received_from: Dict[str, Set[str]] = defaultdict(set)
        for member in members:
            for flow in context.outgoing_flows(member, after_ts=end_ts):
                exit_account = flow.counterparty
                if exit_account == member:
                    continue
                received_from[exit_account].add(member)

        internal_exits: Dict[str, Set[str]] = {}
        external_exits: Dict[str, Set[str]] = {}
        config = context.config
        for exit_account, senders in received_from.items():
            if exit_account in members:
                others = senders - {exit_account}
                if len(others) >= config.min_internal_exit_members:
                    internal_exits[exit_account] = others
            else:
                if not context.is_acceptable_external_party(exit_account):
                    continue
                if len(senders) >= config.min_external_exit_members:
                    external_exits[exit_account] = senders

        if not internal_exits and not external_exits:
            return None
        kind = "internal" if internal_exits else "external"
        return DetectionEvidence(
            method=DetectionMethod.COMMON_EXIT,
            details={
                "kind": kind,
                "internal_exits": {
                    exit_account: sorted(senders)
                    for exit_account, senders in internal_exits.items()
                },
                "external_exits": {
                    exit_account: sorted(senders)
                    for exit_account, senders in external_exits.items()
                },
            },
        )
