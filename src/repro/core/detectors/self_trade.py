"""(iv) Self-trade.

A transfer whose source and recipient are the same account is wash
trading *de facto*: the same entity traded the NFT with itself, inflating
its volume.  Such components need no further evidence.
"""

from __future__ import annotations

from typing import Optional

from repro.core.activity import CandidateComponent, DetectionEvidence, DetectionMethod
from repro.core.detectors.base import DetectionContext


class SelfTradeDetector:
    """Confirms components containing at least one self-transfer."""

    name = "self-trade"

    def detect(
        self, component: CandidateComponent, context: DetectionContext
    ) -> Optional[DetectionEvidence]:
        """Return evidence listing the self-transfers, if any."""
        self_transfers = [
            transfer for transfer in component.transfers if transfer.is_self_transfer
        ]
        if not self_transfers:
            return None
        return DetectionEvidence(
            method=DetectionMethod.SELF_TRADE,
            details={
                "self_transfer_count": len(self_transfers),
                "tx_hashes": [transfer.tx_hash for transfer in self_transfers],
            },
        )
