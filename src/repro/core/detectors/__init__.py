"""The five wash trading confirmation techniques and the combined pipeline."""

from repro.core.detectors.base import DetectionConfig, DetectionContext, Detector
from repro.core.detectors.zero_risk import ZeroRiskDetector
from repro.core.detectors.common_funder import CommonFunderDetector
from repro.core.detectors.common_exit import CommonExitDetector
from repro.core.detectors.self_trade import SelfTradeDetector
from repro.core.detectors.repeated_scc import confirm_repeated_components
from repro.core.detectors.pipeline import WashTradingPipeline, PipelineResult

__all__ = [
    "DetectionConfig",
    "DetectionContext",
    "Detector",
    "ZeroRiskDetector",
    "CommonFunderDetector",
    "CommonExitDetector",
    "SelfTradeDetector",
    "confirm_repeated_components",
    "WashTradingPipeline",
    "PipelineResult",
]
