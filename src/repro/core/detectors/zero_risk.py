"""(i) Zero-risk position.

Wash trading is by definition a zero-risk manipulation: the colluding
group ends the operation with (essentially) the same aggregate balance
it started with, because the money only circulated among its members.
The detector computes the group's net ETH flow across every transaction
involving a member during the activity window and confirms the component
if that net is zero up to a small tolerance, factoring out gas fees (gas
never appears as a value transfer, so it is excluded by construction).

Marketplace fees are *not* factored out -- a group trading through a
venue leaks the fee on every trade -- which keeps the zero-risk class
small relative to common-funder / common-exit, as in the paper.
"""

from __future__ import annotations

from typing import Optional

from repro.core.activity import CandidateComponent, DetectionEvidence, DetectionMethod
from repro.core.detectors.base import DetectionContext


class ZeroRiskDetector:
    """Confirms components whose aggregate ETH position is unchanged."""

    name = "zero-risk"

    def detect(
        self, component: CandidateComponent, context: DetectionContext
    ) -> Optional[DetectionEvidence]:
        """Return evidence if the group's net balance change is ~zero."""
        if component.volume_wei <= 0:
            return None
        members = component.accounts
        transactions = context.transactions_in_window(
            members, component.first_timestamp, component.last_timestamp
        )
        net_wei = 0
        for tx in transactions:
            for movement in tx.value_transfers:
                if movement.recipient in members:
                    net_wei += movement.amount_wei
                if movement.sender in members:
                    net_wei -= movement.amount_wei

        config = context.config
        tolerance = max(
            config.zero_risk_absolute_tolerance_wei,
            int(config.zero_risk_relative_tolerance * component.volume_wei),
        )
        if abs(net_wei) > tolerance:
            return None
        return DetectionEvidence(
            method=DetectionMethod.ZERO_RISK,
            details={
                "net_wei": net_wei,
                "tolerance_wei": tolerance,
                "window_transactions": len(transactions),
            },
        )
