"""The combined detection pipeline (Sec. IV-C / IV-D).

Runs candidate search + refinement, applies the four per-component
confirmation techniques, then the repeated-SCC rule, and exposes the
aggregate views the paper reports: per-method counts, the Venn diagram
of the three transaction-analysis methods, and the confirmed activity
list the characterization and profitability stages consume.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.activity import (
    CandidateComponent,
    DetectionEvidence,
    DetectionMethod,
    WashTradingActivity,
)
from repro.core.detectors.base import DetectionConfig, DetectionContext, Detector
from repro.core.detectors.common_exit import CommonExitDetector
from repro.core.detectors.common_funder import CommonFunderDetector
from repro.core.detectors.repeated_scc import confirm_repeated_components
from repro.core.detectors.self_trade import SelfTradeDetector
from repro.core.detectors.volume_match import VolumeMatchDetector
from repro.core.detectors.zero_risk import ZeroRiskDetector
from repro.core.refine import RefinementFunnel, RefinementResult
from repro.ingest.dataset import NFTDataset
from repro.services.labels import LabelRegistry


@dataclass
class PipelineResult:
    """Everything the pipeline produces, in one queryable object."""

    refinement: RefinementResult
    activities: List[WashTradingActivity]
    unconfirmed: List[CandidateComponent]

    # -- sizes ---------------------------------------------------------------
    @property
    def candidate_count(self) -> int:
        """Refined candidates examined by the detectors."""
        return len(self.refinement.candidates)

    @property
    def activity_count(self) -> int:
        """Confirmed wash trading activities."""
        return len(self.activities)

    @property
    def total_wash_volume_wei(self) -> int:
        """Total artificial volume across confirmed activities."""
        return sum(activity.volume_wei for activity in self.activities)

    # -- per-method views ---------------------------------------------------------
    def count_by_method(self) -> Dict[DetectionMethod, int]:
        """How many activities each method confirmed (methods overlap)."""
        counts: Counter[DetectionMethod] = Counter()
        for activity in self.activities:
            for method in activity.methods:
                counts[method] += 1
        return dict(counts)

    def _kind_counts(self, method: DetectionMethod) -> Dict[str, int]:
        """Split one method's confirmations by the ``kind`` evidence detail.

        The expected kinds are "internal" and "external" (always present
        in the result, even at zero); any unexpected kind value is
        counted under its own key rather than crashing the report.
        """
        counts = {"internal": 0, "external": 0}
        for activity in self.activities:
            evidence = activity.evidence_for(method)
            if evidence is not None:
                kind = str(evidence.details.get("kind", "internal"))
                counts[kind] = counts.get(kind, 0) + 1
        return counts

    def funder_kind_counts(self) -> Dict[str, int]:
        """Split of common-funder confirmations into internal / external."""
        return self._kind_counts(DetectionMethod.COMMON_FUNDER)

    def exit_kind_counts(self) -> Dict[str, int]:
        """Split of common-exit confirmations into internal / external."""
        return self._kind_counts(DetectionMethod.COMMON_EXIT)

    def venn_counts(self) -> Dict[FrozenSet[DetectionMethod], int]:
        """The Fig. 2 Venn diagram over the three transaction-analysis methods.

        Keys are the exact (non-empty) subsets of {zero-risk, common-funder,
        common-exit} an activity was confirmed by; activities confirmed only
        by self-trade or repeated-SCC do not appear.
        """
        analysis_methods = set(DetectionMethod.transaction_analysis_methods())
        counts: Dict[FrozenSet[DetectionMethod], int] = defaultdict(int)
        for activity in self.activities:
            subset = frozenset(activity.methods & analysis_methods)
            if subset:
                counts[subset] += 1
        return dict(counts)

    def confirmed_by_at_least(self, n_methods: int) -> int:
        """Activities confirmed by at least ``n_methods`` transaction-analysis methods."""
        analysis_methods = set(DetectionMethod.transaction_analysis_methods())
        return sum(
            1
            for activity in self.activities
            if len(activity.methods & analysis_methods) >= n_methods
        )

    # -- venue and NFT views -----------------------------------------------------------
    def activities_on(self, marketplace: str) -> List[WashTradingActivity]:
        """Activities whose dominant venue is ``marketplace``."""
        return [
            activity
            for activity in self.activities
            if activity.component.dominant_marketplace() == marketplace
        ]

    def washed_nfts(self) -> Set:
        """The set of NFTs with at least one confirmed activity."""
        return {activity.nft for activity in self.activities}

    def involved_accounts(self) -> Set[str]:
        """Every account participating in a confirmed activity."""
        return {
            account for activity in self.activities for account in activity.accounts
        }


def build_detectors(enabled_methods: Iterable[DetectionMethod]) -> List[Detector]:
    """The per-component detectors for a method set, in canonical order.

    Shared by the legacy pipeline and the engine's shard workers so both
    paths apply the confirmation techniques identically.
    """
    enabled = set(enabled_methods)
    detectors: List[Detector] = []
    if DetectionMethod.ZERO_RISK in enabled:
        detectors.append(ZeroRiskDetector())
    if DetectionMethod.COMMON_FUNDER in enabled:
        detectors.append(CommonFunderDetector())
    if DetectionMethod.COMMON_EXIT in enabled:
        detectors.append(CommonExitDetector())
    if DetectionMethod.SELF_TRADE in enabled:
        detectors.append(SelfTradeDetector())
    if DetectionMethod.VOLUME_MATCH in enabled:
        detectors.append(VolumeMatchDetector())
    return detectors


class WashTradingPipeline:
    """End-to-end wash trading detection over an :class:`NFTDataset`.

    ``engine`` selects the execution backend: ``"legacy"`` (the default)
    runs the original networkx reference implementation; ``"columnar"``
    runs the mask-based engine in :mod:`repro.engine`, optionally
    sharded across ``workers`` processes; ``"kernel"`` is the columnar
    engine with the numpy/CSR refinement and (when a C compiler is
    around) compiled Tarjan kernels of :mod:`repro.engine.kernels`.
    All backends produce the same :class:`PipelineResult` (see
    ``tests/engine/test_parity.py`` and
    ``tests/engine/test_kernel_parity.py``).
    """

    ENGINES = ("legacy", "columnar", "kernel")

    def __init__(
        self,
        labels: LabelRegistry,
        is_contract: Callable[[str], bool],
        config: Optional[DetectionConfig] = None,
        enabled_methods: Optional[Iterable[DetectionMethod]] = None,
        funnel: Optional[RefinementFunnel] = None,
        engine: str = "legacy",
        workers: int = 0,
        shards: Optional[int] = None,
    ) -> None:
        if engine not in self.ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {self.ENGINES}"
            )
        if engine == "kernel":
            try:
                import repro.engine.kernels  # noqa: F401
            except ImportError:
                import warnings

                warnings.warn(
                    "numpy is unavailable; engine='kernel' degrades to the "
                    "columnar engine",
                    RuntimeWarning,
                    stacklevel=2,
                )
                engine = "columnar"
        self.labels = labels
        self.is_contract = is_contract
        self.config = config or DetectionConfig()
        self.enabled_methods = (
            set(enabled_methods)
            if enabled_methods is not None
            else set(DetectionMethod.paper_methods())
        )
        self.funnel = funnel or RefinementFunnel(labels=labels, is_contract=is_contract)
        self.engine = engine
        self.workers = workers
        self.shards = shards

    def _detectors(self) -> List[Detector]:
        return build_detectors(self.enabled_methods)

    def _run_engine(self, dataset: NFTDataset) -> PipelineResult:
        """The columnar engine branch; lazy import avoids a module cycle."""
        from repro.engine.executor import run_columnar_pipeline

        refinement, activities, unconfirmed = run_columnar_pipeline(
            dataset,
            labels=self.labels,
            is_contract=self.is_contract,
            config=self.config,
            enabled_methods=self.enabled_methods,
            workers=self.workers,
            shards=self.shards,
            skip_service_removal=self.funnel.skip_service_removal,
            skip_contract_removal=self.funnel.skip_contract_removal,
            skip_zero_volume_removal=self.funnel.skip_zero_volume_removal,
            use_kernels=(self.engine == "kernel"),
        )
        return PipelineResult(
            refinement=refinement, activities=activities, unconfirmed=unconfirmed
        )

    def run(self, dataset: NFTDataset) -> PipelineResult:
        """Run refinement and every enabled confirmation technique."""
        if self.engine in ("columnar", "kernel"):
            return self._run_engine(dataset)
        refinement = self.funnel.run(dataset)
        context = DetectionContext(
            dataset=dataset,
            labels=self.labels,
            is_contract=self.is_contract,
            config=self.config,
        )
        detectors = self._detectors()

        activities: List[WashTradingActivity] = []
        unconfirmed: List[CandidateComponent] = []
        for component in refinement.candidates:
            evidence: List[DetectionEvidence] = []
            for detector in detectors:
                found = detector.detect(component, context)
                if found is not None:
                    evidence.append(found)
            if evidence:
                activities.append(
                    WashTradingActivity(component=component, evidence=evidence)
                )
            else:
                unconfirmed.append(component)

        if DetectionMethod.REPEATED_SCC in self.enabled_methods:
            repeated, unconfirmed = confirm_repeated_components(unconfirmed, activities)
            activities.extend(repeated)

        return PipelineResult(
            refinement=refinement, activities=activities, unconfirmed=unconfirmed
        )
