"""(vi) Sliding-window volume matching.

A detection method from the related literature rather than the paper's
funnel (von Wachter et al., "NFT Wash Trading: Quantifying suspicious
behaviour in NFT markets", 2022; Chen et al., "The Dark Side of NFTs",
2023): wash activity shows up as windows of time in which a set of
accounts generates trade volume while their *net* NFT position does not
move -- every token bought inside the window is sold back inside it.

Over a refined candidate component this reduces to a closed-loop check:
within a sliding hour/day/week window, every involved account's
in-transfer count of the NFT equals its out-transfer count (self
transfers are trivially balanced) while paid volume was generated.  The
check runs with one incremental two-pointer pass per window size, so it
costs O(windows * transfers) per component regardless of how many
windows match.

The method is **opt-in** (not part of
:meth:`DetectionMethod.paper_methods`), so enabling it never changes the
reproduction's headline numbers unless asked for.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional

from repro.core.activity import CandidateComponent, DetectionEvidence, DetectionMethod
from repro.core.detectors.base import DetectionContext


class VolumeMatchDetector:
    """Confirms components with a volume-balanced trading window."""

    name = "volume-match"

    def detect(
        self, component: CandidateComponent, context: DetectionContext
    ) -> Optional[DetectionEvidence]:
        """Return evidence for the first balanced window, if any.

        Window sizes are tried smallest-first and the earliest balanced
        window of the smallest matching size is reported, so the
        evidence is deterministic for a given component regardless of
        the execution path (batch, sharded, or streaming).
        """
        config = context.config
        transfers = component.transfers
        if len(transfers) < config.volume_match_min_transfers:
            return None
        # Component transfers are stored in (timestamp, block, tx) order,
        # so timestamps are non-decreasing and a two-pointer pass works.
        timestamps = [transfer.timestamp for transfer in transfers]

        for window_seconds in config.volume_match_windows:
            balance: Dict[str, int] = defaultdict(int)
            nonzero_accounts = 0
            volume_wei = 0
            left = 0
            for right, transfer in enumerate(transfers):
                nonzero_accounts += self._apply(balance, transfer.sender, -1)
                nonzero_accounts += self._apply(balance, transfer.recipient, +1)
                volume_wei += transfer.price_wei
                while timestamps[right] - timestamps[left] >= window_seconds:
                    evicted = transfers[left]
                    nonzero_accounts += self._apply(balance, evicted.sender, +1)
                    nonzero_accounts += self._apply(balance, evicted.recipient, -1)
                    volume_wei -= evicted.price_wei
                    left += 1
                if (
                    nonzero_accounts == 0
                    and right - left + 1 >= config.volume_match_min_transfers
                    and volume_wei > 0
                ):
                    matched = transfers[left : right + 1]
                    return DetectionEvidence(
                        method=DetectionMethod.VOLUME_MATCH,
                        details={
                            "window_seconds": window_seconds,
                            "start_timestamp": timestamps[left],
                            "end_timestamp": timestamps[right],
                            "transfer_count": len(matched),
                            "volume_wei": volume_wei,
                            "accounts": sorted(
                                {t.sender for t in matched}
                                | {t.recipient for t in matched}
                            ),
                        },
                    )
        return None

    @staticmethod
    def _apply(balance: Dict[str, int], account: str, delta: int) -> int:
        """Shift one account's net position; returns the change in the
        number of accounts holding a nonzero position (-1, 0 or +1)."""
        before = balance[account]
        after = before + delta
        balance[account] = after
        if before == 0 and after != 0:
            return 1
        if before != 0 and after == 0:
            return -1
        return 0
