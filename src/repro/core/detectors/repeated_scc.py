"""(v) Leveraging previously confirmed wash trading events.

If a set of accounts has already been confirmed as wash trading one NFT,
another strongly connected component made of exactly the same accounts
(on a different NFT) is confirmed as well, even when none of the other
techniques fires for it.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from repro.core.activity import (
    CandidateComponent,
    DetectionEvidence,
    DetectionMethod,
    WashTradingActivity,
)


def confirm_repeated_components(
    unconfirmed: Iterable[CandidateComponent],
    confirmed_activities: Iterable[WashTradingActivity],
) -> Tuple[List[WashTradingActivity], List[CandidateComponent]]:
    """Confirm candidates whose account set matches a confirmed activity.

    Returns the newly confirmed activities and the candidates that remain
    unconfirmed.  A single pass suffices: newly confirmed components have,
    by construction, an account set already present in the confirmed pool,
    so iterating would not add anything.
    """
    confirmed_account_sets: Set[frozenset[str]] = {
        frozenset(activity.accounts) for activity in confirmed_activities
    }
    newly_confirmed: List[WashTradingActivity] = []
    still_unconfirmed: List[CandidateComponent] = []
    for component in unconfirmed:
        if frozenset(component.accounts) in confirmed_account_sets:
            newly_confirmed.append(
                WashTradingActivity(
                    component=component,
                    evidence=[
                        DetectionEvidence(
                            method=DetectionMethod.REPEATED_SCC,
                            details={"matched_accounts": sorted(component.accounts)},
                        )
                    ],
                )
            )
        else:
            still_unconfirmed.append(component)
    return newly_confirmed, still_unconfirmed
