"""Shared infrastructure for the confirmation techniques.

Each detector examines one :class:`CandidateComponent` (a refined SCC)
and either returns a :class:`DetectionEvidence` or ``None``.  The
:class:`DetectionContext` gives detectors access to the dataset, the
label registry and a set of money-flow helpers over the standard
transactions collected for the involved accounts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Protocol, Set, Tuple

from repro.chain.transaction import Transaction
from repro.core.activity import CandidateComponent, DetectionEvidence
from repro.ingest.dataset import NFTDataset
from repro.services.labels import LabelRegistry
from repro.utils.hashing import ERC721_TRANSFER_SIGNATURE


@dataclass(frozen=True)
class MoneyFlow:
    """A single inbound or outbound value movement of one account."""

    account: str
    counterparty: str
    amount: int
    timestamp: int
    tx_hash: str
    #: "eth" or the ERC-20 contract address.
    asset: str


@dataclass
class DetectionConfig:
    """Tunable knobs of the confirmation techniques.

    Defaults follow the paper's definitions; the ablation benchmarks vary
    them to show the sensitivity of the results.
    """

    #: Absolute tolerance on the group's net balance for the zero-risk
    #: test (covers rounding dust), in wei.
    zero_risk_absolute_tolerance_wei: int = 10**15
    #: Relative tolerance on the group's net balance, as a fraction of the
    #: component's wash volume.  Kept tight so that venue fees (2%+) push
    #: marketplace-mediated activities out of the zero-risk class, as in
    #: the paper.
    zero_risk_relative_tolerance: float = 0.002
    #: An external funder must fund at least this many distinct members.
    min_externally_funded_members: int = 2
    #: An external exit must receive funds from at least this many members.
    min_external_exit_members: int = 2
    #: An internal funder must fund at least this many *other* members.
    min_internally_funded_members: int = 1
    #: An internal exit must receive from at least this many *other* members.
    min_internal_exit_members: int = 1
    #: Use the NetworkX SCC implementation (True, as the paper does) or the
    #: independent Tarjan implementation (False).
    use_networkx_scc: bool = True
    #: Sliding window sizes of the volume-matching detector, in seconds,
    #: tried smallest-first (hour, day, week by default).
    volume_match_windows: Tuple[int, ...] = (3600, 86400, 604800)
    #: Minimum transfers inside a window for a volume match to count (a
    #: single transfer can never be a round trip).
    volume_match_min_transfers: int = 2


class Detector(Protocol):
    """Interface implemented by every confirmation technique."""

    name: str

    def detect(
        self, component: CandidateComponent, context: "DetectionContext"
    ) -> Optional[DetectionEvidence]:
        """Return evidence if the component is confirmed, else None."""


class DetectionContext:
    """Dataset access and money-flow helpers shared by all detectors."""

    def __init__(
        self,
        dataset: NFTDataset,
        labels: LabelRegistry,
        is_contract: Callable[[str], bool],
        config: Optional[DetectionConfig] = None,
    ) -> None:
        self.dataset = dataset
        self.labels = labels
        self.is_contract = is_contract
        self.config = config or DetectionConfig()

    # -- raw transaction access ------------------------------------------------
    def transactions_of(self, account: str) -> List[Transaction]:
        """Every collected transaction of an account, in chain order."""
        return self.dataset.transactions_of(account)

    def transactions_in_window(
        self, accounts: Iterable[str], start_ts: int, end_ts: int
    ) -> List[Transaction]:
        """Distinct transactions involving any of ``accounts`` within a window."""
        seen: Set[str] = set()
        collected: List[Transaction] = []
        for account in accounts:
            for tx in self.transactions_of(account):
                if tx.timestamp < start_ts or tx.timestamp > end_ts:
                    continue
                if tx.hash in seen:
                    continue
                seen.add(tx.hash)
                collected.append(tx)
        collected.sort(key=lambda tx: (tx.block_number, tx.hash))
        return collected

    # -- money flows --------------------------------------------------------------
    @staticmethod
    def _tx_moves_an_nft(tx: Transaction) -> bool:
        """True if the transaction carries an ERC-721-shaped Transfer event."""
        return any(
            log.signature == ERC721_TRANSFER_SIGNATURE and len(log.topics) == 4
            for log in tx.logs
        )

    def incoming_flows(
        self, account: str, before_ts: Optional[int] = None, pure_transfers_only: bool = True
    ) -> List[MoneyFlow]:
        """Value received by ``account``, optionally restricted to pure transfers.

        A "pure transfer" is the paper's funding transaction: it moves ETH
        or ERC-20 tokens without moving any NFT in the same transaction.
        """
        flows: List[MoneyFlow] = []
        for tx in self.transactions_of(account):
            if before_ts is not None and tx.timestamp >= before_ts:
                continue
            if pure_transfers_only and self._tx_moves_an_nft(tx):
                continue
            for movement in tx.value_transfers:
                if movement.recipient == account and movement.amount_wei > 0:
                    flows.append(
                        MoneyFlow(
                            account=account,
                            counterparty=movement.sender,
                            amount=movement.amount_wei,
                            timestamp=tx.timestamp,
                            tx_hash=tx.hash,
                            asset="eth",
                        )
                    )
            for log in tx.logs:
                if log.is_erc20_transfer and log.topics[2] == account:
                    amount = int(log.data.get("value", 0))
                    if amount > 0:
                        flows.append(
                            MoneyFlow(
                                account=account,
                                counterparty=log.topics[1],
                                amount=amount,
                                timestamp=tx.timestamp,
                                tx_hash=tx.hash,
                                asset=log.address,
                            )
                        )
        return flows

    def outgoing_flows(
        self, account: str, after_ts: Optional[int] = None, pure_transfers_only: bool = True
    ) -> List[MoneyFlow]:
        """Value sent by ``account``, optionally restricted to pure transfers."""
        flows: List[MoneyFlow] = []
        for tx in self.transactions_of(account):
            if after_ts is not None and tx.timestamp <= after_ts:
                continue
            if pure_transfers_only and self._tx_moves_an_nft(tx):
                continue
            for movement in tx.value_transfers:
                if movement.sender == account and movement.amount_wei > 0:
                    flows.append(
                        MoneyFlow(
                            account=account,
                            counterparty=movement.recipient,
                            amount=movement.amount_wei,
                            timestamp=tx.timestamp,
                            tx_hash=tx.hash,
                            asset="eth",
                        )
                    )
            for log in tx.logs:
                if log.is_erc20_transfer and log.topics[1] == account:
                    amount = int(log.data.get("value", 0))
                    if amount > 0:
                        flows.append(
                            MoneyFlow(
                                account=account,
                                counterparty=log.topics[2],
                                amount=amount,
                                timestamp=tx.timestamp,
                                tx_hash=tx.hash,
                                asset=log.address,
                            )
                        )
        return flows

    # -- service filters -------------------------------------------------------------
    def is_acceptable_external_party(self, address: str) -> bool:
        """True if an external funder/exit can count as collusion evidence.

        Exchanges and DeFi services interact with too many accounts to be
        evidence of anything, so the paper discards them.
        """
        if self.labels.is_financial_service(address):
            return False
        if self.labels.is_graph_excluded_service(address):
            return False
        return True
