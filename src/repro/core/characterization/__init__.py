"""Characterization of confirmed wash trading activities (Sec. V)."""

from repro.core.characterization.volume import (
    MarketplaceWashStats,
    CollectionWashStats,
    marketplace_wash_stats,
    collection_wash_stats,
)
from repro.core.characterization.temporal import (
    lifetimes_seconds,
    fraction_with_lifetime_within,
    purchase_to_start_delays,
    creation_proximity,
    top_collections_timeline,
)
from repro.core.characterization.patterns import (
    PATTERN_LIBRARY,
    PatternSpec,
    account_count_distribution,
    classify_component,
    classify_activities,
)
from repro.core.characterization.serial import SerialTraderStats, serial_trader_stats

__all__ = [
    "MarketplaceWashStats",
    "CollectionWashStats",
    "marketplace_wash_stats",
    "collection_wash_stats",
    "lifetimes_seconds",
    "fraction_with_lifetime_within",
    "purchase_to_start_delays",
    "creation_proximity",
    "top_collections_timeline",
    "PATTERN_LIBRARY",
    "PatternSpec",
    "account_count_distribution",
    "classify_component",
    "classify_activities",
    "SerialTraderStats",
    "serial_trader_stats",
]
