"""Wash trading volume by marketplace and by collection (Table II and the
per-collection findings of Sec. V-A)."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.chain.types import NFTKey
from repro.contracts.registry import ContractRegistry
from repro.core.detectors.pipeline import PipelineResult
from repro.ingest.dataset import NFTDataset


@dataclass
class MarketplaceWashStats:
    """One row of Table II: wash trading on one venue."""

    marketplace: str
    washed_nft_count: int
    wash_volume_wei: int
    total_volume_wei: int

    @property
    def wash_share(self) -> float:
        """Fraction of the venue's total volume that is artificial."""
        if self.total_volume_wei <= 0:
            return 0.0
        return self.wash_volume_wei / self.total_volume_wei


@dataclass
class CollectionWashStats:
    """Wash trading pressure on one collection."""

    contract: str
    name: str
    washed_nft_count: int
    wash_volume_wei: int
    total_volume_wei: int
    activity_count: int

    @property
    def wash_share(self) -> float:
        """Fraction of the collection's volume that is artificial."""
        if self.total_volume_wei <= 0:
            return 0.0
        return self.wash_volume_wei / self.total_volume_wei


def marketplace_wash_stats(
    result: PipelineResult, dataset: NFTDataset
) -> Dict[str, MarketplaceWashStats]:
    """Per-venue washed-NFT counts, wash volume and share of total volume."""
    venue_activity = dataset.marketplace_activity()
    washed_nfts: Dict[str, Set[NFTKey]] = defaultdict(set)
    wash_volume: Dict[str, int] = defaultdict(int)

    for activity in result.activities:
        for transfer in activity.component.transfers:
            if transfer.marketplace is None:
                continue
            washed_nfts[transfer.marketplace].add(activity.nft)
            wash_volume[transfer.marketplace] += transfer.price_wei

    stats: Dict[str, MarketplaceWashStats] = {}
    for name, venue in venue_activity.items():
        stats[name] = MarketplaceWashStats(
            marketplace=name,
            washed_nft_count=len(washed_nfts.get(name, ())),
            wash_volume_wei=wash_volume.get(name, 0),
            total_volume_wei=venue.volume_wei,
        )
    return stats


def collection_wash_stats(
    result: PipelineResult,
    dataset: NFTDataset,
    registry: Optional[ContractRegistry] = None,
    top_n: Optional[int] = None,
) -> List[CollectionWashStats]:
    """Per-collection wash volume, sorted by wash volume (largest first)."""
    wash_volume: Dict[str, int] = defaultdict(int)
    washed_nfts: Dict[str, Set[NFTKey]] = defaultdict(set)
    activity_count: Dict[str, int] = defaultdict(int)

    for activity in result.activities:
        contract = activity.nft.contract
        wash_volume[contract] += activity.volume_wei
        washed_nfts[contract].add(activity.nft)
        activity_count[contract] += 1

    stats = [
        CollectionWashStats(
            contract=contract,
            name=registry.name_of(contract, default=contract) if registry else contract,
            washed_nft_count=len(washed_nfts[contract]),
            wash_volume_wei=volume,
            total_volume_wei=dataset.volume_of_collection_wei(contract),
            activity_count=activity_count[contract],
        )
        for contract, volume in wash_volume.items()
    ]
    stats.sort(key=lambda row: row.wash_volume_wei, reverse=True)
    if top_n is not None:
        stats = stats[:top_n]
    return stats


def total_wash_volume_wei(result: PipelineResult) -> int:
    """Total artificial volume across every confirmed activity."""
    return result.total_wash_volume_wei


def legitimate_activity_volumes_wei(
    result: PipelineResult, dataset: NFTDataset
) -> List[int]:
    """Per-NFT traded volume of NFTs *not* involved in wash trading.

    This is the comparison series of Fig. 3 (the "volume without wash
    trading" CDF): the volume distribution of ordinary NFT trading.
    """
    washed = result.washed_nfts()
    volumes: List[int] = []
    for nft, transfers in dataset.transfers_by_nft.items():
        if nft in washed:
            continue
        volume = sum(transfer.price_wei for transfer in transfers)
        if volume > 0:
            volumes.append(volume)
    return volumes
