"""Structural patterns of wash trading activities (Fig. 6 and Fig. 7).

Fig. 6 is the distribution of the number of accounts per activity.
Fig. 7 is a taxonomy of the strongly connected component *shapes*: each
activity's accounts and intra-component transfers are collapsed into a
simple directed graph (parallel transfers collapse into one edge) and
matched against a small library of canonical shapes by directed graph
isomorphism.

The library reproduces the paper's twelve patterns: the self-loop
(pattern 0), the dominant two-account round trip (pattern 1), the
circular patterns with 3-6 participants (patterns 2, 5 and 10, the most
natural for wash traders), and the remaining mixed shapes.  For the rare
patterns whose exact topology cannot be recovered from the paper's
figure, plausible shapes with the stated participant counts are used;
this affects only the long tail of the taxonomy.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.core.activity import CandidateComponent, WashTradingActivity


@dataclass(frozen=True)
class PatternSpec:
    """A canonical SCC shape."""

    pattern_id: int
    description: str
    node_count: int
    edges: Tuple[Tuple[int, int], ...]

    def as_graph(self) -> nx.DiGraph:
        """The canonical shape as a NetworkX digraph."""
        graph = nx.DiGraph()
        graph.add_nodes_from(range(self.node_count))
        graph.add_edges_from(self.edges)
        return graph


def _cycle(n: int) -> Tuple[Tuple[int, int], ...]:
    return tuple((i, (i + 1) % n) for i in range(n))


def _round_trip_chain(n: int) -> Tuple[Tuple[int, int], ...]:
    edges: List[Tuple[int, int]] = []
    for i in range(n - 1):
        edges.append((i, i + 1))
        edges.append((i + 1, i))
    return tuple(edges)


#: The canonical pattern library, ordered as in Fig. 7 (by participant count).
PATTERN_LIBRARY: Tuple[PatternSpec, ...] = (
    PatternSpec(0, "self-trade (single account, self-loop)", 1, ((0, 0),)),
    PatternSpec(1, "two-account round trip", 2, ((0, 1), (1, 0))),
    PatternSpec(2, "three-account cycle", 3, _cycle(3)),
    PatternSpec(3, "chain of two round trips (three accounts)", 3, _round_trip_chain(3)),
    PatternSpec(
        4,
        "three accounts, cycle plus reverse chord",
        3,
        (_cycle(3) + ((1, 0),)),
    ),
    PatternSpec(5, "four-account cycle", 4, _cycle(4)),
    PatternSpec(6, "chain of three round trips (four accounts)", 4, _round_trip_chain(4)),
    PatternSpec(
        7,
        "hub of round trips (four accounts)",
        4,
        ((0, 1), (1, 0), (0, 2), (2, 0), (0, 3), (3, 0)),
    ),
    PatternSpec(
        8,
        "four-account cycle with a reverse chord",
        4,
        (_cycle(4) + ((2, 1),)),
    ),
    PatternSpec(
        9,
        "four accounts, two cycles sharing an edge",
        4,
        (_cycle(4) + ((2, 0),)),
    ),
    PatternSpec(10, "five-account cycle", 5, _cycle(5)),
    PatternSpec(11, "six-account cycle", 6, _cycle(6)),
)


def component_shape(component: CandidateComponent) -> nx.DiGraph:
    """Collapse a component's transfers into a simple directed shape graph."""
    graph = nx.DiGraph()
    graph.add_nodes_from(component.accounts)
    for transfer in component.transfers:
        graph.add_edge(transfer.sender, transfer.recipient)
    return graph


def classify_component(component: CandidateComponent) -> Optional[int]:
    """Return the matching pattern id, or None if outside the library."""
    shape = component_shape(component)
    for spec in PATTERN_LIBRARY:
        if shape.number_of_nodes() != spec.node_count:
            continue
        if shape.number_of_edges() != len(spec.edges):
            continue
        matcher = nx.algorithms.isomorphism.DiGraphMatcher(shape, spec.as_graph())
        if matcher.is_isomorphic():
            return spec.pattern_id
    return None


def classify_activities(
    activities: Sequence[WashTradingActivity],
) -> Dict[Optional[int], int]:
    """Occurrences of each pattern id across activities (None = unmatched)."""
    counts: Counter[Optional[int]] = Counter()
    for activity in activities:
        counts[classify_component(activity.component)] += 1
    return dict(counts)


def account_count_distribution(
    activities: Sequence[WashTradingActivity], cap: int = 6
) -> Dict[str, int]:
    """Fig. 6: the distribution of the number of participating accounts.

    Counts above ``cap`` are pooled into a ``"{cap}+"`` bucket, matching
    the figure's x axis.
    """
    counts: Counter[str] = Counter()
    for activity in activities:
        size = activity.component.account_count
        key = f"{cap}+" if size >= cap else str(size)
        counts[key] += 1
    ordered: Dict[str, int] = {}
    for size in range(1, cap):
        ordered[str(size)] = counts.get(str(size), 0)
    ordered[f"{cap}+"] = counts.get(f"{cap}+", 0)
    return ordered


def account_count_fractions(
    activities: Sequence[WashTradingActivity], cap: int = 6
) -> Dict[str, float]:
    """Fig. 6 as fractions of all activities."""
    counts = account_count_distribution(activities, cap=cap)
    total = sum(counts.values())
    if total == 0:
        return {key: 0.0 for key in counts}
    return {key: value / total for key, value in counts.items()}
