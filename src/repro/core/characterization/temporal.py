"""Temporal analysis of wash trading activities (Sec. V-B).

Covers the lifetime CDF (Fig. 4), the delay between acquiring an NFT and
starting to wash it, and the proximity of activities to the creation of
their collection (Fig. 5).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.activity import WashTradingActivity
from repro.core.detectors.pipeline import PipelineResult
from repro.ingest.dataset import NFTDataset
from repro.utils.timeutil import SECONDS_PER_DAY


def lifetimes_seconds(activities: Sequence[WashTradingActivity]) -> List[int]:
    """Lifetime (first-to-last wash trade) of every activity, in seconds."""
    return [activity.lifetime_seconds for activity in activities]


def fraction_with_lifetime_within(
    activities: Sequence[WashTradingActivity], days: float
) -> float:
    """Fraction of activities whose lifetime is at most ``days`` days."""
    if not activities:
        return 0.0
    limit = days * SECONDS_PER_DAY
    count = sum(1 for activity in activities if activity.lifetime_seconds <= limit)
    return count / len(activities)


def purchase_to_start_delays(
    result: PipelineResult, dataset: NFTDataset
) -> List[float]:
    """Days between the wash trader acquiring the NFT and the first wash trade.

    The acquisition is the last transfer that brought the NFT *into* the
    colluding set from outside (a purchase or a mint) before the activity
    started; activities whose NFT never entered from outside are skipped.
    """
    delays: List[float] = []
    for activity in result.activities:
        component = activity.component
        acquisition_ts: Optional[int] = None
        for transfer in dataset.transfers_of(activity.nft):
            if transfer.timestamp >= component.first_timestamp:
                break
            entered_set = (
                transfer.recipient in component.accounts
                and transfer.sender not in component.accounts
            )
            if entered_set:
                acquisition_ts = transfer.timestamp
        if acquisition_ts is None:
            continue
        delays.append((component.first_timestamp - acquisition_ts) / SECONDS_PER_DAY)
    return delays


def fraction_of_delays_within(delays: Sequence[float], days: float) -> float:
    """Fraction of acquisition-to-start delays at most ``days`` days."""
    if not delays:
        return 0.0
    return sum(1 for delay in delays if delay <= days) / len(delays)


def creation_proximity(
    result: PipelineResult, creation_timestamps: Mapping[str, int]
) -> List[float]:
    """Days between collection creation and each activity's first wash trade.

    ``creation_timestamps`` maps collection contract address to its
    deployment timestamp; activities on unknown collections are skipped.
    """
    proximities: List[float] = []
    for activity in result.activities:
        created = creation_timestamps.get(activity.nft.contract)
        if created is None:
            continue
        proximities.append(
            (activity.component.first_timestamp - created) / SECONDS_PER_DAY
        )
    return proximities


@dataclass
class CollectionTimeline:
    """One row of Fig. 5: a collection's creation date and its wash events."""

    contract: str
    name: str
    creation_timestamp: int
    activity_timestamps: List[int]
    washed_nft_count: int


def top_collections_timeline(
    result: PipelineResult,
    creation_timestamps: Mapping[str, int],
    names: Optional[Mapping[str, str]] = None,
    top_n: int = 10,
) -> List[CollectionTimeline]:
    """The Fig. 5 data: the top collections by washed-NFT count, with the
    creation date and the dates of every wash trading activity."""
    washed_by_collection: Dict[str, set] = defaultdict(set)
    timestamps_by_collection: Dict[str, List[int]] = defaultdict(list)
    for activity in result.activities:
        contract = activity.nft.contract
        washed_by_collection[contract].add(activity.nft)
        timestamps_by_collection[contract].append(activity.component.first_timestamp)

    ranked = sorted(
        washed_by_collection.items(), key=lambda item: len(item[1]), reverse=True
    )[:top_n]
    timeline: List[CollectionTimeline] = []
    for contract, nfts in ranked:
        timeline.append(
            CollectionTimeline(
                contract=contract,
                name=(names or {}).get(contract, contract),
                creation_timestamp=creation_timestamps.get(contract, 0),
                activity_timestamps=sorted(timestamps_by_collection[contract]),
                washed_nft_count=len(nfts),
            )
        )
    return timeline
