"""Serial wash traders (Sec. V-D).

A serial wash trader is an account participating in two or more
confirmed activities.  The paper reports that a minority of accounts
(27.16%) is responsible for the large majority of activities (72.93%),
that most serial traders hit the same collection repeatedly, and that
serial traders tend to collaborate only with other serial traders.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.activity import WashTradingActivity


@dataclass
class SerialTraderStats:
    """Aggregate statistics about serial wash traders."""

    total_accounts: int
    serial_accounts: int
    activities_total: int
    activities_with_serial: int
    mean_activities_per_serial: float
    max_activities_by_one_account: int
    most_active_account: str
    serial_traders_hitting_same_collection: int
    serial_only_collaborators: int
    activities_all_serial: int
    activities_by_account: Dict[str, int] = field(default_factory=dict)

    @property
    def serial_account_fraction(self) -> float:
        """Share of involved accounts that are serial."""
        if self.total_accounts == 0:
            return 0.0
        return self.serial_accounts / self.total_accounts

    @property
    def serial_activity_fraction(self) -> float:
        """Share of activities involving at least one serial trader."""
        if self.activities_total == 0:
            return 0.0
        return self.activities_with_serial / self.activities_total

    @property
    def same_collection_fraction(self) -> float:
        """Share of serial traders that repeatedly hit one collection."""
        if self.serial_accounts == 0:
            return 0.0
        return self.serial_traders_hitting_same_collection / self.serial_accounts

    @property
    def serial_only_collaboration_fraction(self) -> float:
        """Share of serial traders collaborating exclusively with serials."""
        if self.serial_accounts == 0:
            return 0.0
        return self.serial_only_collaborators / self.serial_accounts


def serial_trader_stats(activities: Sequence[WashTradingActivity]) -> SerialTraderStats:
    """Compute every serial-trader statistic the paper reports."""
    activity_count_by_account: Counter[str] = Counter()
    collections_by_account: Dict[str, Counter] = defaultdict(Counter)
    for activity in activities:
        for account in activity.accounts:
            activity_count_by_account[account] += 1
            collections_by_account[account][activity.nft.contract] += 1

    serial_accounts = {
        account for account, count in activity_count_by_account.items() if count >= 2
    }

    activities_with_serial = sum(
        1
        for activity in activities
        if any(account in serial_accounts for account in activity.accounts)
    )
    activities_all_serial = sum(
        1
        for activity in activities
        if activity.accounts and all(account in serial_accounts for account in activity.accounts)
    )

    same_collection = sum(
        1
        for account in serial_accounts
        if any(count >= 2 for count in collections_by_account[account].values())
    )

    # A serial trader is a "serial-only collaborator" if, across all its
    # activities, every co-participant is also serial.
    serial_only = 0
    for account in serial_accounts:
        collaborates_only_with_serials = True
        for activity in activities:
            if account not in activity.accounts:
                continue
            others = set(activity.accounts) - {account}
            if any(other not in serial_accounts for other in others):
                collaborates_only_with_serials = False
                break
        if collaborates_only_with_serials:
            serial_only += 1

    if activity_count_by_account:
        most_active_account, max_count = activity_count_by_account.most_common(1)[0]
    else:
        most_active_account, max_count = "", 0

    serial_activity_counts = [
        count for account, count in activity_count_by_account.items() if count >= 2
    ]
    mean_per_serial = (
        sum(serial_activity_counts) / len(serial_activity_counts)
        if serial_activity_counts
        else 0.0
    )

    return SerialTraderStats(
        total_accounts=len(activity_count_by_account),
        serial_accounts=len(serial_accounts),
        activities_total=len(activities),
        activities_with_serial=activities_with_serial,
        mean_activities_per_serial=mean_per_serial,
        max_activities_by_one_account=max_count,
        most_active_account=most_active_account,
        serial_traders_hitting_same_collection=same_collection,
        serial_only_collaborators=serial_only,
        activities_all_serial=activities_all_serial,
        activities_by_account=dict(activity_count_by_account),
    )


def top_collaborating_pairs(
    activities: Sequence[WashTradingActivity], top_n: int = 5
) -> List[Tuple[Tuple[str, str], int]]:
    """The account pairs that performed the most activities together."""
    pair_counts: Counter[Tuple[str, str]] = Counter()
    for activity in activities:
        members = sorted(activity.accounts)
        for i, first in enumerate(members):
            for second in members[i + 1 :]:
                pair_counts[(first, second)] += 1
    return pair_counts.most_common(top_n)
