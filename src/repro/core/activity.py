"""Data model of wash trading candidates and confirmed activities."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.chain.types import NFTKey
from repro.ingest.records import NFTTransfer


class DetectionMethod(str, enum.Enum):
    """The paper's five confirmation techniques of Sec. IV-C, plus
    sliding-window volume matching from the related literature."""

    ZERO_RISK = "zero-risk"
    COMMON_FUNDER = "common-funder"
    COMMON_EXIT = "common-exit"
    SELF_TRADE = "self-trade"
    REPEATED_SCC = "repeated-scc"
    #: Sliding-window volume-balance matching (von Wachter et al. 2022,
    #: Chen et al. 2023): an account set whose in/out NFT volume balances
    #: to zero inside an hour/day/week window.  Not part of the paper's
    #: funnel, so it is opt-in -- see :meth:`paper_methods`.
    VOLUME_MATCH = "volume-match"

    #: The three techniques based purely on transaction analysis; these are
    #: the sets compared in the paper's Venn diagram (Fig. 2).
    @classmethod
    def transaction_analysis_methods(cls) -> Tuple["DetectionMethod", ...]:
        return (cls.ZERO_RISK, cls.COMMON_FUNDER, cls.COMMON_EXIT)

    #: The paper's confirmation techniques -- the default method set of
    #: every pipeline entry point, so the reproduction's numbers do not
    #: move as extra detectors are added to the catalog.
    @classmethod
    def paper_methods(cls) -> Tuple["DetectionMethod", ...]:
        return (
            cls.ZERO_RISK,
            cls.COMMON_FUNDER,
            cls.COMMON_EXIT,
            cls.SELF_TRADE,
            cls.REPEATED_SCC,
        )


@dataclass(frozen=True)
class CandidateComponent:
    """A strongly connected component of one NFT's transaction graph.

    This is a wash trading *candidate*: a set of accounts that traded the
    same NFT among themselves in a cycle.  ``transfers`` contains only
    the transfers whose both endpoints belong to the component.
    """

    nft: NFTKey
    accounts: FrozenSet[str]
    transfers: Tuple[NFTTransfer, ...]

    @property
    def account_count(self) -> int:
        """Number of colluding accounts."""
        return len(self.accounts)

    @property
    def transfer_count(self) -> int:
        """Number of intra-component transfers."""
        return len(self.transfers)

    @property
    def volume_wei(self) -> int:
        """Total payment attached to the intra-component transfers."""
        return sum(transfer.price_wei for transfer in self.transfers)

    @property
    def is_zero_volume(self) -> bool:
        """True if no ETH and no ERC-20 value moved in any intra-component transfer."""
        return not any(transfer.has_payment for transfer in self.transfers)

    @property
    def first_timestamp(self) -> int:
        """Timestamp of the first intra-component transfer."""
        return min(transfer.timestamp for transfer in self.transfers)

    @property
    def last_timestamp(self) -> int:
        """Timestamp of the last intra-component transfer."""
        return max(transfer.timestamp for transfer in self.transfers)

    @property
    def lifetime_seconds(self) -> int:
        """Elapsed time between the first and last intra-component transfer."""
        return self.last_timestamp - self.first_timestamp

    @property
    def tx_hashes(self) -> Set[str]:
        """Hashes of the transactions carrying the intra-component transfers."""
        return {transfer.tx_hash for transfer in self.transfers}

    @property
    def marketplaces(self) -> Set[str]:
        """Venues on which the intra-component transfers happened."""
        return {
            transfer.marketplace
            for transfer in self.transfers
            if transfer.marketplace is not None
        }

    def dominant_marketplace(self) -> Optional[str]:
        """The venue carrying the most intra-component volume (None if off-market)."""
        volume_by_venue: Dict[str, int] = {}
        count_by_venue: Dict[str, int] = {}
        for transfer in self.transfers:
            if transfer.marketplace is None:
                continue
            volume_by_venue[transfer.marketplace] = (
                volume_by_venue.get(transfer.marketplace, 0) + transfer.price_wei
            )
            count_by_venue[transfer.marketplace] = (
                count_by_venue.get(transfer.marketplace, 0) + 1
            )
        if not volume_by_venue:
            return None
        return max(
            volume_by_venue,
            key=lambda venue: (volume_by_venue[venue], count_by_venue[venue]),
        )

    def has_self_loop(self) -> bool:
        """True if any intra-component transfer is a self-transfer."""
        return any(transfer.is_self_transfer for transfer in self.transfers)


@dataclass
class DetectionEvidence:
    """Evidence produced by one detector for one candidate."""

    method: DetectionMethod
    #: Free-form details: funder/exit addresses, balances, etc.
    details: Dict[str, object] = field(default_factory=dict)


@dataclass
class WashTradingActivity:
    """A confirmed wash trading activity: a candidate plus its evidence."""

    component: CandidateComponent
    evidence: List[DetectionEvidence] = field(default_factory=list)

    @property
    def methods(self) -> Set[DetectionMethod]:
        """The confirmation techniques that flagged this activity."""
        return {item.method for item in self.evidence}

    @property
    def nft(self) -> NFTKey:
        """The manipulated NFT."""
        return self.component.nft

    @property
    def accounts(self) -> FrozenSet[str]:
        """The colluding accounts."""
        return self.component.accounts

    @property
    def volume_wei(self) -> int:
        """Artificial volume generated by the activity."""
        return self.component.volume_wei

    @property
    def lifetime_seconds(self) -> int:
        """Elapsed time between the first and last wash trade."""
        return self.component.lifetime_seconds

    def evidence_for(self, method: DetectionMethod) -> Optional[DetectionEvidence]:
        """The evidence record of one method, if that method fired."""
        for item in self.evidence:
            if item.method == method:
                return item
        return None

    def detected_by(self, method: DetectionMethod) -> bool:
        """True if the given method confirmed this activity."""
        return any(item.method == method for item in self.evidence)
