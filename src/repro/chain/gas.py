"""Gas accounting.

Gas matters to the paper because transaction fees are one of the two
cost terms in every profitability formula (Eq. 2 and Eq. 3).  The model
here has two parts:

* :class:`GasSchedule` -- how much gas each kind of operation consumes,
  with values close to typical mainnet figures.
* :class:`GasPriceOracle` -- the gas price (in wei) as a function of
  time, with a deterministic daily cycle standing in for congestion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.utils.currency import gwei_to_wei
from repro.utils.timeutil import SECONDS_PER_DAY

#: Intrinsic gas of a plain ETH transfer.
INTRINSIC_TRANSFER_GAS = 21_000


@dataclass(frozen=True)
class GasSchedule:
    """Gas consumed by each operation class the simulation performs.

    Values approximate typical mainnet costs; their absolute level only
    needs to be realistic enough that fee-sensitive results (Foundation's
    15% fee killing wash trading, resale operations failing to cover
    costs) reproduce.
    """

    plain_transfer: int = INTRINSIC_TRANSFER_GAS
    erc20_transfer: int = 52_000
    erc721_mint: int = 95_000
    erc721_transfer: int = 65_000
    erc1155_transfer: int = 55_000
    marketplace_sale: int = 185_000
    marketplace_listing: int = 0  # off-chain on OpenSea-like venues
    reward_claim: int = 90_000
    dex_swap: int = 120_000
    flash_loan: int = 300_000
    default_call: int = 80_000

    def for_function(self, function: str) -> int:
        """Gas used by a named contract function."""
        per_function = {
            "transfer": self.erc20_transfer,
            "transferFrom": self.erc721_transfer,
            "safeTransferFrom": self.erc721_transfer,
            "mint": self.erc721_mint,
            "burn": self.erc721_transfer,
            "matchOrders": self.marketplace_sale,
            "buy": self.marketplace_sale,
            "claim": self.reward_claim,
            "swap": self.dex_swap,
            "flashLoan": self.flash_loan,
            "deposit": self.plain_transfer,
            "withdraw": self.plain_transfer,
        }
        return per_function.get(function, self.default_call)


@dataclass
class GasPriceOracle:
    """Deterministic gas price as a function of the block timestamp.

    The price follows a slow multi-week swell plus a daily cycle around a
    base level, loosely mimicking mainnet congestion without randomness
    (the simulation layer adds per-transaction jitter from its own seeded
    RNG when it wants noise).
    """

    base_gwei: float = 55.0
    daily_amplitude_gwei: float = 20.0
    swell_amplitude_gwei: float = 30.0
    swell_period_days: float = 45.0

    def price_gwei(self, timestamp: int) -> float:
        """Gas price in gwei at the given timestamp."""
        day_fraction = (timestamp % SECONDS_PER_DAY) / SECONDS_PER_DAY
        day_index = timestamp / SECONDS_PER_DAY
        daily = self.daily_amplitude_gwei * math.sin(2 * math.pi * day_fraction)
        swell = self.swell_amplitude_gwei * math.sin(
            2 * math.pi * day_index / self.swell_period_days
        )
        price = self.base_gwei + daily + swell
        return max(price, 1.0)

    def price_wei(self, timestamp: int) -> int:
        """Gas price in wei at the given timestamp."""
        return gwei_to_wei(self.price_gwei(timestamp))
