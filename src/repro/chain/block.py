"""Blocks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.chain.transaction import Transaction


@dataclass
class Block:
    """A sealed block: a number, a timestamp and its transactions."""

    number: int
    timestamp: int
    transactions: list[Transaction] = field(default_factory=list)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self.transactions)

    def __len__(self) -> int:
        return len(self.transactions)

    @property
    def transaction_hashes(self) -> list[str]:
        """Hashes of the transactions in this block, in order."""
        return [tx.hash for tx in self.transactions]
