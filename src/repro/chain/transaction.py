"""Transactions and receipts."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.chain.events import Log
from repro.chain.types import Call, ValueTransfer


@dataclass(frozen=True)
class Receipt:
    """Execution result of a transaction.

    ``status`` follows the post-Byzantium convention: 1 for success, 0
    for a reverted execution (the transaction is still included and gas
    is still charged).
    """

    transaction_hash: str
    status: int
    gas_used: int
    logs: tuple[Log, ...] = ()
    value_transfers: tuple[ValueTransfer, ...] = ()

    @property
    def succeeded(self) -> bool:
        """True if the transaction did not revert."""
        return self.status == 1


@dataclass(frozen=True)
class Transaction:
    """One transaction as recorded on chain.

    The fields are the ones the paper's data collection stores: hash,
    block number, sender, recipient, ETH value, gas data and -- through
    the attached receipt -- the emitted logs and internal transfers.
    """

    hash: str
    block_number: int
    timestamp: int
    sender: str
    to: Optional[str]
    value_wei: int
    gas_used: int
    gas_price_wei: int
    call: Optional[Call] = None
    receipt: Optional[Receipt] = None
    nonce: int = 0

    @property
    def fee_wei(self) -> int:
        """Total gas fee paid by the sender, in wei."""
        return self.gas_used * self.gas_price_wei

    @property
    def succeeded(self) -> bool:
        """True if the attached receipt reports success."""
        return self.receipt is not None and self.receipt.succeeded

    @property
    def logs(self) -> Sequence[Log]:
        """Logs emitted by this transaction (empty if it reverted)."""
        return self.receipt.logs if self.receipt else ()

    @property
    def value_transfers(self) -> Sequence[ValueTransfer]:
        """ETH movements performed while executing this transaction.

        Includes the top-level value transfer and any internal transfers
        made by contract code (e.g. a marketplace paying out a seller).
        """
        return self.receipt.value_transfers if self.receipt else ()

    @property
    def interacted_contract(self) -> Optional[str]:
        """Address of the contract this transaction called, if any."""
        return self.to if self.call is not None else None
