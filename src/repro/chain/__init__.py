"""An in-memory Ethereum ledger.

This package is the substrate the paper takes for granted: the real
Ethereum mainnet accessed through a local Geth node.  It models the
observables the paper's pipeline consumes -- blocks, transactions,
receipts with topic-encoded logs, EOA/contract accounts, ETH balances
and gas fees -- and exposes them through :class:`EthereumNode`, a
web3.py-like read facade.
"""

from repro.chain.types import NFTKey, Call, ValueTransfer
from repro.chain.errors import (
    ChainError,
    InsufficientBalanceError,
    UnknownAccountError,
    ContractExecutionError,
    InvalidReorgError,
    InvalidTimestampError,
)
from repro.chain.account import Account
from repro.chain.events import Log
from repro.chain.transaction import Transaction, Receipt
from repro.chain.block import Block
from repro.chain.state import WorldState
from repro.chain.gas import GasSchedule, GasPriceOracle
from repro.chain.context import TxContext
from repro.chain.chain import Chain
from repro.chain.node import EthereumNode
from repro.chain.index import AccountIndex

__all__ = [
    "NFTKey",
    "Call",
    "ValueTransfer",
    "ChainError",
    "InsufficientBalanceError",
    "UnknownAccountError",
    "ContractExecutionError",
    "InvalidReorgError",
    "InvalidTimestampError",
    "Account",
    "Log",
    "Transaction",
    "Receipt",
    "Block",
    "WorldState",
    "GasSchedule",
    "GasPriceOracle",
    "TxContext",
    "Chain",
    "EthereumNode",
    "AccountIndex",
]
