"""Transaction execution context.

Contract objects never touch the world state directly: every effect --
moving ETH, emitting a log, calling another contract -- goes through a
:class:`TxContext`, which records the effects on the receipt being
built.  This is what lets one marketplace sale transaction carry the
ERC-721 Transfer log, the payout to the seller and the fee to the
treasury, the exact composite shape the paper's pipeline has to
untangle.

Convention: contract methods must validate all preconditions (and call
:meth:`TxContext.require`) *before* mutating state, so a revert never
leaves partial effects behind.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional

from repro.chain.errors import ContractExecutionError
from repro.chain.events import Log
from repro.chain.types import Call, ValueTransfer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.chain.chain import Chain


class TxContext:
    """Execution context shared by every contract touched in one transaction."""

    def __init__(
        self,
        chain: "Chain",
        origin: str,
        timestamp: int,
        block_number: int,
        value_wei: int = 0,
    ) -> None:
        self.chain = chain
        #: The EOA that signed the transaction (``tx.origin``).
        self.origin = origin
        self.timestamp = timestamp
        self.block_number = block_number
        #: ETH attached to the top-level call.
        self.value_wei = value_wei
        #: The immediate caller of the contract currently executing
        #: (``msg.sender``); updated on nested calls.
        self.caller = origin
        self._logs: List[Log] = []
        self._value_transfers: List[ValueTransfer] = []
        self._current_contract: Optional[str] = None

    # -- effects -----------------------------------------------------------
    def emit(self, log: Log) -> None:
        """Record an event log on the receipt being built."""
        self._logs.append(log)

    def transfer(self, sender: str, recipient: str, amount_wei: int) -> None:
        """Move ETH between accounts and record it as an internal transfer."""
        if amount_wei == 0:
            return
        self.chain.state.transfer(sender, recipient, amount_wei)
        self._value_transfers.append(ValueTransfer(sender, recipient, amount_wei))

    def record_external_transfer(self, transfer: ValueTransfer) -> None:
        """Record a value movement the chain itself already applied."""
        self._value_transfers.append(transfer)

    def call_contract(self, address: str, call: Call, value_wei: int = 0) -> Any:
        """Invoke another contract from inside contract code."""
        contract = self.chain.state.contract_at(address)
        if contract is None:
            raise ContractExecutionError(address, call.function, "not a contract")
        if value_wei:
            if self._current_contract is None:
                raise ContractExecutionError(
                    address, call.function, "no calling contract for value transfer"
                )
            self.transfer(self._current_contract, address, value_wei)
        previous_caller = self.caller
        previous_contract = self._current_contract
        self.caller = previous_contract if previous_contract else self.origin
        self._current_contract = address
        try:
            return contract.handle(self, call)
        finally:
            self.caller = previous_caller
            self._current_contract = previous_contract

    # -- helpers for contract code ------------------------------------------
    def require(self, condition: bool, reason: str) -> None:
        """Revert the transaction if ``condition`` does not hold."""
        if not condition:
            contract = self._current_contract or "<unknown>"
            raise ContractExecutionError(contract, "<require>", reason)

    def enter_contract(self, address: str) -> None:
        """Mark the contract currently executing (used by the chain)."""
        self._current_contract = address

    # -- receipt assembly ----------------------------------------------------
    @property
    def logs(self) -> tuple[Log, ...]:
        """Logs collected so far."""
        return tuple(self._logs)

    @property
    def value_transfers(self) -> tuple[ValueTransfer, ...]:
        """Value transfers collected so far."""
        return tuple(self._value_transfers)
