"""Small value types shared across the chain substrate.

Addresses, hashes and wei amounts are plain ``str``/``int`` throughout
the code base (mirroring how web3.py exposes them); this module defines
the composite value types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

#: The Ethereum null address.  The paper treats it specially: it is the
#: canonical source of mint transactions and sink of burn transactions,
#: and is removed from transaction graphs during refinement.
NULL_ADDRESS = "0x" + "0" * 40


@dataclass(frozen=True, order=True)
class NFTKey:
    """Globally unique identifier of one NFT.

    The paper identifies an NFT by the pair (smart-contract address,
    token id); this type is that pair.
    """

    contract: str
    token_id: int

    def __str__(self) -> str:
        return f"{self.contract}#{self.token_id}"


@dataclass(frozen=True)
class Call:
    """A contract call payload (the decoded ``input`` of a transaction).

    ``function`` is the method name on the target contract object and
    ``args`` its keyword arguments.  The real chain encodes this as ABI
    calldata; the decoded form is what every consumer of this substrate
    actually needs.
    """

    function: str
    args: Mapping[str, Any] = field(default_factory=dict)

    def arg(self, name: str, default: Any = None) -> Any:
        """Return a single argument by name."""
        return self.args.get(name, default)


@dataclass(frozen=True)
class ValueTransfer:
    """A single movement of ETH recorded while executing a transaction.

    Besides the top-level ``value`` of a transaction, contract execution
    moves ETH internally (e.g. a marketplace forwarding the sale price to
    the seller and the fee to its treasury).  These are the "internal
    transactions" a real node exposes via traces; the funding/exit
    detectors and the profitability analysis both rely on them.
    """

    sender: str
    recipient: str
    amount_wei: int
