"""Exceptions raised by the chain substrate."""

from __future__ import annotations


class ChainError(Exception):
    """Base class for every error raised by :mod:`repro.chain`."""


class UnknownAccountError(ChainError):
    """An operation referenced an address the world state has never seen."""

    def __init__(self, address: str) -> None:
        super().__init__(f"unknown account: {address}")
        self.address = address


class InsufficientBalanceError(ChainError):
    """An account tried to spend more wei than it holds."""

    def __init__(self, address: str, needed_wei: int, available_wei: int) -> None:
        super().__init__(
            f"account {address} needs {needed_wei} wei but holds {available_wei}"
        )
        self.address = address
        self.needed_wei = needed_wei
        self.available_wei = available_wei


class ContractExecutionError(ChainError):
    """A contract call reverted.

    The failed transaction is still recorded on-chain with ``status=0``
    and its gas is still charged, mirroring mainnet behaviour.
    """

    def __init__(self, contract: str, function: str, reason: str) -> None:
        super().__init__(f"{contract}.{function} reverted: {reason}")
        self.contract = contract
        self.function = function
        self.reason = reason


class InvalidReorgError(ChainError):
    """A chain reorganisation request was malformed.

    Raised when the requested depth exceeds the chain, or when a
    replacement branch is not a well-formed continuation of the fork
    point (non-consecutive numbers, decreasing timestamps, or
    transactions whose recorded position disagrees with their block).
    """

    def __init__(self, reason: str) -> None:
        super().__init__(f"invalid reorg: {reason}")
        self.reason = reason


class InvalidTimestampError(ChainError):
    """A transaction was submitted with a timestamp earlier than the chain head."""

    def __init__(self, timestamp: int, head_timestamp: int) -> None:
        super().__init__(
            f"transaction timestamp {timestamp} precedes chain head {head_timestamp}"
        )
        self.timestamp = timestamp
        self.head_timestamp = head_timestamp
