"""Per-account transaction index.

The paper's data collection queries the node "a second time to retrieve
all the transactions (sent and received) for accounts that appear as the
source or the recipient of a Transfer event".  A real archive node needs
an external index for that; here the chain maintains one incrementally.
An account is considered involved in a transaction if it is the sender,
the top-level recipient, a party of any internal ETH transfer, or a
party of any ERC-20 transfer log.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Set

from repro.chain.transaction import Transaction


def transaction_parties(tx: Transaction) -> Set[str]:
    """The accounts involved in a transaction, per the indexing rule.

    Shared by the chain's own :class:`AccountIndex` and the streaming
    ingest cursor, which attributes freshly mined transactions to the
    accounts it already follows -- both must agree on "involved".
    """
    parties: Set[str] = {tx.sender}
    if tx.to:
        parties.add(tx.to)
    for transfer in tx.value_transfers:
        parties.add(transfer.sender)
        parties.add(transfer.recipient)
    for log in tx.logs:
        if log.is_erc20_transfer or log.is_erc721_transfer:
            parties.add(log.topics[1])
            parties.add(log.topics[2])
    return parties


class AccountIndex:
    """Maps account addresses to the transactions that involve them."""

    def __init__(self) -> None:
        self._by_account: Dict[str, List[Transaction]] = defaultdict(list)
        self._seen: Dict[str, Set[str]] = defaultdict(set)

    def record(self, tx: Transaction) -> None:
        """Index one freshly executed transaction."""
        for address in transaction_parties(tx):
            if tx.hash not in self._seen[address]:
                self._seen[address].add(tx.hash)
                self._by_account[address].append(tx)

    def remove(self, tx: Transaction) -> None:
        """Unindex a transaction orphaned by a chain reorganisation.

        Reorgs drop blocks from the tail, so the removed entries sit at
        the end of each per-account list; the search walks backwards.
        Empty buckets are deleted so ``accounts()`` and membership tests
        never report an address whose every transaction was orphaned.
        """
        for address in transaction_parties(tx):
            seen = self._seen.get(address)
            if seen is None or tx.hash not in seen:
                continue
            seen.discard(tx.hash)
            bucket = self._by_account.get(address, [])
            for position in range(len(bucket) - 1, -1, -1):
                if bucket[position].hash == tx.hash:
                    del bucket[position]
                    break
            if not bucket:
                self._by_account.pop(address, None)
                self._seen.pop(address, None)

    def transactions_of(self, address: str) -> List[Transaction]:
        """All transactions involving ``address``, in chain order."""
        return list(self._by_account.get(address, ()))

    def accounts(self) -> Iterable[str]:
        """Every indexed address."""
        return self._by_account.keys()

    def __contains__(self, address: str) -> bool:
        return address in self._by_account
