"""The ledger itself: transaction execution and block production."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.chain.block import Block
from repro.chain.context import TxContext
from repro.chain.errors import (
    ContractExecutionError,
    InsufficientBalanceError,
    InvalidReorgError,
    InvalidTimestampError,
)
from repro.chain.gas import GasPriceOracle, GasSchedule
from repro.chain.index import AccountIndex
from repro.chain.state import WorldState
from repro.chain.transaction import Receipt, Transaction
from repro.chain.types import Call, ValueTransfer
from repro.utils.hashing import address_from_parts, keccak_hex, new_tx_hash
from repro.utils.timeutil import SIMULATION_EPOCH

#: Address credited with gas fees (a stand-in for miners/validators).
COINBASE_ADDRESS = "0x" + "c0ffee" * 6 + "c0ff"

#: Parent hash of block 0, by convention all zeroes (like mainnet).
GENESIS_PARENT_HASH = "0x" + "0" * 64


class Chain:
    """An append-only ledger executing transactions into blocks.

    One block is produced per distinct transaction timestamp; timestamps
    must be non-decreasing.  Every state effect of a transaction --
    including internal ETH movements made by contract code -- is recorded
    on its receipt so downstream consumers see the same observables a
    real node exposes through receipts and traces.
    """

    def __init__(
        self,
        gas_schedule: Optional[GasSchedule] = None,
        gas_price_oracle: Optional[GasPriceOracle] = None,
        genesis_timestamp: int = SIMULATION_EPOCH,
    ) -> None:
        self.state = WorldState()
        self.gas_schedule = gas_schedule or GasSchedule()
        self.gas_price_oracle = gas_price_oracle or GasPriceOracle()
        self.genesis_timestamp = genesis_timestamp
        self.blocks: List[Block] = []
        self.account_index = AccountIndex()
        self._tx_by_hash: Dict[str, Transaction] = {}
        self._contract_serial = 0
        #: Chained hashes of *sealed* blocks (every block but the head,
        #: whose content may still grow), filled lazily by block_hash.
        self._sealed_hashes: List[str] = []

    # -- chain head ---------------------------------------------------------
    @property
    def head_block_number(self) -> int:
        """Number of the most recent block (-1 before any transaction)."""
        return self.blocks[-1].number if self.blocks else -1

    @property
    def head_timestamp(self) -> int:
        """Timestamp of the most recent block (genesis time before any block)."""
        return self.blocks[-1].timestamp if self.blocks else self.genesis_timestamp

    def transaction_count(self) -> int:
        """Total number of transactions on the chain."""
        return len(self._tx_by_hash)

    # -- block identity ------------------------------------------------------
    def block_hash(self, number: int) -> str:
        """The chained hash of a block.

        The hash commits to the block's number, timestamp, transaction
        hashes *and its parent's hash*, so two chains agreeing on the
        hash of block ``n`` agree on every block up to ``n`` -- the
        property a follower relies on to detect reorganisations from a
        single tail comparison.  Hashes of sealed blocks (everything
        below the head) are cached; the head block may still accept
        transactions, so its hash is recomputed on each call.
        """
        if number < 0 or number >= len(self.blocks):
            raise IndexError(f"block {number} does not exist")
        sealed_limit = len(self.blocks) - 1
        while len(self._sealed_hashes) < min(number + 1, sealed_limit):
            self._sealed_hashes.append(self._compute_block_hash(len(self._sealed_hashes)))
        if number < sealed_limit:
            return self._sealed_hashes[number]
        return self._compute_block_hash(number)

    def parent_hash(self, number: int) -> str:
        """The hash of a block's parent (all zeroes for block 0)."""
        if number <= 0:
            return GENESIS_PARENT_HASH
        return self.block_hash(number - 1)

    def _compute_block_hash(self, number: int) -> str:
        block = self.blocks[number]
        parent = (
            self._sealed_hashes[number - 1] if number > 0 else GENESIS_PARENT_HASH
        )
        return keccak_hex(
            "block", block.number, block.timestamp, parent, tuple(block.transaction_hashes)
        )

    # -- reorganisation ------------------------------------------------------
    def reorg(
        self, depth: int, replacement_blocks: Optional[Sequence[Block]] = None
    ) -> List[Block]:
        """Replace the last ``depth`` blocks with an alternative branch.

        The orphaned blocks' transactions are removed from the hash and
        account indexes, the replacement blocks (which may be fewer than
        ``depth``, shrinking the head) are appended and indexed, and the
        orphaned blocks are returned.  Replacement blocks must continue
        the fork point: consecutive numbers, non-decreasing timestamps,
        and every carried transaction stamped with its block's position.

        The world *state* (balances, token ownership, contract storage)
        is deliberately left untouched: this substrate executes
        transactions eagerly and keeps their receipts, so a reorg here
        revises the observable ledger -- blocks, transactions, logs,
        the account index, block hashes -- which is everything the data
        collection layer reads.  Re-executing an alternative history is
        out of scope; followers care about what the canonical chain
        *says happened*, and that is what this primitive rewrites.
        """
        if depth < 1:
            raise InvalidReorgError(f"depth must be >= 1, got {depth}")
        if depth > len(self.blocks):
            raise InvalidReorgError(
                f"depth {depth} exceeds chain length {len(self.blocks)}"
            )
        replacement = list(replacement_blocks or ())
        fork_number = len(self.blocks) - depth - 1
        fork_timestamp = (
            self.blocks[fork_number].timestamp
            if fork_number >= 0
            else self.genesis_timestamp
        )
        expected_number = fork_number + 1
        last_timestamp = fork_timestamp
        for block in replacement:
            if block.number != expected_number:
                raise InvalidReorgError(
                    f"replacement block {block.number} breaks numbering "
                    f"(expected {expected_number})"
                )
            if block.timestamp < last_timestamp:
                raise InvalidReorgError(
                    f"replacement block {block.number} timestamp {block.timestamp} "
                    f"precedes its parent's {last_timestamp}"
                )
            for tx in block.transactions:
                if tx.block_number != block.number or tx.timestamp != block.timestamp:
                    raise InvalidReorgError(
                        f"transaction {tx.hash} is stamped for block "
                        f"{tx.block_number}@{tx.timestamp} but carried by block "
                        f"{block.number}@{block.timestamp}"
                    )
            expected_number += 1
            last_timestamp = block.timestamp

        orphaned = self.blocks[fork_number + 1 :]
        for block in orphaned:
            for tx in block.transactions:
                self._tx_by_hash.pop(tx.hash, None)
                self.account_index.remove(tx)
        del self.blocks[fork_number + 1 :]
        # With no replacement the fork block itself becomes the open head
        # again and may grow, so its cached sealed hash must go too.
        cached = fork_number + 1 if replacement else max(fork_number, 0)
        del self._sealed_hashes[cached:]
        for block in replacement:
            self.blocks.append(block)
            for tx in block.transactions:
                self._tx_by_hash[tx.hash] = tx
                self.account_index.record(tx)
        return orphaned

    # -- funding and deployment ----------------------------------------------
    def faucet(self, address: str, amount_wei: int) -> None:
        """Credit an address with freshly minted ETH.

        This models value entering the simulated world from outside
        (genesis allocations, mining income, fiat on-ramps feeding
        exchange hot wallets); ordinary users should instead be funded
        on-chain by the simulation so funding relationships stay visible.
        """
        self.state.mint_ether(address, amount_wei)

    def deploy_contract(self, contract: object, address: Optional[str] = None) -> str:
        """Register a contract object on the chain and return its address."""
        if address is None:
            self._contract_serial += 1
            address = address_from_parts("contract", self._contract_serial)
        self.state.deploy(address, contract)
        bind = getattr(contract, "bind", None)
        if callable(bind):
            bind(address, self)
        return address

    # -- execution ------------------------------------------------------------
    def transact(
        self,
        sender: str,
        to: Optional[str] = None,
        value_wei: int = 0,
        call: Optional[Call] = None,
        timestamp: Optional[int] = None,
        gas_price_wei: Optional[int] = None,
    ) -> Transaction:
        """Execute one transaction and append it to the chain.

        Parameters mirror a raw Ethereum transaction: ``sender`` signs and
        pays, ``to`` receives value or hosts the called contract, ``call``
        is the decoded input data.  Raises
        :class:`InsufficientBalanceError` if the sender cannot cover value
        plus gas, and :class:`ContractExecutionError` if the target
        contract reverts (the reverted transaction is still recorded, with
        ``status=0`` and its gas charged).
        """
        timestamp = self.head_timestamp if timestamp is None else timestamp
        if timestamp < self.head_timestamp:
            raise InvalidTimestampError(timestamp, self.head_timestamp)

        block = self._block_for(timestamp)
        gas_used = (
            self.gas_schedule.for_function(call.function)
            if call is not None
            else self.gas_schedule.plain_transfer
        )
        if gas_price_wei is None:
            gas_price_wei = self.gas_price_oracle.price_wei(timestamp)
        fee_wei = gas_used * gas_price_wei

        sender_account = self.state.get_or_create(sender)
        if sender_account.balance_wei < value_wei + fee_wei:
            raise InsufficientBalanceError(
                sender, value_wei + fee_wei, sender_account.balance_wei
            )

        # Gas is charged up front and is not refunded on revert.
        self.state.transfer(sender, COINBASE_ADDRESS, fee_wei)
        sender_account.nonce += 1

        tx_hash = new_tx_hash(block.number, len(block.transactions), sender, to, value_wei)
        context = TxContext(
            chain=self,
            origin=sender,
            timestamp=timestamp,
            block_number=block.number,
            value_wei=value_wei,
        )

        status = 1
        revert: Optional[ContractExecutionError] = None
        target_contract = self.state.contract_at(to) if to else None
        if target_contract is not None and call is not None:
            if value_wei:
                self.state.transfer(sender, to, value_wei)
                context.record_external_transfer(ValueTransfer(sender, to, value_wei))
            context.enter_contract(to)
            try:
                target_contract.handle(context, call)
            except ContractExecutionError as error:
                status = 0
                revert = error
        elif to is not None:
            if value_wei:
                self.state.transfer(sender, to, value_wei)
                context.record_external_transfer(ValueTransfer(sender, to, value_wei))
        else:
            # A transaction with no recipient is a no-op placeholder here
            # (real chains use it for contract creation, which this
            # substrate performs through deploy_contract instead).
            pass

        receipt = Receipt(
            transaction_hash=tx_hash,
            status=status,
            gas_used=gas_used,
            logs=context.logs if status == 1 else (),
            value_transfers=context.value_transfers if status == 1 else (),
        )
        tx = Transaction(
            hash=tx_hash,
            block_number=block.number,
            timestamp=timestamp,
            sender=sender,
            to=to,
            value_wei=value_wei,
            gas_used=gas_used,
            gas_price_wei=gas_price_wei,
            call=call,
            receipt=receipt,
            nonce=sender_account.nonce,
        )
        block.transactions.append(tx)
        self._tx_by_hash[tx_hash] = tx
        self.account_index.record(tx)

        if revert is not None:
            raise revert
        return tx

    # -- lookups ----------------------------------------------------------------
    def transaction(self, tx_hash: str) -> Optional[Transaction]:
        """Return a transaction by hash, or None."""
        return self._tx_by_hash.get(tx_hash)

    def _block_for(self, timestamp: int) -> Block:
        """Return the block accepting transactions at ``timestamp``."""
        if self.blocks and self.blocks[-1].timestamp == timestamp:
            return self.blocks[-1]
        block = Block(number=self.head_block_number + 1, timestamp=timestamp)
        self.blocks.append(block)
        return block
