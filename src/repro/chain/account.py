"""Accounts: externally owned accounts (EOAs) and contract accounts.

The distinction matters for the paper's refinement step: contract
accounts are excluded from transaction graphs, and the exclusion is done
exactly as in the paper -- "we only exclude accounts that contain
bytecode".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass
class Account:
    """State of a single Ethereum account.

    Parameters
    ----------
    address:
        The 20-byte hex address.
    balance_wei:
        Current ETH balance in wei.
    nonce:
        Number of transactions sent from this account.
    code:
        Contract bytecode.  ``None`` for EOAs; any non-empty ``bytes``
        marks the account as a smart contract.  The reproduction stores a
        short synthetic marker rather than real EVM bytecode -- the only
        observable the pipeline uses is *presence* of code.
    contract:
        The Python object implementing the contract's behaviour, if any.
    """

    address: str
    balance_wei: int = 0
    nonce: int = 0
    code: Optional[bytes] = None
    contract: Optional[Any] = None

    @property
    def is_contract(self) -> bool:
        """True if the account holds bytecode (the paper's contract test)."""
        return bool(self.code)

    def credit(self, amount_wei: int) -> None:
        """Add wei to the balance."""
        if amount_wei < 0:
            raise ValueError(f"cannot credit a negative amount: {amount_wei}")
        self.balance_wei += amount_wei

    def debit(self, amount_wei: int) -> None:
        """Remove wei from the balance; the caller must have checked funds."""
        if amount_wei < 0:
            raise ValueError(f"cannot debit a negative amount: {amount_wei}")
        if amount_wei > self.balance_wei:
            raise ValueError(
                f"debit {amount_wei} exceeds balance {self.balance_wei} of {self.address}"
            )
        self.balance_wei -= amount_wei
