"""Event logs.

Ethereum contracts signal state changes by emitting logs.  A log carries
the address of the emitting contract, up to four *topics* (the first is
the keccak of the event declaration, the rest are the indexed arguments)
and a data blob with the non-indexed arguments.

The paper's data collection hinges on the exact topic layout: an ERC-721
``Transfer`` event has **four** topics (signature, from, to, token id)
while an ERC-20 ``Transfer`` has three (the amount is not indexed) and
ERC-1155 uses a different signature altogether.  The reproduction keeps
that layout byte-for-byte at the signature level so the ingest code can
apply the same discrimination rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.utils.hashing import (
    ERC1155_TRANSFER_BATCH_SIGNATURE,
    ERC1155_TRANSFER_SINGLE_SIGNATURE,
    ERC721_TRANSFER_SIGNATURE,
)


@dataclass(frozen=True)
class Log:
    """One event log entry, as a receipt would expose it."""

    address: str
    topics: tuple[str, ...]
    data: Mapping[str, Any] = field(default_factory=dict)

    @property
    def signature(self) -> str:
        """Topic 0: the event signature hash ('' if the log has no topics)."""
        return self.topics[0] if self.topics else ""

    @property
    def is_erc721_transfer(self) -> bool:
        """True for Transfer events with the ERC-721 topic layout.

        This is the paper's rule: the ``ddf252ad…`` signature *and* four
        topics (token id indexed).
        """
        return self.signature == ERC721_TRANSFER_SIGNATURE and len(self.topics) == 4

    @property
    def is_erc20_transfer(self) -> bool:
        """True for Transfer events with the ERC-20 topic layout (3 topics)."""
        return self.signature == ERC721_TRANSFER_SIGNATURE and len(self.topics) == 3

    @property
    def is_erc1155_transfer(self) -> bool:
        """True for ERC-1155 TransferSingle or TransferBatch events."""
        return self.signature in (
            ERC1155_TRANSFER_SINGLE_SIGNATURE,
            ERC1155_TRANSFER_BATCH_SIGNATURE,
        )


def erc721_transfer_log(contract: str, sender: str, recipient: str, token_id: int) -> Log:
    """Build an ERC-721 ``Transfer`` log (4 topics)."""
    return Log(
        address=contract,
        topics=(ERC721_TRANSFER_SIGNATURE, sender, recipient, hex(token_id)),
    )


def erc20_transfer_log(contract: str, sender: str, recipient: str, amount: int) -> Log:
    """Build an ERC-20 ``Transfer`` log (3 topics, amount in data)."""
    return Log(
        address=contract,
        topics=(ERC721_TRANSFER_SIGNATURE, sender, recipient),
        data={"value": amount},
    )


def erc1155_transfer_log(
    contract: str, operator: str, sender: str, recipient: str, token_id: int, amount: int
) -> Log:
    """Build an ERC-1155 ``TransferSingle`` log."""
    return Log(
        address=contract,
        topics=(ERC1155_TRANSFER_SINGLE_SIGNATURE, operator, sender, recipient),
        data={"id": token_id, "value": amount},
    )


def erc1155_transfer_batch_log(
    contract: str,
    operator: str,
    sender: str,
    recipient: str,
    token_ids: Sequence[int],
    amounts: Sequence[int],
) -> Log:
    """Build an ERC-1155 ``TransferBatch`` log (ids and amounts in data).

    Like the real event it keeps four topics -- signature, operator,
    from, to -- so it is structurally indistinguishable from an ERC-721
    ``Transfer`` by topic *count* alone; only the signature separates
    them, which is exactly the discrimination the ingest scan must make.
    """
    return Log(
        address=contract,
        topics=(ERC1155_TRANSFER_BATCH_SIGNATURE, operator, sender, recipient),
        data={"ids": tuple(token_ids), "values": tuple(amounts)},
    )
