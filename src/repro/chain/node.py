"""A web3.py-like read facade over a :class:`~repro.chain.chain.Chain`.

The paper runs a local Geth archive node and queries it with web3.py.
:class:`EthereumNode` exposes the handful of read endpoints that data
collection needs -- blocks, transactions, receipts, logs filtered by
topic, bytecode, balances and read-only contract calls -- with the same
shape of answers.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence

from repro.chain.block import Block
from repro.chain.chain import Chain
from repro.chain.events import Log
from repro.chain.transaction import Receipt, Transaction


class EthereumNode:
    """Read-only access to an in-memory chain."""

    def __init__(self, chain: Chain) -> None:
        self.chain = chain

    # -- blocks -----------------------------------------------------------
    @property
    def block_number(self) -> int:
        """Number of the latest block."""
        return self.chain.head_block_number

    def get_block(self, number: int) -> Block:
        """Return a block by number (raises IndexError if out of range)."""
        if number < 0 or number > self.chain.head_block_number:
            raise IndexError(f"block {number} does not exist")
        return self.chain.blocks[number]

    def get_block_hash(self, number: int) -> str:
        """Return the chained hash of a block.

        The hash commits to the whole prefix (each block's hash includes
        its parent's), so a follower that remembers the hash of its tail
        block can detect any reorganisation of already-processed history
        with a single comparison.
        """
        return self.chain.block_hash(number)

    def get_parent_hash(self, number: int) -> str:
        """Return the parent hash of a block (all zeroes for block 0)."""
        return self.chain.parent_hash(number)

    def iter_blocks(
        self, from_block: int = 0, to_block: Optional[int] = None
    ) -> Iterator[Block]:
        """Iterate blocks in the inclusive range [from_block, to_block].

        The range is clamped to the blocks that actually exist, matching
        how a node answers a filter over not-yet-mined block numbers.
        """
        head = self.chain.head_block_number
        stop = head if to_block is None else min(to_block, head)
        for number in range(max(from_block, 0), stop + 1):
            yield self.chain.blocks[number]

    # -- transactions ------------------------------------------------------
    def get_transaction(self, tx_hash: str) -> Optional[Transaction]:
        """Return a transaction by hash."""
        return self.chain.transaction(tx_hash)

    def get_transaction_receipt(self, tx_hash: str) -> Optional[Receipt]:
        """Return the receipt of a transaction by hash."""
        tx = self.chain.transaction(tx_hash)
        return tx.receipt if tx else None

    def get_transactions_of(self, address: str) -> List[Transaction]:
        """All transactions an address took part in (sent, received or internal)."""
        return self.chain.account_index.transactions_of(address)

    # -- logs ---------------------------------------------------------------
    def get_logs(
        self,
        from_block: int = 0,
        to_block: Optional[int] = None,
        address: Optional[str] = None,
        topic0: Optional[str] = None,
        topic_count: Optional[int] = None,
    ) -> List[tuple[Transaction, Log]]:
        """Return (transaction, log) pairs matching the filter.

        ``topic0`` filters on the event signature and ``topic_count`` on
        the number of topics -- together they express the paper's ERC-721
        transfer filter.
        """
        matches: List[tuple[Transaction, Log]] = []
        for block in self.iter_blocks(from_block, to_block):
            for tx in block.transactions:
                for log in tx.logs:
                    if address is not None and log.address != address:
                        continue
                    if topic0 is not None and log.signature != topic0:
                        continue
                    if topic_count is not None and len(log.topics) != topic_count:
                        continue
                    matches.append((tx, log))
        return matches

    # -- accounts ------------------------------------------------------------
    def get_balance(self, address: str) -> int:
        """ETH balance of an address, in wei."""
        return self.chain.state.balance_of(address)

    def get_code(self, address: str) -> bytes:
        """Bytecode at an address (empty for EOAs)."""
        return self.chain.state.code_at(address)

    def is_contract(self, address: str) -> bool:
        """True if the address holds bytecode."""
        return self.chain.state.is_contract(address)

    # -- read-only contract calls ----------------------------------------------
    def call(self, address: str, function: str, **args: Any) -> Any:
        """Perform a read-only ("eth_call") contract invocation.

        Used by the ingest layer for the ERC-165 ``supportsInterface``
        compliance check.  Raises ``ValueError`` if the address is not a
        contract or does not expose the requested view.
        """
        contract = self.chain.state.contract_at(address)
        if contract is None:
            raise ValueError(f"{address} is not a contract")
        view = getattr(contract, "view", None)
        if not callable(view):
            raise ValueError(f"{address} does not expose view calls")
        return view(function, args)
