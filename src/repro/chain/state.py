"""World state: the account map and value movements."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.chain.account import Account
from repro.chain.errors import InsufficientBalanceError, UnknownAccountError
from repro.chain.types import NULL_ADDRESS


class WorldState:
    """The mutable account state of the ledger.

    Accounts are created lazily with a zero balance the first time they
    are touched, matching how the real state trie behaves from an
    observer's point of view.
    """

    def __init__(self) -> None:
        self._accounts: Dict[str, Account] = {}
        # The null address always exists: it is the source of mints and
        # the sink of burns.
        self._accounts[NULL_ADDRESS] = Account(address=NULL_ADDRESS)

    # -- account access ---------------------------------------------------
    def get_or_create(self, address: str) -> Account:
        """Return the account at ``address``, creating an empty EOA if new."""
        account = self._accounts.get(address)
        if account is None:
            account = Account(address=address)
            self._accounts[address] = account
        return account

    def get(self, address: str) -> Account:
        """Return an existing account or raise :class:`UnknownAccountError`."""
        account = self._accounts.get(address)
        if account is None:
            raise UnknownAccountError(address)
        return account

    def exists(self, address: str) -> bool:
        """True if the address has been touched before."""
        return address in self._accounts

    def addresses(self) -> Iterable[str]:
        """All known addresses."""
        return self._accounts.keys()

    def accounts(self) -> Iterable[Account]:
        """All known accounts."""
        return self._accounts.values()

    def __len__(self) -> int:
        return len(self._accounts)

    # -- balances ----------------------------------------------------------
    def balance_of(self, address: str) -> int:
        """Balance in wei (0 for never-seen addresses)."""
        account = self._accounts.get(address)
        return account.balance_wei if account else 0

    def mint_ether(self, address: str, amount_wei: int) -> None:
        """Create ETH out of thin air (genesis allocations, mining rewards)."""
        self.get_or_create(address).credit(amount_wei)

    def transfer(self, sender: str, recipient: str, amount_wei: int) -> None:
        """Move wei between two accounts, enforcing the sender's balance."""
        if amount_wei < 0:
            raise ValueError(f"cannot transfer a negative amount: {amount_wei}")
        source = self.get_or_create(sender)
        if source.balance_wei < amount_wei:
            raise InsufficientBalanceError(sender, amount_wei, source.balance_wei)
        destination = self.get_or_create(recipient)
        source.debit(amount_wei)
        destination.credit(amount_wei)

    # -- code / contracts ---------------------------------------------------
    def deploy(self, address: str, contract: object, code_marker: Optional[bytes] = None) -> Account:
        """Register a contract object at an address and mark it with bytecode."""
        account = self.get_or_create(address)
        account.contract = contract
        account.code = code_marker if code_marker is not None else b"\x60\x80" + address.encode()
        return account

    def code_at(self, address: str) -> bytes:
        """Return the bytecode at an address (empty bytes for EOAs)."""
        account = self._accounts.get(address)
        if account is None or account.code is None:
            return b""
        return account.code

    def is_contract(self, address: str) -> bool:
        """True if the address holds bytecode."""
        return bool(self.code_at(address))

    def contract_at(self, address: str) -> Optional[object]:
        """Return the Python contract object at an address, if any."""
        account = self._accounts.get(address)
        return account.contract if account else None
