"""Reproduction of "A Game of NFTs: Characterizing NFT Wash Trading in the
Ethereum Blockchain" (La Morgia et al., ICDCS 2023).

The package is organised in layers:

* :mod:`repro.chain` -- an in-memory Ethereum ledger (blocks, transactions,
  logs, accounts, gas) with a web3-like read API.
* :mod:`repro.contracts` -- ERC-20 / ERC-721 / ERC-1155 token contracts and
  the ERC-165 introspection used by the paper's compliance check.
* :mod:`repro.marketplaces` -- NFT marketplace contracts (OpenSea,
  LooksRare, Rarible, SuperRare, Foundation, Decentraland) including fee
  schedules, escrow and token reward programs.
* :mod:`repro.services` -- exchanges, DeFi services, the Etherscan-style
  label registry and the USD price oracle.
* :mod:`repro.ingest` -- dataset construction (Sec. III of the paper).
* :mod:`repro.core` -- the paper's contribution: per-NFT transaction
  graphs, SCC candidate search, refinement, the five confirmation
  techniques, characterization and profitability analysis (Sec. IV-VII).
* :mod:`repro.stream` -- the streaming monitor subsystem: incremental
  ingest following the chain head, dirty-token re-detection and a
  subscriber-facing alerting service (Sec. IX as a live watchdog).
* :mod:`repro.serve` -- the query/serving subsystem over the monitor: a
  versioned, snapshot-isolated read model, a concurrent wash-status
  query API with dirty-token-keyed aggregate caching, and replayable
  alert subscription cursors.
* :mod:`repro.simulation` -- a seeded synthetic workload generator that
  plants ground-truth wash trading in a full synthetic world.
* :mod:`repro.analysis` -- regenerates every table and figure of the
  paper's evaluation from a pipeline run.
"""

from repro.chain import Chain, EthereumNode
from repro.simulation import SimulationConfig, WorldBuilder, build_default_world
from repro.ingest import build_dataset
from repro.core import WashTradingPipeline, PipelineResult
from repro.analysis import PaperReport
from repro.stream import DatasetCursor, StreamingMonitor
from repro.serve import QueryService, ServeService

__version__ = "1.2.0"

__all__ = [
    "Chain",
    "EthereumNode",
    "SimulationConfig",
    "WorldBuilder",
    "build_default_world",
    "build_dataset",
    "WashTradingPipeline",
    "PipelineResult",
    "PaperReport",
    "DatasetCursor",
    "StreamingMonitor",
    "QueryService",
    "ServeService",
    "__version__",
]
