"""The assembled dataset the detection pipeline consumes."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set

from repro.chain.node import EthereumNode
from repro.chain.transaction import Transaction
from repro.chain.types import NFTKey, NULL_ADDRESS
from repro.ingest.account_tx import collect_account_transactions
from repro.ingest.compliance import ComplianceReport, check_erc721_compliance
from repro.ingest.marketplace_attribution import build_reverse_index
from repro.ingest.records import ERC20Payment, NFTTransfer
from repro.ingest.transfer_scan import (
    TransferScanResult,
    decode_transfer_log,
    scan_erc721_transfer_logs,
)


@dataclass
class MarketplaceActivity:
    """Aggregate activity of one venue (one row of Table I)."""

    name: str
    nfts: Set[NFTKey] = field(default_factory=set)
    transaction_hashes: Set[str] = field(default_factory=set)
    volume_wei: int = 0

    @property
    def nft_count(self) -> int:
        """Distinct NFTs traded through the venue."""
        return len(self.nfts)

    @property
    def transaction_count(self) -> int:
        """Distinct transactions interacting with the venue."""
        return len(self.transaction_hashes)


@dataclass
class NFTDataset:
    """Everything Sec. III collects, in one queryable object."""

    transfers_by_nft: Dict[NFTKey, List[NFTTransfer]]
    compliance: ComplianceReport
    scan: TransferScanResult
    account_transactions: Dict[str, List[Transaction]]
    marketplace_addresses: Mapping[str, str]
    #: Lazily built columnar view consumed by the detection engine.
    _columnar_store: Optional[object] = field(default=None, repr=False, compare=False)

    # -- sizes -----------------------------------------------------------------
    @property
    def nft_count(self) -> int:
        """Number of distinct NFTs with at least one transfer."""
        return len(self.transfers_by_nft)

    @property
    def collection_count(self) -> int:
        """Number of distinct compliant collections with transfers."""
        return len({nft.contract for nft in self.transfers_by_nft})

    @property
    def transfer_count(self) -> int:
        """Total number of ERC-721 transfers retained."""
        return sum(len(transfers) for transfers in self.transfers_by_nft.values())

    # -- access ------------------------------------------------------------------
    def transfers_of(self, nft: NFTKey) -> List[NFTTransfer]:
        """Transfers of one NFT in chain order."""
        return self.transfers_by_nft.get(nft, [])

    def nfts(self) -> Iterable[NFTKey]:
        """Every NFT in the dataset."""
        return self.transfers_by_nft.keys()

    def collections(self) -> Set[str]:
        """Every collection (contract address) in the dataset."""
        return {nft.contract for nft in self.transfers_by_nft}

    def nfts_of_collection(self, contract: str) -> List[NFTKey]:
        """The NFTs of one collection present in the dataset."""
        return [nft for nft in self.transfers_by_nft if nft.contract == contract]

    def involved_accounts(self) -> Set[str]:
        """Every account appearing as source or recipient of a transfer."""
        accounts: Set[str] = set()
        for transfers in self.transfers_by_nft.values():
            for transfer in transfers:
                if transfer.sender != NULL_ADDRESS:
                    accounts.add(transfer.sender)
                if transfer.recipient != NULL_ADDRESS:
                    accounts.add(transfer.recipient)
        return accounts

    def transactions_of(self, account: str) -> List[Transaction]:
        """All standard transactions collected for an account."""
        return self.account_transactions.get(account, [])

    def columnar_store(self):
        """The interned columnar view of the transfers, built once.

        The detection engine (:mod:`repro.engine`) consumes this instead
        of rebuilding per-NFT graphs; repeated pipeline runs over the
        same dataset share the one store.
        """
        if self._columnar_store is None:
            from repro.engine.store import ColumnarTransferStore

            self._columnar_store = ColumnarTransferStore.from_dataset(self)
        return self._columnar_store

    # -- volumes ------------------------------------------------------------------
    @property
    def total_volume_wei(self) -> int:
        """Total ETH volume moved by the transactions carrying transfers."""
        return sum(
            transfer.price_wei
            for transfers in self.transfers_by_nft.values()
            for transfer in transfers
        )

    def marketplace_activity(self) -> Dict[str, MarketplaceActivity]:
        """Per-venue NFT counts, transaction counts and volumes (Table I)."""
        activity: Dict[str, MarketplaceActivity] = {
            name: MarketplaceActivity(name=name) for name in self.marketplace_addresses
        }
        for nft, transfers in self.transfers_by_nft.items():
            for transfer in transfers:
                if transfer.marketplace is None:
                    continue
                venue = activity[transfer.marketplace]
                venue.nfts.add(nft)
                if transfer.tx_hash not in venue.transaction_hashes:
                    venue.transaction_hashes.add(transfer.tx_hash)
                    venue.volume_wei += transfer.price_wei
        return activity

    def volume_of_collection_wei(self, contract: str) -> int:
        """Total traded volume of one collection."""
        return sum(
            transfer.price_wei
            for nft, transfers in self.transfers_by_nft.items()
            if nft.contract == contract
            for transfer in transfers
        )


def transfer_from_log(tx, log, venue_by_address: Mapping[str, str]) -> NFTTransfer:
    """Enrich one ERC-721 Transfer log with its transaction context.

    Shared by the batch :func:`build_dataset` and the streaming
    :class:`~repro.stream.cursor.DatasetCursor` so both produce
    identical :class:`NFTTransfer` records for the same log.
    """
    sender, recipient, token_id = decode_transfer_log(log)
    erc20_payments = tuple(
        ERC20Payment(
            token=other.address,
            sender=other.topics[1],
            recipient=other.topics[2],
            amount=int(other.data.get("value", 0)),
        )
        for other in tx.logs
        if other.is_erc20_transfer
    )
    return NFTTransfer(
        nft=NFTKey(contract=log.address, token_id=token_id),
        sender=sender,
        recipient=recipient,
        tx_hash=tx.hash,
        block_number=tx.block_number,
        timestamp=tx.timestamp,
        price_wei=tx.value_wei,
        gas_fee_wei=tx.fee_wei,
        interacted_contract=tx.interacted_contract,
        marketplace=venue_by_address.get(tx.to) if tx.to else None,
        tx_sender=tx.sender,
        erc20_payments=erc20_payments,
    )


def build_dataset(
    node: EthereumNode,
    marketplace_addresses: Mapping[str, str],
    from_block: int = 0,
    to_block: Optional[int] = None,
    enforce_compliance: bool = True,
) -> NFTDataset:
    """Run the full Sec. III collection pipeline against a node.

    Steps: scan for ERC-721-shaped Transfer events, check ERC-165
    compliance of the emitting contracts, enrich each transfer with its
    transaction context (price, gas, venue, co-occurring ERC-20 moves),
    then collect every transaction of every involved account.

    The build is *causal*: with ``to_block`` set, the per-account
    histories are clamped to the same prefix the transfer scan covered,
    so a prefix build sees exactly what a live follower at block
    ``to_block`` would have seen -- no future funding or exit
    transactions leak in.  This makes ``build_dataset(to_block=B)``
    directly comparable to mid-stream monitor state without any
    node-wrapping workaround.
    """
    scan = scan_erc721_transfer_logs(node, from_block=from_block, to_block=to_block)
    compliance = check_erc721_compliance(node, sorted(scan.emitting_contracts))
    venue_by_address = build_reverse_index(marketplace_addresses)

    transfers_by_nft: Dict[NFTKey, List[NFTTransfer]] = defaultdict(list)
    for tx, log in scan.matches:
        if enforce_compliance and not compliance.is_compliant(log.address):
            continue
        transfer = transfer_from_log(tx, log, venue_by_address)
        transfers_by_nft[transfer.nft].append(transfer)

    for transfers in transfers_by_nft.values():
        transfers.sort(key=lambda item: (item.block_number, item.tx_hash))

    dataset = NFTDataset(
        transfers_by_nft=dict(transfers_by_nft),
        compliance=compliance,
        scan=scan,
        account_transactions={},
        marketplace_addresses=dict(marketplace_addresses),
    )
    dataset.account_transactions = collect_account_transactions(
        node, sorted(dataset.involved_accounts()), to_block=to_block
    )
    return dataset
