"""Dataset construction (Sec. III of the paper).

The ingest layer turns raw chain observables into the paper's dataset:

1. :mod:`repro.ingest.transfer_scan` -- collect every log matching the
   ERC-721 ``Transfer`` topic layout.
2. :mod:`repro.ingest.compliance` -- keep only contracts passing the
   ERC-165 ``supportsInterface(0x80ac58cd)`` check.
3. :mod:`repro.ingest.marketplace_attribution` -- attribute each transfer
   to the marketplace contract the transaction interacted with.
4. :mod:`repro.ingest.account_tx` -- collect every transaction of every
   account that appears in a transfer.
5. :mod:`repro.ingest.dataset` -- assemble the :class:`NFTDataset` the
   detection pipeline consumes.
"""

from repro.ingest.records import NFTTransfer, ERC20Payment
from repro.ingest.transfer_scan import scan_erc721_transfer_logs, TransferScanResult
from repro.ingest.compliance import check_erc721_compliance, ComplianceReport
from repro.ingest.marketplace_attribution import attribute_marketplace
from repro.ingest.account_tx import collect_account_transactions
from repro.ingest.dataset import NFTDataset, build_dataset

__all__ = [
    "NFTTransfer",
    "ERC20Payment",
    "scan_erc721_transfer_logs",
    "TransferScanResult",
    "check_erc721_compliance",
    "ComplianceReport",
    "attribute_marketplace",
    "collect_account_transactions",
    "NFTDataset",
    "build_dataset",
]
