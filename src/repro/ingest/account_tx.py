"""Collecting the standard transactions of accounts involved in transfers.

This is the paper's second pass over the node: "we query our node a
second time to retrieve all the transactions (sent and received) for
accounts that appear as the source or the recipient of a Transfer
event."  Those transactions are what the common-funder, common-exit and
profitability analyses consume.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.chain.node import EthereumNode
from repro.chain.transaction import Transaction


def collect_account_transactions(
    node: EthereumNode, accounts: Iterable[str]
) -> Dict[str, List[Transaction]]:
    """Return, for each account, every transaction it took part in.

    "Took part in" covers being the sender, the top-level recipient, a
    party of an internal ETH transfer, or a party of an ERC-20 transfer
    log -- the same notion of involvement a trace-indexing archive node
    provides.
    """
    collected: Dict[str, List[Transaction]] = {}
    for account in accounts:
        transactions = node.get_transactions_of(account)
        collected[account] = sorted(
            transactions, key=lambda tx: (tx.block_number, tx.hash)
        )
    return collected
