"""Collecting the standard transactions of accounts involved in transfers.

This is the paper's second pass over the node: "we query our node a
second time to retrieve all the transactions (sent and received) for
accounts that appear as the source or the recipient of a Transfer
event."  Those transactions are what the common-funder, common-exit and
profitability analyses consume.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.chain.node import EthereumNode
from repro.chain.transaction import Transaction


def collect_account_transactions(
    node: EthereumNode,
    accounts: Iterable[str],
    to_block: Optional[int] = None,
) -> Dict[str, List[Transaction]]:
    """Return, for each account, every transaction it took part in.

    "Took part in" covers being the sender, the top-level recipient, a
    party of an internal ETH transfer, or a party of an ERC-20 transfer
    log -- the same notion of involvement a trace-indexing archive node
    provides.

    ``to_block`` clamps each history to the chain prefix ending at that
    block (inclusive).  A prefix study would otherwise leak the future:
    the archive node happily returns funding or exit transactions that
    have not "happened yet" as of the prefix head, which no causally
    driven consumer (the streaming cursor, a venue watching live) could
    ever have seen.
    """
    collected: Dict[str, List[Transaction]] = {}
    for account in accounts:
        transactions = node.get_transactions_of(account)
        if to_block is not None:
            transactions = [
                tx for tx in transactions if tx.block_number <= to_block
            ]
        collected[account] = sorted(
            transactions, key=lambda tx: (tx.block_number, tx.hash)
        )
    return collected
