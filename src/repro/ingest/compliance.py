"""ERC-721 compliance verification.

Emitting a Transfer event with the ERC-721 topic layout does not make a
contract ERC-721 compliant.  Following the paper (and the ERC-721
standard itself, which mandates ERC-165), a contract is accepted only if
``supportsInterface(0x80ac58cd)`` returns True; contracts that answer
False, revert, or do not expose the probe at all are rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Set

from repro.chain.node import EthereumNode
from repro.contracts.base import ERC721_INTERFACE_ID


@dataclass
class ComplianceReport:
    """Outcome of the ERC-165 compliance check over a set of contracts."""

    compliant: Set[str] = field(default_factory=set)
    non_compliant: Set[str] = field(default_factory=set)

    @property
    def checked_count(self) -> int:
        """Number of contracts probed."""
        return len(self.compliant) + len(self.non_compliant)

    @property
    def compliant_count(self) -> int:
        """Number of contracts that passed the probe."""
        return len(self.compliant)

    @property
    def compliance_ratio(self) -> float:
        """Fraction of probed contracts that passed (the paper reports 96.8%)."""
        if self.checked_count == 0:
            return 0.0
        return self.compliant_count / self.checked_count

    def is_compliant(self, address: str) -> bool:
        """True if the address passed the probe."""
        return address in self.compliant


def check_erc721_compliance(
    node: EthereumNode, contract_addresses: Iterable[str]
) -> ComplianceReport:
    """Probe each contract with ``supportsInterface(ERC-721)``.

    Any failure mode -- a False answer, a revert, a missing method, or an
    address with no contract behind it -- marks the contract as
    non-compliant, matching how a real ``eth_call`` probe behaves.
    """
    report = ComplianceReport()
    for address in contract_addresses:
        try:
            supported = node.call(
                address, "supportsInterface", interface_id=ERC721_INTERFACE_ID
            )
        except Exception:  # noqa: BLE001 - any probe failure means non-compliance
            report.non_compliant.add(address)
            continue
        if supported is True:
            report.compliant.add(address)
        else:
            report.non_compliant.add(address)
    return report
