"""Attributing NFT transfers to marketplaces.

The paper: "we study in which marketplaces the NFT transfer transactions
occurred by looking at which smart contract address the transactions
interact with."  Attribution is therefore a lookup of the transaction's
``to`` address in the list of known marketplace contract addresses
(collected from Etherscan in the paper, provided by the world builder
here).
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.chain.transaction import Transaction


def attribute_marketplace(
    tx: Transaction, marketplace_addresses: Mapping[str, str]
) -> Optional[str]:
    """Return the venue name a transaction interacted with, if any.

    ``marketplace_addresses`` maps venue name to contract address.
    """
    target = tx.to
    if target is None:
        return None
    for name, address in marketplace_addresses.items():
        if address == target:
            return name
    return None


def build_reverse_index(marketplace_addresses: Mapping[str, str]) -> Mapping[str, str]:
    """Invert the name->address map into address->name for bulk attribution."""
    return {address: name for name, address in marketplace_addresses.items()}
