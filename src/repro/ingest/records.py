"""Record types produced by the ingest layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.chain.types import NFTKey, NULL_ADDRESS


@dataclass(frozen=True)
class ERC20Payment:
    """An ERC-20 transfer observed in the same transaction as an NFT move.

    The zero-volume filter treats a component as paid if either ETH or
    ERC-20 tokens moved, so these are kept alongside the ETH value.
    """

    token: str
    sender: str
    recipient: str
    amount: int


@dataclass(frozen=True)
class NFTTransfer:
    """One ERC-721 transfer, enriched with its transaction context.

    This is the unit of the paper's dataset: for every transfer event the
    authors store the source, the recipient and the transaction hash, and
    use the hash to pull the block number, gas fee and value moved.  The
    graph layer annotates edges with the tuple (t, h, s, p) taken from
    these fields.
    """

    nft: NFTKey
    sender: str
    recipient: str
    tx_hash: str
    block_number: int
    timestamp: int
    #: ETH attached to the transaction carrying the transfer (the "amount
    #: paid" of the paper's edge annotation).
    price_wei: int
    #: Gas fee paid by the transaction's sender.
    gas_fee_wei: int
    #: The contract the transaction interacted with (``s`` in the paper's
    #: edge annotation); None for plain transfers.
    interacted_contract: Optional[str] = None
    #: Venue name if the interacted contract is a known marketplace.
    marketplace: Optional[str] = None
    #: Account that signed the transaction (used for self-trade detection
    #: and for charging gas in profitability analysis).
    tx_sender: str = ""
    #: ERC-20 transfers that happened in the same transaction.
    erc20_payments: Tuple[ERC20Payment, ...] = field(default_factory=tuple)

    @property
    def is_mint(self) -> bool:
        """True if the transfer originates from the null address."""
        return self.sender == NULL_ADDRESS

    @property
    def is_burn(self) -> bool:
        """True if the transfer sends the NFT to the null address."""
        return self.recipient == NULL_ADDRESS

    @property
    def has_payment(self) -> bool:
        """True if any ETH or ERC-20 value moved in the carrying transaction."""
        if self.price_wei > 0:
            return True
        return any(payment.amount > 0 for payment in self.erc20_payments)

    @property
    def is_self_transfer(self) -> bool:
        """True if source and recipient are the same account."""
        return self.sender == self.recipient
