"""Scanning the chain for ERC-721 Transfer events.

The paper's rule: an ERC-721 transfer is a log whose topic 0 is the
``Transfer(address,address,uint256)`` signature (``ddf252ad…``) *and*
that carries four topics (source, recipient and token id are indexed).
ERC-20 transfers share the signature but carry three topics, and
ERC-1155 uses a different signature, so both are excluded by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.chain.events import Log
from repro.chain.node import EthereumNode
from repro.chain.transaction import Transaction
from repro.chain.types import NFTKey
from repro.utils.hashing import ERC721_TRANSFER_SIGNATURE


@dataclass
class TransferScanResult:
    """Raw result of the transfer scan, before the compliance filter."""

    #: (transaction, log) pairs with the ERC-721 topic layout.
    matches: List[Tuple[Transaction, Log]] = field(default_factory=list)
    #: Addresses of the contracts that emitted at least one matching log.
    emitting_contracts: Set[str] = field(default_factory=set)
    #: Matches dropped from ``matches`` by a bounded-memory consumer
    #: (the streaming cursor's ``retain_scan_matches=False`` mode) after
    #: their rows became permanent.  Counted so ``event_count`` stays the
    #: true scan total even when the raw pairs are no longer held.
    pruned_count: int = 0

    @property
    def event_count(self) -> int:
        """Number of ERC-721-shaped Transfer events found."""
        return len(self.matches) + self.pruned_count

    @property
    def contract_count(self) -> int:
        """Number of distinct emitting contracts."""
        return len(self.emitting_contracts)

    def events_by_contract(self) -> Dict[str, int]:
        """Number of matching events per emitting contract."""
        counts: Dict[str, int] = {}
        for _tx, log in self.matches:
            counts[log.address] = counts.get(log.address, 0) + 1
        return counts


def scan_erc721_transfer_logs(
    node: EthereumNode, from_block: int = 0, to_block: int | None = None
) -> TransferScanResult:
    """Collect every log with the ERC-721 Transfer topic layout.

    Mirrors the paper's first collection step, which found 52,871,559
    matching events from 26,737 contracts on the real chain.
    """
    result = TransferScanResult()
    matches = node.get_logs(
        from_block=from_block,
        to_block=to_block,
        topic0=ERC721_TRANSFER_SIGNATURE,
        topic_count=4,
    )
    for tx, log in matches:
        result.matches.append((tx, log))
        result.emitting_contracts.add(log.address)
    return result


def decode_transfer_log(log: Log) -> tuple[str, str, int]:
    """Decode an ERC-721 Transfer log into (sender, recipient, token_id)."""
    if not log.is_erc721_transfer:
        raise ValueError("log does not have the ERC-721 Transfer topic layout")
    sender = log.topics[1]
    recipient = log.topics[2]
    token_id = int(log.topics[3], 16)
    return sender, recipient, token_id


def nft_key_of(log: Log) -> NFTKey:
    """The (contract, token id) pair of an ERC-721 Transfer log."""
    _, _, token_id = decode_transfer_log(log)
    return NFTKey(contract=log.address, token_id=token_id)
