"""Command-line entry point: ``python -m repro``.

Two subcommands share the synthetic-world presets:

* ``run`` (the default) builds a world, runs the full batch pipeline and
  prints the reproduction report -- every table and figure of the
  paper's evaluation.  For back-compat the subcommand may be omitted:
  ``python -m repro --preset small`` behaves exactly as before.
* ``monitor`` follows the same world's chain block-by-block through the
  streaming monitor subsystem (:mod:`repro.stream`), printing alerts as
  NFTs are flagged and a per-tick summary -- the paper's Sec. IX
  marketplace watchdog as a command.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.analysis.report import PaperReport
from repro.core.detectors.pipeline import WashTradingPipeline
from repro.simulation.builder import build_default_world
from repro.simulation.config import SimulationConfig

PRESETS = {
    "tiny": SimulationConfig.tiny,
    "small": SimulationConfig.small,
    "default": SimulationConfig,
}

#: Recognized subcommands; a bare flag list falls through to ``run``.
COMMANDS = ("run", "monitor")


def _add_world_arguments(parser: argparse.ArgumentParser) -> None:
    """The world-selection flags shared by both subcommands."""
    parser.add_argument(
        "--preset",
        choices=sorted(PRESETS),
        default="small",
        help="size of the synthetic world to build (default: small)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the world's random seed"
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``run`` (batch reproduction) command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'A Game of NFTs: Characterizing NFT Wash Trading in the "
            "Ethereum Blockchain' on a synthetic world."
        ),
    )
    _add_world_arguments(parser)
    parser.add_argument(
        "--output", type=str, default=None, help="also write the report to this file"
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help=(
            "print only the summary line; combined with --output, suppress "
            "terminal output entirely (only the file copy is written)"
        ),
    )
    parser.add_argument(
        "--engine",
        choices=sorted(WashTradingPipeline.ENGINES),
        default="legacy",
        help=(
            "detection backend: 'legacy' runs the networkx reference "
            "implementation, 'columnar' the sharded mask-based engine "
            "(default: legacy)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "worker processes for the columnar engine; 0 or 1 runs the "
            "deterministic serial path (default: 0)"
        ),
    )
    return parser


def build_monitor_parser() -> argparse.ArgumentParser:
    """The ``monitor`` (streaming watchdog) command-line interface."""
    from repro.stream import DEFAULT_MAX_REORG_DEPTH

    parser = argparse.ArgumentParser(
        prog="repro monitor",
        description=(
            "Follow a synthetic world's chain through the streaming monitor, "
            "printing wash trading alerts as blocks arrive (Sec. IX)."
        ),
    )
    _add_world_arguments(parser)
    parser.add_argument(
        "--step-blocks",
        type=int,
        default=25,
        help="blocks ingested per monitor tick (default: 25)",
    )
    parser.add_argument(
        "--watch",
        action="append",
        default=[],
        metavar="ACCOUNT",
        help="watchlist an account address (repeatable)",
    )
    parser.add_argument(
        "--max-reorg-depth",
        type=int,
        default=DEFAULT_MAX_REORG_DEPTH,
        metavar="BLOCKS",
        help=(
            "rollback journal window, in blocks below the highest processed "
            "head; reorgs reaching below it cannot be repaired in place "
            f"(default: {DEFAULT_MAX_REORG_DEPTH})"
        ),
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="print only the final summary line, not the alert stream",
    )
    return parser


def run_batch(argv: Sequence[str]) -> int:
    """The batch reproduction (the historical flat CLI)."""
    args = build_parser().parse_args(argv)
    config = PRESETS[args.preset]()
    if args.seed is not None:
        config.seed = args.seed

    started = time.time()
    world = build_default_world(config)
    report = PaperReport(world, engine=args.engine, workers=args.workers)
    text = report.render_text()
    elapsed = time.time() - started

    if not args.quiet:
        print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        if args.quiet:
            # Quiet + output means "just the file, please": skip the
            # trailing summary as well.
            return 0

    result = report.result
    score = world.ground_truth.match_against(result.washed_nfts())
    print(
        f"\n[{args.preset}/{args.engine}] {world.chain.transaction_count()} transactions, "
        f"{result.activity_count} confirmed wash trading activities, "
        f"recall {score.recall:.1%} on planted ground truth, {elapsed:.1f}s"
    )
    return 0


def run_monitor(argv: Sequence[str]) -> int:
    """The streaming watchdog subcommand."""
    from repro.stream import AlertKind, StreamingMonitor

    args = build_monitor_parser().parse_args(argv)
    config = PRESETS[args.preset]()
    if args.seed is not None:
        config.seed = args.seed

    world = build_default_world(config)
    monitor = StreamingMonitor.for_world(
        world, watchlist=args.watch, max_reorg_depth=args.max_reorg_depth
    )

    if not args.quiet:

        @monitor.subscribe
        def _print_alert(alert) -> None:
            if alert.kind is AlertKind.REORG_DETECTED:
                print(
                    f"  [block {alert.block:>6}] REORG depth {alert.reorg_depth} "
                    f"(fork at block {alert.fork_block})"
                )
            elif alert.kind is AlertKind.ACTIVITY_RETRACTED:
                print(
                    f"  [block {alert.block:>6}] RETRACTED {alert.nft.contract}#"
                    f"{alert.nft.token_id} ({len(alert.accounts)} accounts)"
                )
            elif alert.kind is AlertKind.NFT_FLAGGED:
                print(
                    f"  [block {alert.block:>6}] FLAGGED {alert.nft.contract}#"
                    f"{alert.nft.token_id} ({len(alert.accounts)} accounts, "
                    f"latency {alert.latency_blocks} blocks)"
                )
            elif alert.kind is AlertKind.WATCHLIST_HIT:
                print(
                    f"  [block {alert.block:>6}] WATCHLIST "
                    f"{', '.join(sorted(alert.watched_accounts))} on "
                    f"{alert.nft.contract}#{alert.nft.token_id}"
                )

    started = time.time()
    snapshots = monitor.run(step_blocks=args.step_blocks)
    elapsed = time.time() - started

    result = monitor.result()
    score = world.ground_truth.match_against(result.washed_nfts())
    blocks = monitor.processed_block + 1
    rate = blocks / elapsed if elapsed > 0 else float("inf")
    print(
        f"\n[{args.preset}/monitor] {blocks} blocks in {len(snapshots)} ticks "
        f"({rate:,.0f} blocks/s), {result.activity_count} confirmed activities, "
        f"{len(monitor.flagged_nfts)} flagged NFTs, "
        f"{sum(1 for a in monitor.alerts if a.kind is AlertKind.WATCHLIST_HIT)} "
        f"watchlist hits, recall {score.recall:.1%} on planted ground truth, "
        f"{elapsed:.1f}s"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Dispatch to a subcommand; bare flags run the batch reproduction."""
    argv = list(sys.argv[1:] if argv is None else argv)
    command = "run"
    if argv and argv[0] in COMMANDS:
        command, argv = argv[0], argv[1:]
    if command == "monitor":
        return run_monitor(argv)
    return run_batch(argv)


if __name__ == "__main__":
    sys.exit(main())
