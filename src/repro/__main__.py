"""Command-line entry point: ``python -m repro``.

Two subcommands share the synthetic-world presets:

* ``run`` (the default) builds a world, runs the full batch pipeline and
  prints the reproduction report -- every table and figure of the
  paper's evaluation.  For back-compat the subcommand may be omitted:
  ``python -m repro --preset small`` behaves exactly as before.
* ``monitor`` follows the same world's chain block-by-block through the
  streaming monitor subsystem (:mod:`repro.stream`), printing alerts as
  NFTs are flagged and a per-tick summary -- the paper's Sec. IX
  marketplace watchdog as a command.
* ``serve`` runs the monitor loop and a threaded query front end
  together (:mod:`repro.serve`): an ingest thread follows the chain
  while query workers hammer the versioned wash-status API, then
  reports throughput, cache efficiency and (with ``--verify``) full
  serving parity against a batch build.  With ``--listen HOST:PORT``
  it additionally serves the wire protocol
  (:mod:`repro.serve.wire`) beside ingest and keeps serving until
  interrupted; ``SIGINT``/``SIGTERM`` trigger a graceful shutdown --
  listener closed, in-flight requests drained, ingest joined, exit 0.
* ``query`` drives a running wire server from the command line: point
  lookups, listings, rollups, the funnel, the alert log, and a live
  ``subscribe`` stream, each printed as JSON.
* ``probe`` health-checks a running wire server and exits 0/1/2
  (ok/degraded/unhealthy-or-unreachable) for scripting.
* ``top`` is a curses-free live dashboard over the ``stats`` and
  ``health`` verbs (``--once`` for a single snapshot).
* ``scenario`` replays a registered adversarial scenario
  (:mod:`repro.simulation.scenarios`) against the full live stack --
  ingest, the (optionally sharded) serving path and the wire tier
  together -- under an accelerated clock, asserting
  batch/stream/serve/wire parity and per-phase alert-latency SLOs.
  ``--list`` prints the catalogue; exit 0 = every bar held, 1 = the
  typed per-phase report shows what broke.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import time
from typing import Optional, Sequence, Tuple

from repro.analysis.report import PaperReport
from repro.core.detectors.pipeline import WashTradingPipeline
from repro.simulation.builder import build_default_world
from repro.simulation.config import SimulationConfig

PRESETS = {
    "tiny": SimulationConfig.tiny,
    "small": SimulationConfig.small,
    "default": SimulationConfig,
}

#: Recognized subcommands; a bare flag list falls through to ``run``.
COMMANDS = ("run", "monitor", "serve", "query", "probe", "top", "scenario")


def parse_endpoint(value: str) -> Tuple[str, int]:
    """Parse a ``HOST:PORT`` endpoint (``:PORT`` binds localhost)."""
    host, separator, port_text = value.rpartition(":")
    if not separator:
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {value!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"port must be an integer, got {port_text!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise argparse.ArgumentTypeError(f"port {port} out of range")
    return (host or "127.0.0.1", port)


def _add_world_arguments(parser: argparse.ArgumentParser) -> None:
    """The world-selection flags shared by both subcommands."""
    parser.add_argument(
        "--preset",
        choices=sorted(PRESETS),
        default="small",
        help="size of the synthetic world to build (default: small)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the world's random seed"
    )
    parser.add_argument(
        "--volume-match",
        action="store_true",
        help=(
            "also run the sliding-window volume-matching detector beside "
            "the paper's confirmation funnel (off by default so headline "
            "numbers match the paper's five techniques)"
        ),
    )


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """The observability flags shared by ``monitor`` and ``serve``."""
    parser.add_argument(
        "--stats-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "print a one-line metrics summary every SECONDS while the "
            "service runs (and rewrite --metrics-out at the same cadence)"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "write a Prometheus-style text exposition of every metric to "
            "PATH (rewritten per --stats-interval tick and at shutdown)"
        ),
    )
    parser.add_argument(
        "--log-json",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "append structured JSON-lines span records (one timed stage "
            "per line: ingest, refine, detect, publish, fanout...) to PATH"
        ),
    )


class _ObsSession:
    """CLI lifecycle around one registry: sinks, reporter, final dump."""

    def __init__(self, args: argparse.Namespace) -> None:
        from repro.obs import JsonLinesSink, MetricsRegistry, PeriodicReporter

        self.registry = MetricsRegistry()
        self.metrics_out: Optional[str] = getattr(args, "metrics_out", None)
        self.sink = None
        if getattr(args, "log_json", None):
            self.sink = JsonLinesSink(args.log_json)
            self.registry.add_span_sink(self.sink)
        self.reporter = None
        if getattr(args, "stats_interval", None):
            self.reporter = PeriodicReporter(
                self.registry,
                interval=args.stats_interval,
                metrics_out=self.metrics_out,
            ).start()

    def finish(self) -> None:
        """Final stats line (if periodic), exposition dump, sink close."""
        if self.reporter is not None:
            self.reporter.stop(final_report=True)
        elif self.metrics_out:
            from repro.obs import write_prometheus

            try:
                write_prometheus(self.registry, self.metrics_out)
            except OSError as error:
                print(f"cannot write {self.metrics_out}: {error}", file=sys.stderr)
        if self.sink is not None:
            self.sink.close()


def _enabled_methods(args: argparse.Namespace):
    """The detection-method set a parsed command line asks for.

    ``None`` keeps each subsystem's default (the paper's five
    techniques); ``--volume-match`` adds the opt-in detector on top.
    """
    if not getattr(args, "volume_match", False):
        return None
    from repro.core.activity import DetectionMethod

    return frozenset(DetectionMethod.paper_methods()) | {
        DetectionMethod.VOLUME_MATCH
    }


def build_parser() -> argparse.ArgumentParser:
    """The ``run`` (batch reproduction) command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'A Game of NFTs: Characterizing NFT Wash Trading in the "
            "Ethereum Blockchain' on a synthetic world."
        ),
    )
    _add_world_arguments(parser)
    parser.add_argument(
        "--output", type=str, default=None, help="also write the report to this file"
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help=(
            "print only the summary line; combined with --output, suppress "
            "terminal output entirely (only the file copy is written)"
        ),
    )
    parser.add_argument(
        "--engine",
        choices=sorted(WashTradingPipeline.ENGINES),
        default="legacy",
        help=(
            "detection backend: 'legacy' runs the networkx reference "
            "implementation, 'columnar' the sharded mask-based engine, "
            "'kernel' the numpy/CSR tier with the optional compiled "
            "Tarjan (default: legacy)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "worker processes for the columnar engine; 0 or 1 runs the "
            "deterministic serial path (default: 0)"
        ),
    )
    return parser


def build_monitor_parser() -> argparse.ArgumentParser:
    """The ``monitor`` (streaming watchdog) command-line interface."""
    from repro.stream import DEFAULT_MAX_REORG_DEPTH

    parser = argparse.ArgumentParser(
        prog="repro monitor",
        description=(
            "Follow a synthetic world's chain through the streaming monitor, "
            "printing wash trading alerts as blocks arrive (Sec. IX)."
        ),
    )
    _add_world_arguments(parser)
    parser.add_argument(
        "--step-blocks",
        type=int,
        default=25,
        help="blocks ingested per monitor tick (default: 25)",
    )
    parser.add_argument(
        "--watch",
        action="append",
        default=[],
        metavar="ACCOUNT",
        help="watchlist an account address (repeatable)",
    )
    parser.add_argument(
        "--max-reorg-depth",
        type=int,
        default=DEFAULT_MAX_REORG_DEPTH,
        metavar="BLOCKS",
        help=(
            "rollback journal window, in blocks below the highest processed "
            "head; reorgs reaching below it cannot be repaired in place "
            f"(default: {DEFAULT_MAX_REORG_DEPTH})"
        ),
    )
    parser.add_argument(
        "--bounded-memory",
        action="store_true",
        help=(
            "drop raw scan matches once their blocks leave the rollback "
            "journal (retention becomes O(journal) instead of O(chain); "
            "detection state is unaffected)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "worker processes for per-tick dirty-token refinement; 0 or 1 "
            "runs the deterministic serial path (default: 0)"
        ),
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="print only the final summary line, not the alert stream",
    )
    _add_obs_arguments(parser)
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    """The ``serve`` (query service) command-line interface."""
    from repro.stream import DEFAULT_MAX_REORG_DEPTH

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Run the streaming monitor and a threaded wash-status query "
            "front end together over a synthetic world: ingest follows the "
            "chain while query workers exercise the versioned serving API."
        ),
    )
    _add_world_arguments(parser)
    parser.add_argument(
        "--step-blocks",
        type=int,
        default=25,
        help="blocks ingested per monitor tick (default: 25)",
    )
    parser.add_argument(
        "--query-threads",
        type=int,
        default=4,
        help="concurrent query worker threads (default: 4)",
    )
    parser.add_argument(
        "--max-reorg-depth",
        type=int,
        default=DEFAULT_MAX_REORG_DEPTH,
        metavar="BLOCKS",
        help="rollback journal window passed to the monitor",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "worker processes for per-tick dirty-token refinement; 0 or 1 "
            "runs the deterministic serial path (default: 0)"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "partition the read model into N token-range shards behind a "
            "scatter-gather router (default: 1, the single index)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the dirty-token-keyed aggregate cache (recompute "
        "every aggregate per query)",
    )
    parser.add_argument(
        "--bounded-memory",
        action="store_true",
        help="run the ingest cursor with O(journal) scan-match retention",
    )
    parser.add_argument(
        "--watch",
        action="append",
        default=[],
        metavar="ACCOUNT",
        help="watchlist an account address (repeatable)",
    )
    parser.add_argument(
        "--listen",
        type=parse_endpoint,
        default=None,
        metavar="HOST:PORT",
        help=(
            "also serve the wire protocol on this TCP endpoint (port 0 "
            "picks a free port, printed on startup) and keep serving "
            "after ingest completes until SIGINT/SIGTERM"
        ),
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help=(
            "after ingest, check every query answer against a fresh batch "
            "pipeline build -- and, with --listen, every wire answer "
            "against the in-process service through the socket (exit 2 "
            "on any mismatch)"
        ),
    )
    parser.add_argument(
        "--expect-confirmed",
        action="store_true",
        help="exit 1 unless the final confirmed activity set is non-empty",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="print only the final summary line",
    )
    slo = parser.add_argument_group(
        "service-level objectives",
        "evaluated once per tick; a blown error budget emits a typed "
        "SLO_BREACH alert on the wire and flips the health verb to "
        "'degraded'",
    )
    slo.add_argument(
        "--slo-latency-p95",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "objective: p95 end-to-end alert latency (block-seen to "
            "socket-write) stays under SECONDS"
        ),
    )
    slo.add_argument(
        "--slo-error-rate",
        type=float,
        default=None,
        metavar="RATIO",
        help="objective: wire error rate stays under RATIO (e.g. 0.01)",
    )
    slo.add_argument(
        "--slo-window",
        type=int,
        default=32,
        metavar="TICKS",
        help="rolling evaluation window, in ticks (default: 32)",
    )
    slo.add_argument(
        "--slo-budget",
        type=float,
        default=0.1,
        metavar="FRACTION",
        help=(
            "error budget: fraction of window evaluations allowed to "
            "miss before the objective breaches (default: 0.1)"
        ),
    )
    _add_obs_arguments(parser)
    return parser


def build_probe_parser() -> argparse.ArgumentParser:
    """The ``probe`` (scriptable health check) command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro probe",
        description=(
            "Health-check a running wire server: print the health verb's "
            "JSON and exit 0 (ok), 1 (degraded) or 2 (unhealthy or "
            "unreachable) -- suitable for liveness/readiness scripting."
        ),
    )
    parser.add_argument(
        "endpoint",
        type=parse_endpoint,
        metavar="HOST:PORT",
        help="wire server endpoint (':PORT' probes localhost)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="socket timeout in seconds (default: 5)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the JSON payload; communicate via exit code only",
    )
    return parser


def run_probe(argv: Sequence[str]) -> int:
    """One health round-trip, mapped onto an exit code."""
    from repro.serve.wire import WireClient

    args = build_probe_parser().parse_args(argv)
    host, port = args.endpoint
    try:
        with WireClient(host, port, timeout=args.timeout) as client:
            health = client.health()
    except Exception as error:  # noqa: BLE001 - any failure means "down"
        if not args.quiet:
            print(
                json.dumps(
                    {"status": "unreachable", "error": str(error)},
                    sort_keys=True,
                )
            )
        print(f"probe: {host}:{port} unreachable: {error}", file=sys.stderr)
        return 2
    if not args.quiet:
        print(json.dumps(health, indent=2, sort_keys=True))
    status = health.get("status")
    if status == "ok":
        return 0
    if status == "degraded":
        return 1
    return 2


def build_top_parser() -> argparse.ArgumentParser:
    """The ``top`` (live dashboard) command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro top",
        description=(
            "Live terminal dashboard for a running wire server: polls the "
            "stats and health verbs and renders ingest progress, tick and "
            "alert latency, wire pressure and SLO budgets (curses-free; "
            "plain ANSI refresh)."
        ),
    )
    parser.add_argument(
        "endpoint",
        type=parse_endpoint,
        metavar="HOST:PORT",
        help="wire server endpoint (':PORT' watches localhost)",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh period (default: 2)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="render a single snapshot and exit (no screen clearing)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the raw stats+health dicts as one JSON object per poll",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="socket timeout in seconds (default: 5)",
    )
    return parser


def run_top(argv: Sequence[str]) -> int:
    """Poll stats+health and redraw the dashboard until interrupted."""
    from repro.obs import render_dashboard
    from repro.serve.wire import WireClient

    args = build_top_parser().parse_args(argv)
    host, port = args.endpoint
    endpoint = f"{host}:{port}"
    try:
        while True:
            # One short-lived connection per poll: survives server
            # restarts between refreshes and needs no keepalive logic.
            try:
                with WireClient(host, port, timeout=args.timeout) as client:
                    stats = client.stats()
                    health = client.health()
            except Exception as error:  # noqa: BLE001
                if args.once:
                    print(f"top: {endpoint} unreachable: {error}", file=sys.stderr)
                    return 2
                if not args.as_json:
                    print("\x1b[2J\x1b[H", end="")
                print(f"repro top — {endpoint} — UNREACHABLE ({error})", flush=True)
                time.sleep(args.interval)
                continue
            if args.as_json:
                print(
                    json.dumps(
                        {"stats": stats, "health": health}, sort_keys=True
                    ),
                    flush=True,
                )
            else:
                screen = render_dashboard(stats, health, endpoint=endpoint)
                if not args.once:
                    print("\x1b[2J\x1b[H", end="")
                print(screen, flush=True)
            if args.once:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def build_scenario_parser() -> argparse.ArgumentParser:
    """The ``scenario`` (adversarial replay) command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro scenario",
        description=(
            "Replay a registered adversarial scenario against the full "
            "live stack (ingest + sharded serving + wire) under an "
            "accelerated clock, asserting batch/stream/serve/wire parity "
            "and per-phase alert-latency SLOs.  Exit 0 when every bar "
            "holds, 1 with the typed per-phase report otherwise."
        ),
    )
    parser.add_argument(
        "name",
        nargs="?",
        metavar="NAME",
        help="registered scenario to run (see --list)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_scenarios",
        help="list the registered scenario catalogue and exit",
    )
    parser.add_argument(
        "--speed",
        type=float,
        default=None,
        metavar="K",
        help=(
            "clock acceleration: K simulated seconds per wall second "
            "(default: the spec's own; 0 replays unpaced)"
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="world seed override (default: the spec's, then the preset's)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="number of serve-index shards (default: 1)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="refinement worker threads, 0 = inline (default: 0)",
    )
    parser.add_argument(
        "--no-wire",
        action="store_true",
        help="skip the wire tier (no server, no wire parity check)",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the end-of-run parity battery",
    )
    parser.add_argument(
        "--no-slo",
        action="store_true",
        help=(
            "do not arm per-phase SLO engines (useful for byte-identity "
            "studies; SLO evaluations read wall-clock latencies)"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the final report as one JSON object instead of text",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress progress lines; print only the final report",
    )
    return parser


def run_scenario_command(argv: Sequence[str]) -> int:
    """Resolve, replay and judge one scenario from the registry."""
    from repro.simulation.scenarios import (
        RunOptions,
        ScenarioFailure,
        get_scenario,
        run_scenario,
        scenario_names,
    )

    parser = build_scenario_parser()
    args = parser.parse_args(argv)

    if args.list_scenarios:
        for name in scenario_names():
            spec = get_scenario(name)
            tags = f" [{', '.join(spec.tags)}]" if spec.tags else ""
            print(f"{name}{tags}")
            print(f"    {spec.description}")
        return 0

    if args.name is None:
        parser.error("a scenario NAME is required (or use --list)")
    try:
        spec = get_scenario(args.name)
    except ValueError as error:
        print(f"scenario: {error}", file=sys.stderr)
        return 2

    progress = None if args.quiet else lambda line: print(line, flush=True)
    options = RunOptions(
        speed=args.speed,
        seed=args.seed,
        shards=args.shards,
        workers=args.workers,
        wire=not args.no_wire,
        evaluate_slos=not args.no_slo,
        verify_parity=not args.no_verify,
        progress=None if args.as_json else progress,
        raise_on_failure=False,
    )
    try:
        report = run_scenario(spec, options)
    except ScenarioFailure as failure:  # defensive; raise_on_failure=False
        report = failure.report
    if args.as_json:
        print(json.dumps(report.as_dict(), sort_keys=True))
    elif args.quiet:
        print(report.render(), flush=True)
    if report.ok:
        return 0
    for line in report.failures():
        print(f"scenario: {line}", file=sys.stderr)
    return 1


def build_query_parser() -> argparse.ArgumentParser:
    """The ``query`` (wire client) command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro query",
        description=(
            "Query a running wash-status wire server (started with "
            "'repro serve --listen HOST:PORT'); answers print as JSON."
        ),
    )
    parser.add_argument(
        "--connect",
        type=parse_endpoint,
        required=True,
        metavar="HOST:PORT",
        help="wire server endpoint to connect to",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        help="socket timeout in seconds (default: 10)",
    )
    verbs = parser.add_subparsers(dest="verb", required=True, metavar="VERB")
    verbs.add_parser("ping", help="liveness + protocol version")
    verbs.add_parser("version", help="pin and print the current version")
    verbs.add_parser("stats", help="server connection/request counters")
    verbs.add_parser("funnel", help="live refinement-funnel statistics")
    verbs.add_parser("collections", help="every contract known to the store")
    verbs.add_parser("venues", help="venues with confirmed activity")
    status = verbs.add_parser("token-status", help="wash status of one NFT")
    status.add_argument("contract")
    status.add_argument("token_id", type=int)
    profile = verbs.add_parser(
        "account-profile", help="involvement summary of one account"
    )
    profile.add_argument("address")
    listing = verbs.add_parser(
        "list", help="filtered listing of confirmed activities"
    )
    listing.add_argument("--method", default=None, help="detection method filter")
    listing.add_argument("--venue", default=None, help="dominant-venue filter")
    listing.add_argument("--since-block", type=int, default=None)
    listing.add_argument("--limit", type=int, default=20)
    collection = verbs.add_parser(
        "collection", help="aggregate rollup of one contract"
    )
    collection.add_argument("contract")
    marketplace = verbs.add_parser(
        "marketplace", help="aggregate rollup of one venue"
    )
    marketplace.add_argument("venue")
    alerts = verbs.add_parser("alerts", help="one-shot alert-log replay")
    alerts.add_argument("--since-seq", type=int, default=-1)
    alerts.add_argument("--limit", type=int, default=None)
    subscribe = verbs.add_parser(
        "subscribe", help="stream alerts live (replay + push), one JSON per line"
    )
    subscribe.add_argument("--since-seq", type=int, default=-1)
    subscribe.add_argument(
        "--max-alerts",
        type=int,
        default=None,
        help="exit after this many alerts (default: stream forever)",
    )
    subscribe.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        help="exit after this many seconds without an alert",
    )
    return parser


def run_query(argv: Sequence[str]) -> int:
    """The wire-client subcommand: one verb, one JSON answer."""
    from repro.serve.wire import WireClient, WireRequestError
    from repro.serve.wire import codec

    args = build_query_parser().parse_args(argv)
    host, port = args.connect
    client = WireClient(host, port, timeout=args.timeout)
    try:
        client.connect()
    except OSError as error:
        print(f"cannot connect to {host}:{port}: {error}", file=sys.stderr)
        return 1

    try:
        if args.verb == "subscribe":
            stream = client.subscribe(args.since_seq)
            served = 0
            idle = 0.0
            while args.max_alerts is None or served < args.max_alerts:
                alert = stream.next(timeout=0.2)
                if alert is None:
                    if stream.closed.is_set():
                        break
                    idle += 0.2
                    if args.idle_timeout is not None and idle >= args.idle_timeout:
                        break
                    continue
                idle = 0.0
                print(
                    json.dumps(codec.encode_alert(alert), sort_keys=True),
                    flush=True,
                )
                served += 1
            if stream.overflow_seq is not None:
                print(
                    f"overflowed; resume with --since-seq {stream.overflow_seq}",
                    file=sys.stderr,
                )
                return 3
            return 0
        if args.verb == "ping":
            result = client.ping()
        elif args.verb == "version":
            result = client.version()
        elif args.verb == "stats":
            result = client.stats()
        elif args.verb == "funnel":
            result = client.funnel_stats()
        elif args.verb == "collections":
            result = {"collections": client.collections()}
        elif args.verb == "venues":
            result = {"venues": client.venues()}
        elif args.verb == "token-status":
            result = client.token_status(args.contract, args.token_id)
        elif args.verb == "account-profile":
            result = client.account_profile(args.address)
        elif args.verb == "list":
            result = client.list_confirmed(
                method=args.method,
                venue=args.venue,
                since_block=args.since_block,
                limit=args.limit,
            )
        elif args.verb == "collection":
            result = client.collection_rollup(args.contract)
        elif args.verb == "marketplace":
            result = client.marketplace_rollup(args.venue)
        elif args.verb == "alerts":
            result = client.alerts(since_seq=args.since_seq, limit=args.limit)
        else:  # pragma: no cover - argparse enforces the verb set
            raise AssertionError(args.verb)
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    except WireRequestError as error:
        print(f"server error [{error.code}]: {error.message}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"connection failed: {error}", file=sys.stderr)
        return 1
    finally:
        client.close()


def run_batch(argv: Sequence[str]) -> int:
    """The batch reproduction (the historical flat CLI)."""
    args = build_parser().parse_args(argv)
    config = PRESETS[args.preset]()
    if args.seed is not None:
        config.seed = args.seed

    started = time.time()
    world = build_default_world(config)
    report = PaperReport(
        world,
        engine=args.engine,
        workers=args.workers,
        enabled_methods=_enabled_methods(args),
    )
    text = report.render_text()
    elapsed = time.time() - started

    if not args.quiet:
        print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        if args.quiet:
            # Quiet + output means "just the file, please": skip the
            # trailing summary as well.
            return 0

    result = report.result
    score = world.ground_truth.match_against(result.washed_nfts())
    print(
        f"\n[{args.preset}/{args.engine}] {world.chain.transaction_count()} transactions, "
        f"{result.activity_count} confirmed wash trading activities, "
        f"recall {score.recall:.1%} on planted ground truth, {elapsed:.1f}s"
    )
    return 0


def run_monitor(argv: Sequence[str]) -> int:
    """The streaming watchdog subcommand."""
    from repro.stream import AlertKind, StreamingMonitor

    args = build_monitor_parser().parse_args(argv)
    config = PRESETS[args.preset]()
    if args.seed is not None:
        config.seed = args.seed

    obs = _ObsSession(args)
    world = build_default_world(config)
    monitor = StreamingMonitor.for_world(
        world,
        watchlist=args.watch,
        max_reorg_depth=args.max_reorg_depth,
        retain_scan_matches=not args.bounded_memory,
        enabled_methods=_enabled_methods(args),
        registry=obs.registry,
        workers=args.workers,
    )

    if not args.quiet:

        @monitor.subscribe
        def _print_alert(alert) -> None:
            if alert.kind is AlertKind.REORG_DETECTED:
                print(
                    f"  [block {alert.block:>6}] REORG depth {alert.reorg_depth} "
                    f"(fork at block {alert.fork_block})"
                )
            elif alert.kind is AlertKind.ACTIVITY_RETRACTED:
                print(
                    f"  [block {alert.block:>6}] RETRACTED {alert.nft.contract}#"
                    f"{alert.nft.token_id} ({len(alert.accounts)} accounts)"
                )
            elif alert.kind is AlertKind.NFT_FLAGGED:
                print(
                    f"  [block {alert.block:>6}] FLAGGED {alert.nft.contract}#"
                    f"{alert.nft.token_id} ({len(alert.accounts)} accounts, "
                    f"latency {alert.latency_blocks} blocks)"
                )
            elif alert.kind is AlertKind.WATCHLIST_HIT:
                print(
                    f"  [block {alert.block:>6}] WATCHLIST "
                    f"{', '.join(sorted(alert.watched_accounts))} on "
                    f"{alert.nft.contract}#{alert.nft.token_id}"
                )

    started = time.time()
    snapshots = monitor.run(step_blocks=args.step_blocks)
    elapsed = time.time() - started
    monitor.close()
    obs.finish()

    result = monitor.result()
    score = world.ground_truth.match_against(result.washed_nfts())
    blocks = monitor.processed_block + 1
    rate = blocks / elapsed if elapsed > 0 else float("inf")
    print(
        f"\n[{args.preset}/monitor] {blocks} blocks in {len(snapshots)} ticks "
        f"({rate:,.0f} blocks/s), {result.activity_count} confirmed activities, "
        f"{len(monitor.flagged_nfts)} flagged NFTs, "
        f"{sum(1 for a in monitor.alerts if a.kind is AlertKind.WATCHLIST_HIT)} "
        f"watchlist hits, recall {score.recall:.1%} on planted ground truth, "
        f"{elapsed:.1f}s"
    )
    return 0


def run_serve(argv: Sequence[str]) -> int:
    """The query-service subcommand: threaded ingest + query workers."""
    from repro.serve import ServeService, serving_parity_mismatches
    from repro.serve.load import LoadGenerator
    from repro.core.detectors.pipeline import WashTradingPipeline
    from repro.ingest.dataset import build_dataset
    from repro.stream import StreamingMonitor

    args = build_serve_parser().parse_args(argv)
    config = PRESETS[args.preset]()
    if args.seed is not None:
        config.seed = args.seed

    # SIGINT/SIGTERM ask for a graceful exit: the flag is checked by the
    # wait loops below, which then drain the wire server and join ingest
    # instead of dying mid-tick with a KeyboardInterrupt traceback.
    # Installed before any heavy work (even the world build), so a
    # supervisor that signals early still gets a clean exit.
    interrupted = threading.Event()
    previous_handlers = {}
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous_handlers[signum] = signal.signal(
                signum, lambda *_: interrupted.set()
            )

    obs = _ObsSession(args)
    try:
        world = build_default_world(config)
        monitor = StreamingMonitor.for_world(
            world,
            watchlist=args.watch,
            max_reorg_depth=args.max_reorg_depth,
            retain_scan_matches=not args.bounded_memory,
            enabled_methods=_enabled_methods(args),
            registry=obs.registry,
            workers=args.workers,
        )
        service = ServeService(
            monitor,
            use_cache=not args.no_cache,
            registry=obs.registry,
            shards=args.shards,
        )
        query = service.query

        objectives = []
        if args.slo_latency_p95 is not None:
            from repro.obs import latency_objective

            objectives.append(
                latency_objective(
                    args.slo_latency_p95,
                    window=args.slo_window,
                    budget=args.slo_budget,
                )
            )
        if args.slo_error_rate is not None:
            from repro.obs import wire_error_objective

            objectives.append(
                wire_error_objective(
                    args.slo_error_rate,
                    window=args.slo_window,
                    budget=args.slo_budget,
                )
            )
        if objectives:
            from repro.obs import SLOEngine

            service.attach_slo(SLOEngine(obs.registry, objectives))

        if args.listen is not None:
            server = service.serve_wire(*args.listen)
            wire_host, wire_port = server.address
            print(f"wire: listening on {wire_host}:{wire_port}", flush=True)

        # The workers run the same mixed workload the load benchmark
        # measures (repro.serve.load), stopping when ingest is done.
        generators = [
            LoadGenerator(query, seed=1000 + slot, stop=service.done)
            for slot in range(max(args.query_threads, 0))
        ]

        started = time.time()
        service.start_background(step_blocks=args.step_blocks)
        for generator in generators:
            generator.thread.start()
        while not service.done.wait(0.1):
            if interrupted.is_set():
                service._stop.set()
                break
        try:
            service.join()
        except Exception as error:
            for generator in generators:
                generator.thread.join()
            # Close only the wire side here: service.shutdown() would
            # re-raise the stored ingest error and swallow the message.
            if service.wire is not None:
                service.wire.close()
            print(f"ingest failed: {error!r}", file=sys.stderr)
            return 2
        for generator in generators:
            generator.thread.join()
        elapsed = time.time() - started

        final = query.version()
        result = service.result()
        score = world.ground_truth.match_against(result.washed_nfts())
        total_queries = sum(generator.queries for generator in generators)
        qps = total_queries / elapsed if elapsed > 0 else float("inf")
        ticks = service.tick_latency_snapshot()
        status = 0

        worker_errors = [
            error for generator in generators for error in generator.errors
        ]
        if worker_errors:
            print(f"query workers raised: {worker_errors[:3]}", file=sys.stderr)
            status = 2
        # The serve index applies ticks as an (isolated) monitor subscriber;
        # a failure there leaves the read model stale, so it is a serving
        # error even though the monitor itself kept going.
        subscriber_errors = (
            list(service.monitor.subscriber_errors)
            + list(service.index.subscriber_errors)
        )
        subscriber_error_total = (
            service.monitor.subscriber_errors.total
            + service.index.subscriber_errors.total
        )
        if subscriber_errors:
            print(
                f"subscriber failures during ingest "
                f"({subscriber_error_total} total, last "
                f"{len(subscriber_errors)} retained): {subscriber_errors[:3]}",
                file=sys.stderr,
            )
            status = 2
        if args.verify and interrupted.is_set():
            # Interrupted before ingest finished: the serve state is a
            # legitimate partial prefix, not a full-head build, so the
            # parity comparison would be meaningless -- and the shutdown
            # contract is a clean exit 0.
            print(
                "interrupted before ingest completed; skipping --verify",
                file=sys.stderr,
            )
        if args.verify and not interrupted.is_set():
            batch = WashTradingPipeline(
                labels=world.labels,
                is_contract=world.is_contract,
                engine="columnar",
                enabled_methods=_enabled_methods(args),
            ).run(build_dataset(world.node, world.marketplace_addresses))
            mismatches = serving_parity_mismatches(query, batch)
            if args.shards > 1:
                # The partitioned index additionally proves each shard
                # holds exactly its routed slice of the batch answer.
                from repro.serve import sharded_parity_mismatches

                mismatches.extend(
                    sharded_parity_mismatches(service.index, batch)
                )
            if mismatches:
                for mismatch in mismatches:
                    print(f"parity mismatch: {mismatch}", file=sys.stderr)
                status = 2
            elif not args.quiet:
                print(
                    "serving parity vs batch build: OK"
                    + (
                        f" (globally and across {args.shards} shards)"
                        if args.shards > 1
                        else ""
                    )
                )
            if args.listen is not None:
                # The same bar through the socket: every wire answer must
                # equal the in-process answer at the pinned version.
                from repro.serve.wire import WireClient, wire_parity_mismatches

                with WireClient(*service.wire.address) as wire_client:
                    wire_mismatches = wire_parity_mismatches(
                        wire_client, query, service.wire.lookup_version
                    )
                if wire_mismatches:
                    for mismatch in wire_mismatches:
                        print(f"wire parity mismatch: {mismatch}", file=sys.stderr)
                    status = 2
                elif not args.quiet:
                    print("wire parity vs in-process service: OK")
        if (
            args.expect_confirmed
            and not interrupted.is_set()
            and final.confirmed_activity_count == 0
        ):
            print("expected a non-empty confirmed set", file=sys.stderr)
            status = max(status, 1)

        cache_stats = service.cache_stats()
        if not args.quiet and cache_stats is not None:
            shard_note = f" across {args.shards} shards" if args.shards > 1 else ""
            print(
                f"aggregate cache{shard_note}: {cache_stats.hits} hits / "
                f"{cache_stats.lookups} lookups ({cache_stats.hit_rate:.1%}), "
                f"{cache_stats.invalidated} invalidated"
            )
        tick_line = (
            f"tick p50 {ticks.p50 * 1e3:.1f}ms "
            f"p95 {ticks.p95 * 1e3:.1f}ms "
            f"max {ticks.max * 1e3:.1f}ms"
            if ticks.count
            else "no ticks"
        )
        print(
            f"\n[{args.preset}/serve] {final.version} versions to block "
            f"{final.block}, {final.confirmed_activity_count} confirmed "
            f"activities on {len(final.flagged_nfts)} NFTs, "
            f"{total_queries} queries from {args.query_threads} threads "
            f"({qps:,.0f} q/s), {tick_line}, recall {score.recall:.1%}, "
            f"{elapsed:.1f}s",
            flush=True,
        )
        if args.listen is not None and not interrupted.is_set():
            # Ingest is done but the wire stays up: serve until asked to
            # stop, then drain and exit cleanly.
            if not args.quiet:
                print("wire: serving until interrupted", flush=True)
            interrupted.wait()
        service.shutdown()
        if args.listen is not None and not args.quiet:
            print("wire: shut down cleanly", flush=True)
        return status
    finally:
        obs.finish()
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Dispatch to a subcommand; bare flags run the batch reproduction."""
    argv = list(sys.argv[1:] if argv is None else argv)
    command = "run"
    if argv and argv[0] in COMMANDS:
        command, argv = argv[0], argv[1:]
    if command == "monitor":
        return run_monitor(argv)
    if command == "serve":
        return run_serve(argv)
    if command == "query":
        return run_query(argv)
    if command == "probe":
        return run_probe(argv)
    if command == "top":
        return run_top(argv)
    if command == "scenario":
        return run_scenario_command(argv)
    return run_batch(argv)


if __name__ == "__main__":
    sys.exit(main())
