"""Command-line entry point: ``python -m repro``.

Builds a synthetic world, runs the full wash trading pipeline and prints
the reproduction report (every table and figure of the paper's
evaluation).  Useful as a one-command smoke test of the whole system.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.analysis.report import PaperReport
from repro.core.detectors.pipeline import WashTradingPipeline
from repro.simulation.builder import build_default_world
from repro.simulation.config import SimulationConfig

PRESETS = {
    "tiny": SimulationConfig.tiny,
    "small": SimulationConfig.small,
    "default": SimulationConfig,
}


def build_parser() -> argparse.ArgumentParser:
    """The command-line interface definition."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'A Game of NFTs: Characterizing NFT Wash Trading in the "
            "Ethereum Blockchain' on a synthetic world."
        ),
    )
    parser.add_argument(
        "--preset",
        choices=sorted(PRESETS),
        default="small",
        help="size of the synthetic world to build (default: small)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the world's random seed"
    )
    parser.add_argument(
        "--output", type=str, default=None, help="also write the report to this file"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print only the summary line"
    )
    parser.add_argument(
        "--engine",
        choices=sorted(WashTradingPipeline.ENGINES),
        default="legacy",
        help=(
            "detection backend: 'legacy' runs the networkx reference "
            "implementation, 'columnar' the sharded mask-based engine "
            "(default: legacy)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "worker processes for the columnar engine; 0 or 1 runs the "
            "deterministic serial path (default: 0)"
        ),
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the reproduction and return a process exit code."""
    args = build_parser().parse_args(argv)
    config = PRESETS[args.preset]()
    if args.seed is not None:
        config.seed = args.seed

    started = time.time()
    world = build_default_world(config)
    report = PaperReport(world, engine=args.engine, workers=args.workers)
    text = report.render_text()
    elapsed = time.time() - started

    if not args.quiet:
        print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")

    result = report.result
    score = world.ground_truth.match_against(result.washed_nfts())
    print(
        f"\n[{args.preset}/{args.engine}] {world.chain.transaction_count()} transactions, "
        f"{result.activity_count} confirmed wash trading activities, "
        f"recall {score.recall:.1%} on planted ground truth, {elapsed:.1f}s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
