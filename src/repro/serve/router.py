"""Scatter-gather query routing over a partitioned serving index.

:class:`ShardRouter` presents the exact :class:`~repro.serve.query.QueryService`
surface over a :class:`~repro.serve.sharding.ShardedServeIndex`.  Point
lookups need no routing logic at all -- the :class:`GlobalVersion` they
resolve hash-routes per key -- and listings ride the version's lazy
``(seq, key)`` k-way merge.  The aggregates are where sharding earns
its keep: each is decomposed into an associative per-shard *partial*,
cached in that shard's own :class:`~repro.serve.cache.AggregateCache`,
and merged at query time.  Because each shard's cache is invalidated
only by its own slice of the dirty set, a tick touching tokens in one
shard leaves every other shard's partials warm -- the recompute cost of
an aggregate scales with the *touched* fraction of the world, not with
the world.  On top of the partial caches sits the coordinator's
merged-result memo (:attr:`ShardedServeIndex.router_cache`), so a warm
aggregate costs a single lookup, exactly like the single-index cache;
the gather-and-merge runs only when the tick's dirty union actually
touched the queried scope.

Consistency: unpinned aggregates gather each shard's partial with the
same freshness contract as the single-cache design (the shard version
is resolved inside the compute closure, after the cache captures its
generations, so a racing tick can only discard a computed value, never
poison the cache).  A cached partial may legitimately carry an older
computed-at version -- nothing invalidated it since, exactly like a
single-index cached answer -- so torn reads are detected not by
comparing partial versions but by the coordinator's publication
seqlock: the gather is accepted only if
:attr:`ShardedServeIndex.publish_seq` was stable and even across it,
i.e. no flip+invalidate overlapped the reads.  On the rare racing
gather the router falls back to an uncached compute against one pinned
:class:`GlobalVersion` -- answers are therefore always computed from a
single globally consistent snapshot.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Optional, Tuple

from repro.chain.types import NFTKey
from repro.engine.refine import STAGE_NAMES, StageAccumulator
from repro.engine.views import tokens_per_collection
from repro.serve.cache import FUNNEL_SCOPE, collection_scope, venue_scope
from repro.serve.funnel import FunnelPartial
from repro.serve.model import (
    CollectionRollup,
    FunnelSnapshot,
    MarketplaceRollup,
    ServeVersion,
)
from repro.serve.query import QueryService
from repro.serve.sharding import GlobalVersion, ShardedServeIndex, shard_of


@dataclass(frozen=True)
class CollectionPartial:
    """One shard's contribution to a collection rollup.

    Counts that partition across shards (tokens, activities, volume,
    retractions) are carried as numbers; identities that can span
    shards (accounts) or must be deduplicated (flagged NFTs) are
    carried as frozensets so the gather step can union-merge them
    without double counting.
    """

    version: int
    token_count: int
    flagged: FrozenSet[NFTKey]
    activity_count: int
    volume_wei: int
    accounts: FrozenSet[str]
    method_counts: Tuple[Tuple[object, int], ...]
    retraction_count: int


@dataclass(frozen=True)
class MarketplacePartial:
    """One shard's contribution to a marketplace rollup."""

    version: int
    flagged: FrozenSet[NFTKey]
    activity_count: int
    volume_wei: int
    accounts: FrozenSet[str]
    method_counts: Tuple[Tuple[object, int], ...]


def funnel_partial(
    version: ServeVersion, shard_index: Optional[int] = None
) -> FunnelPartial:
    """One shard version's funnel partial.

    Shard versions carry their differentially maintained partial (see
    :mod:`repro.serve.funnel`) -- returning it is O(1) and exact.  The
    fold over ``token_states`` remains as the fallback for versions
    published without a maintainer (it is also the parity oracle the
    tests compare the maintained partial against).
    """
    if version.funnel is not None:
        return version.funnel
    merged = [StageAccumulator(name=name) for name in STAGE_NAMES]
    candidate_count = 0
    for state in version.token_states.values():
        candidate_count += len(state.candidates)
        for accumulator, stage in zip(merged, state.stages):
            accumulator.merge(stage)
    for accumulator in merged:
        accumulator.to_stage()  # folds the lazy id buffer: read-only after
    return FunnelPartial(
        version=version.version,
        stages=tuple(merged),
        candidate_count=candidate_count,
        confirmed_count=version.confirmed_activity_count,
    )


def collection_partial(version: ServeVersion, contract: str) -> CollectionPartial:
    """One shard version's slice of a collection rollup."""
    records = [
        record for record in version.confirmed if record.nft.contract == contract
    ]
    methods: Counter = Counter()
    accounts = set()
    for record in records:
        methods.update(record.methods)
        accounts.update(record.accounts)
    return CollectionPartial(
        version=version.version,
        token_count=tokens_per_collection(version.token_order).get(contract, 0),
        flagged=frozenset(record.nft for record in records),
        activity_count=len(records),
        volume_wei=sum(record.volume_wei for record in records),
        accounts=frozenset(accounts),
        method_counts=tuple(methods.items()),
        retraction_count=sum(
            status.retraction_count
            for nft, status in version.token_status.items()
            if nft.contract == contract
        ),
    )


def marketplace_partial(version: ServeVersion, venue: str) -> MarketplacePartial:
    """One shard version's slice of a marketplace rollup."""
    records = [record for record in version.confirmed if record.venue == venue]
    methods: Counter = Counter()
    accounts = set()
    for record in records:
        methods.update(record.methods)
        accounts.update(record.accounts)
    return MarketplacePartial(
        version=version.version,
        flagged=frozenset(record.nft for record in records),
        activity_count=len(records),
        volume_wei=sum(record.volume_wei for record in records),
        accounts=frozenset(accounts),
        method_counts=tuple(methods.items()),
    )


def merge_funnel(partials: List[FunnelPartial]) -> FunnelSnapshot:
    """Gather per-shard funnel partials into the global snapshot.

    Stage merging is associative and the account-id unions deduplicate
    accounts appearing in several shards, so the result is identical to
    the single-index computation over the merged token states.  A
    cached partial may carry an older computed-at version (still valid
    -- nothing invalidated it since), so the merged snapshot reports
    the newest contributing one, matching the single-cache semantics of
    "the version this answer was last computed at".
    """
    totals = [StageAccumulator(name=name) for name in STAGE_NAMES]
    for partial in partials:
        for total, stage in zip(totals, partial.stages):
            total.merge(stage)
    return FunnelSnapshot(
        version=max(partial.version for partial in partials),
        stages=tuple(total.to_stage() for total in totals),
        candidate_count=sum(partial.candidate_count for partial in partials),
        confirmed_activity_count=sum(
            partial.confirmed_count for partial in partials
        ),
    )


def merge_collection(
    contract: str, partials: List[CollectionPartial]
) -> CollectionRollup:
    """Gather per-shard collection partials into the global rollup."""
    methods: Counter = Counter()
    flagged: set = set()
    accounts: set = set()
    for partial in partials:
        methods.update(dict(partial.method_counts))
        flagged.update(partial.flagged)
        accounts.update(partial.accounts)
    return CollectionRollup(
        contract=contract,
        version=max(partial.version for partial in partials),
        token_count=sum(partial.token_count for partial in partials),
        flagged_token_count=len(flagged),
        activity_count=sum(partial.activity_count for partial in partials),
        volume_wei=sum(partial.volume_wei for partial in partials),
        account_count=len(accounts),
        method_counts=dict(methods),
        retraction_count=sum(partial.retraction_count for partial in partials),
    )


def merge_marketplace(
    venue: str, partials: List[MarketplacePartial]
) -> MarketplaceRollup:
    """Gather per-shard marketplace partials into the global rollup."""
    methods: Counter = Counter()
    flagged: set = set()
    accounts: set = set()
    for partial in partials:
        methods.update(dict(partial.method_counts))
        flagged.update(partial.flagged)
        accounts.update(partial.accounts)
    return MarketplaceRollup(
        venue=venue,
        version=max(partial.version for partial in partials),
        activity_count=sum(partial.activity_count for partial in partials),
        flagged_nft_count=len(flagged),
        volume_wei=sum(partial.volume_wei for partial in partials),
        account_count=len(accounts),
        method_counts=dict(methods),
    )


class ShardRouter(QueryService):
    """The :class:`QueryService` surface over a sharded index.

    Inherits every point lookup, listing and subscription verb
    unchanged (they operate on :class:`GlobalVersion`'s duck-typed
    ``ServeVersion`` surface) and overrides the three aggregates with
    cached scatter-gather decompositions.
    """

    def __init__(self, index: ShardedServeIndex) -> None:
        super().__init__(index, cache=None)

    @property
    def shard_count(self) -> int:
        return self.index.shard_count

    # -- aggregates (scatter-gather) ---------------------------------------
    def funnel_stats(
        self, version: Optional[GlobalVersion] = None
    ) -> FunnelSnapshot:
        return self._merged(
            ("funnel",), (FUNNEL_SCOPE,), funnel_partial, merge_funnel, version
        )

    def collection_rollup(
        self, contract: str, version: Optional[GlobalVersion] = None
    ) -> CollectionRollup:
        # Contract-aligned routing makes a collection rollup a
        # *single-shard* question: every token of the contract lives on
        # its owner shard, so the other shards' partials are provably
        # empty and are never computed, let alone gathered.
        owner = shard_of(NFTKey(contract=contract, token_id=0), self.shard_count)
        return self._merged(
            ("collection", contract),
            (collection_scope(contract),),
            lambda shard, index: collection_partial(shard, contract),
            lambda partials: merge_collection(contract, partials),
            version,
            indices=(owner,),
        )

    def marketplace_rollup(
        self, venue: str, version: Optional[GlobalVersion] = None
    ) -> MarketplaceRollup:
        return self._merged(
            ("venue", venue),
            (venue_scope(venue),),
            lambda shard, index: marketplace_partial(shard, venue),
            lambda partials: merge_marketplace(venue, partials),
            version,
        )

    def venues(self, version: Optional[GlobalVersion] = None) -> Tuple[str, ...]:
        """Venue union over the shards, without the global record merge."""
        pinned = version or self.version()
        found: set = set()
        for shard in pinned.shards:
            found.update(record.venue for record in shard.confirmed)
        return tuple(sorted(found))

    # -- internals ---------------------------------------------------------
    def _merged(
        self,
        key: Tuple,
        scopes: Tuple,
        compute: Callable[[ServeVersion, Optional[int]], object],
        merge: Callable[[List], object],
        version: Optional[GlobalVersion],
        indices: Optional[Tuple[int, ...]] = None,
    ):
        """One merged aggregate through the two cache levels.

        Warm answers come out of the coordinator's merged-result memo
        at one-lookup cost, exactly like the single-index cache.  On a
        miss (the tick's dirty union touched this scope) the gather
        resolves per shard, where the untouched shards still answer
        their partials from their own caches -- the recompute cost is
        paid only by the shards the tick dirtied.  ``indices`` narrows
        the gather to the shards that can contribute at all (the owner
        shard, for collection rollups); the partition makes every other
        shard's partial structurally empty for any version, pinned ones
        included.
        """
        if version is not None:
            return merge(
                [
                    compute(version.shards[index], None)
                    for index in self._indices(indices)
                ]
            )
        memo = self.index.router_cache
        if memo is None:
            return merge(self._gather(key, scopes, compute, indices))
        return memo.get_or_compute(
            key,
            scopes,
            lambda: merge(self._gather(key, scopes, compute, indices)),
        )

    def _indices(self, indices: Optional[Tuple[int, ...]]) -> Tuple[int, ...]:
        if indices is None:
            return tuple(range(self.shard_count))
        return indices

    def _gather(
        self,
        key: Tuple,
        scopes: Tuple,
        compute: Callable[[ServeVersion, Optional[int]], object],
        indices: Optional[Tuple[int, ...]] = None,
    ) -> List:
        """Per-shard partials, each from its shard's cache when possible.

        The partials resolve the live global handle *inside* the
        compute closure (the cache-safety ordering) and the whole
        gather is validated against the coordinator's publication
        seqlock; a gather overlapping a flip+invalidate falls back to
        one uncached pinned compute so the merged answer never mixes
        ticks.
        """
        start = self.index.publish_seq
        if start % 2 == 0:
            partials = []
            for index in self._indices(indices):
                cache = self.index.caches[index]

                def closure(shard_index: int = index):
                    return compute(
                        self.index.current.shards[shard_index], shard_index
                    )

                if cache is None:
                    partials.append(closure())
                else:
                    partials.append(cache.get_or_compute(key, scopes, closure))
            if self.index.publish_seq == start:
                return partials
        pinned = self.version()
        return [
            compute(pinned.shards[index], None)
            for index in self._indices(indices)
        ]
