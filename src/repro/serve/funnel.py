"""Differentially maintained funnel statistics for the sharded live path.

The monolithic :class:`~repro.serve.index.ServeIndex` answers
``funnel_stats`` by folding every token state's per-stage accumulators
into one :class:`~repro.serve.model.FunnelSnapshot` -- O(world) per
recompute, paid on every query that misses the cache.  The partitioned
refactor makes a better contract possible: each shard's funnel
contribution is an associative *partial*, and every per-token stage
statistic is **invertible** -- ``nft_count`` and ``component_count``
subtract, and the distinct-account union becomes a multiset
(account id -> number of contributing tokens) whose key set *is* the
distinct union.  So a shard can maintain its funnel partial by applying
only the tick's dirty delta (retire the old token state, install the
new one) and materialize the partial once per published version --
O(dirty slice) per tick instead of O(shard) per query.

The materialized :class:`FunnelPartial` rides the immutable
:class:`~repro.serve.model.ServeVersion` itself, so readers get it with
the same snapshot-isolation guarantees as every other container: there
is no query-time window in which a half-applied delta could be
observed.
"""

from __future__ import annotations

from array import array
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.engine.refine import STAGE_NAMES, StageAccumulator


@dataclass(frozen=True)
class FunnelPartial:
    """One shard's contribution to the refinement funnel."""

    version: int
    #: Pre-normalized accumulators (their lazy id buffers folded), so
    #: cached partials are read-only under cross-thread merges.
    stages: Tuple[StageAccumulator, ...]
    candidate_count: int
    confirmed_count: int


class _StageCounts:
    """Invertible statistics of one funnel stage across a shard."""

    __slots__ = ("nft_count", "component_count", "account_tokens")

    def __init__(self) -> None:
        self.nft_count = 0
        self.component_count = 0
        #: account id -> number of this shard's tokens contributing it;
        #: the key set is exactly the stage's distinct account union.
        self.account_tokens: Counter = Counter()

    def apply(self, stage: StageAccumulator, sign: int) -> None:
        self.nft_count += sign * stage.nft_count
        self.component_count += sign * stage.component_count
        counts = self.account_tokens
        for account_id in stage.account_ids:
            fresh = counts[account_id] + sign
            if fresh:
                counts[account_id] = fresh
            else:
                del counts[account_id]

    def materialize(self, name: str) -> StageAccumulator:
        return StageAccumulator(
            name=name,
            nft_count=self.nft_count,
            component_count=self.component_count,
            _sorted_ids=array("q", sorted(self.account_tokens)),
        )


class FunnelMaintainer:
    """A shard's live funnel state, updated by dirty-token deltas.

    ``apply(old, new)`` retires one token's previous state and installs
    its replacement (either side may be None for appearing or vanishing
    tokens); :meth:`partial` freezes the current totals into the
    read-only :class:`FunnelPartial` a published version carries.  The
    maintainer is exact, not approximate: the scheduler re-installs a
    state for every token it reports dirty, so folding the deltas
    reproduces the full refold's counters identically -- the sharded
    parity suite holds this against the batch pipeline.
    """

    def __init__(self) -> None:
        self._stages: List[_StageCounts] = [
            _StageCounts() for _ in STAGE_NAMES
        ]
        self.candidate_count = 0

    def rebuild(self, states: Iterable) -> None:
        """Fold a full set of token states in (bootstrap only)."""
        for state in states:
            self._apply_one(state, 1)

    def apply(self, old: Optional[object], new: Optional[object]) -> None:
        """Replace one token's contribution (None = absent on that side)."""
        if old is new:
            # A confirmation flip re-dirties tokens whose refinement
            # structure never moved; their delta is exactly zero.
            return
        if old is not None:
            self._apply_one(old, -1)
        if new is not None:
            self._apply_one(new, 1)

    def _apply_one(self, state, sign: int) -> None:
        self.candidate_count += sign * len(state.candidates)
        for counts, stage in zip(self._stages, state.stages):
            counts.apply(stage, sign)

    def partial(self, version: int, confirmed_count: int) -> FunnelPartial:
        """Freeze the maintained totals for one published version."""
        return FunnelPartial(
            version=version,
            stages=tuple(
                counts.materialize(name)
                for counts, name in zip(self._stages, STAGE_NAMES)
            ),
            candidate_count=self.candidate_count,
            confirmed_count=confirmed_count,
        )
