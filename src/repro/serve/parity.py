"""Serving-parity self-check: every query answer vs a batch build.

The acceptance bar of the serving layer mirrors the streaming stack's:
at every published version, every :class:`~repro.serve.query.QueryService`
answer must equal what a fresh batch
``WashTradingPipeline(engine="columnar")`` build over the same chain
prefix would say.  :func:`serving_parity_mismatches` walks the whole
query surface -- the confirmed listing (including its pagination),
point lookups, account profiles, funnel statistics and both rollup
families -- and returns a human-readable description of every
divergence (empty list = parity).  Shared by ``tests/serve`` and
``benchmarks/bench_serve_load.py``, and exposed to operators through
``python -m repro serve --verify``.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Set, Tuple

from repro.core.activity import WashTradingActivity
from repro.core.detectors.pipeline import PipelineResult
from repro.serve.model import OFF_MARKET, ServeVersion
from repro.serve.query import QueryService
from repro.serve.sharding import ShardedServeIndex, shard_of


def activity_fingerprint(activity: WashTradingActivity) -> Tuple:
    """Full value identity of one activity (evidence details included)."""
    return (
        activity.nft.contract,
        activity.nft.token_id,
        tuple(sorted(activity.accounts)),
        tuple(sorted(method.value for method in activity.methods)),
        tuple(sorted(t.tx_hash for t in activity.component.transfers)),
        tuple(
            sorted(
                repr(sorted(evidence.details.items()))
                for evidence in activity.evidence
            )
        ),
    )


def _venue_of(activity: WashTradingActivity) -> str:
    venue = activity.component.dominant_marketplace()
    return venue if venue is not None else OFF_MARKET


def serving_parity_mismatches(
    query: QueryService,
    batch: PipelineResult,
    version: Optional[ServeVersion] = None,
    page_size: int = 7,
) -> List[str]:
    """Compare every query family against a batch result; [] = parity."""
    pinned = version or query.version()
    problems: List[str] = []

    # -- confirmed listing (value-identical activities) --------------------
    served = sorted(activity_fingerprint(r.activity) for r in pinned.confirmed)
    reference = sorted(activity_fingerprint(a) for a in batch.activities)
    if served != reference:
        problems.append(
            f"confirmed set diverges: served {len(served)} activities, "
            f"batch {len(reference)}"
        )

    # -- pagination must cover the listing exactly once --------------------
    seen_keys: List[Tuple] = []
    cursor = None
    while True:
        page = query.list_confirmed(
            limit=page_size, cursor=cursor, version=pinned
        )
        seen_keys.extend(record.key for record in page.records)
        if page.next_cursor is None:
            break
        cursor = page.next_cursor
    full_keys = [record.key for record in pinned.confirmed]
    if seen_keys != full_keys:
        problems.append(
            f"pagination diverges: pages yielded {len(seen_keys)} records, "
            f"listing holds {len(full_keys)}"
        )

    # -- flagged set and per-token statuses --------------------------------
    washed = batch.washed_nfts()
    if pinned.flagged_nfts != washed:
        problems.append(
            f"flagged set diverges: served {len(pinned.flagged_nfts)}, "
            f"batch {len(washed)}"
        )
    batch_by_nft: Dict = {}
    for activity in batch.activities:
        batch_by_nft.setdefault(activity.nft, []).append(activity)
    for nft, activities in batch_by_nft.items():
        status = query.token_status(nft, version=pinned)
        if status.activity_count != len(activities):
            problems.append(
                f"token {nft}: served {status.activity_count} activities, "
                f"batch {len(activities)}"
            )
            continue
        methods = frozenset().union(*(a.methods for a in activities))
        if status.methods != methods:
            problems.append(f"token {nft}: method set diverges")
        if status.volume_wei != sum(a.volume_wei for a in activities):
            problems.append(f"token {nft}: volume diverges")

    # -- account profiles ---------------------------------------------------
    batch_by_account: Dict[str, List[WashTradingActivity]] = {}
    for activity in batch.activities:
        for account in activity.accounts:
            batch_by_account.setdefault(account, []).append(activity)
    served_accounts: Set[str] = set(pinned.account_profiles)
    if served_accounts != set(batch_by_account):
        problems.append(
            f"implicated accounts diverge: served {len(served_accounts)}, "
            f"batch {len(batch_by_account)}"
        )
    for account, activities in batch_by_account.items():
        profile = query.account_profile(account, version=pinned)
        if profile.activity_count != len(activities):
            problems.append(
                f"account {account}: served {profile.activity_count} "
                f"activities, batch {len(activities)}"
            )
        elif profile.volume_wei != sum(a.volume_wei for a in activities):
            problems.append(f"account {account}: volume diverges")

    # -- funnel statistics --------------------------------------------------
    funnel = query.funnel_stats(version=pinned)
    if list(funnel.stages) != list(batch.refinement.stages):
        problems.append("funnel stages diverge from batch refinement")
    if funnel.candidate_count != batch.candidate_count:
        problems.append(
            f"candidate count diverges: served {funnel.candidate_count}, "
            f"batch {batch.candidate_count}"
        )

    # -- collection rollups -------------------------------------------------
    batch_by_contract: Dict[str, List[WashTradingActivity]] = {}
    for activity in batch.activities:
        batch_by_contract.setdefault(activity.nft.contract, []).append(activity)
    for contract in query.collections(version=pinned):
        rollup = query.collection_rollup(contract, version=pinned)
        activities = batch_by_contract.get(contract, [])
        if rollup.activity_count != len(activities):
            problems.append(
                f"collection {contract}: served {rollup.activity_count} "
                f"activities, batch {len(activities)}"
            )
            continue
        if rollup.volume_wei != sum(a.volume_wei for a in activities):
            problems.append(f"collection {contract}: volume diverges")
        if rollup.flagged_token_count != len({a.nft for a in activities}):
            problems.append(f"collection {contract}: flagged count diverges")
        methods = Counter()
        for activity in activities:
            methods.update(activity.methods)
        if dict(methods) != dict(rollup.method_counts):
            problems.append(f"collection {contract}: method counts diverge")

    # -- marketplace rollups ------------------------------------------------
    batch_by_venue: Dict[str, List[WashTradingActivity]] = {}
    for activity in batch.activities:
        batch_by_venue.setdefault(_venue_of(activity), []).append(activity)
    served_venues = set(query.venues(version=pinned))
    if served_venues != set(batch_by_venue):
        problems.append(
            f"venue set diverges: served {sorted(served_venues)}, "
            f"batch {sorted(batch_by_venue)}"
        )
    for venue, activities in batch_by_venue.items():
        rollup = query.marketplace_rollup(venue, version=pinned)
        if rollup.activity_count != len(activities):
            problems.append(
                f"venue {venue}: served {rollup.activity_count} activities, "
                f"batch {len(activities)}"
            )
        elif rollup.volume_wei != sum(a.volume_wei for a in activities):
            problems.append(f"venue {venue}: volume diverges")

    return problems


def sharded_parity_mismatches(
    index: ShardedServeIndex, batch: PipelineResult
) -> List[str]:
    """Per-shard structural parity of a partitioned index; [] = parity.

    The global check (:func:`serving_parity_mismatches` over the
    router) already proves the *merged* answers; this one proves the
    *partitioning* is sound shard by shard:

    * every shard holds exactly the tokens its hash slot owns;
    * each shard's confirmed set equals the batch activities routed to
      it (so the global k-way merge has nothing to hide behind);
    * the per-shard flagged sets are disjoint and union to the global
      flagged set;
    * every shard agrees with the coordinator on the alert sequence
      head (the shared-log invariant).
    """
    problems: List[str] = []
    pinned = index.current
    shard_count = index.shard_count

    routed: Dict[int, List[WashTradingActivity]] = {
        i: [] for i in range(shard_count)
    }
    for activity in batch.activities:
        routed[shard_of(activity.nft, shard_count)].append(activity)

    union: Set = set()
    flagged_total = 0
    for i, shard_version in enumerate(pinned.shards):
        strays = [
            nft
            for nft in shard_version.token_status
            if shard_of(nft, shard_count) != i
        ]
        if strays:
            problems.append(
                f"shard {i}: holds {len(strays)} token(s) owned elsewhere"
            )
        served = sorted(
            activity_fingerprint(r.activity) for r in shard_version.confirmed
        )
        reference = sorted(activity_fingerprint(a) for a in routed[i])
        if served != reference:
            problems.append(
                f"shard {i}: confirmed set diverges from its routed batch "
                f"slice (served {len(served)}, batch {len(reference)})"
            )
        if shard_version.last_seq != pinned.last_seq:
            problems.append(
                f"shard {i}: last_seq {shard_version.last_seq} disagrees "
                f"with coordinator {pinned.last_seq}"
            )
        flagged_total += len(shard_version.flagged_nfts)
        union.update(shard_version.flagged_nfts)

    if flagged_total != len(union):
        problems.append("flagged sets overlap across shards")
    if union != pinned.flagged_nfts:
        problems.append(
            f"per-shard flagged union ({len(union)}) diverges from the "
            f"global flagged set ({len(pinned.flagged_nfts)})"
        )
    return problems
