"""Dirty-token-keyed result cache for expensive aggregate queries.

Aggregates (collection rollups, marketplace rollups, funnel statistics)
cost O(tokens) or O(records) to compute; point queries cost O(1).  At
serving load the aggregates dominate -- unless their results are
reused.  The difficulty is *invalidation*: the monitor revises state
every tick, but most ticks touch a handful of tokens, so flushing the
whole cache per tick throws away almost everything that is still true.

This cache instead keys invalidation on the scheduler's dirty set.  An
entry is registered under one or more *scopes* -- ``("collection",
contract)``, ``("venue", name)``, or the global ``("funnel",)`` -- and
the serving index translates each tick's ``dirty_nfts`` (plus the
venues of flipped activities) into exactly the scopes whose answers may
have moved.  Entries in untouched scopes survive arbitrarily many
ticks.

Thread safety uses per-scope generation counters: a reader captures its
scopes' generations before computing, and the computed value is stored
only if no invalidation intervened -- a racing tick can waste one
compute, never poison the cache.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterable, Tuple

#: Scope of every aggregate that can change whenever any token is
#: reprocessed (the funnel statistics read every token's stage counts).
FUNNEL_SCOPE: Tuple[str, ...] = ("funnel",)

Scope = Tuple[Hashable, ...]


def collection_scope(contract: str) -> Scope:
    """Invalidation scope of one collection's aggregates."""
    return ("collection", contract)


def venue_scope(venue: str) -> Scope:
    """Invalidation scope of one marketplace's aggregates."""
    return ("venue", venue)


@dataclass
class CacheStats:
    """Counters the benchmark and the CLI report."""

    hits: int = 0
    misses: int = 0
    #: Entries dropped by scope invalidation.
    invalidated: int = 0
    #: Computed values discarded because a tick raced the computation.
    stale_discards: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


@dataclass
class _Entry:
    scopes: Tuple[Scope, ...]
    generations: Tuple[int, ...]
    value: Any = field(repr=False, default=None)


class AggregateCache:
    """Scope-invalidated result cache shared by every query thread."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._generations: Dict[Scope, int] = {}
        self._entries: Dict[Hashable, _Entry] = {}
        self.stats = CacheStats()

    def _generations_of(self, scopes: Tuple[Scope, ...]) -> Tuple[int, ...]:
        return tuple(self._generations.get(scope, 0) for scope in scopes)

    def get_or_compute(
        self,
        key: Hashable,
        scopes: Iterable[Scope],
        compute: Callable[[], Any],
    ) -> Any:
        """Serve ``key`` from cache, or compute and (safely) store it.

        ``compute`` runs outside the lock.  If any of ``scopes`` is
        invalidated between the generation capture and the store, the
        freshly computed value is returned to the caller (it is correct
        for the version the caller read) but not cached.
        """
        scope_tuple = tuple(scopes)
        with self._lock:
            generations = self._generations_of(scope_tuple)
            entry = self._entries.get(key)
            if entry is not None and entry.generations == generations:
                self.stats.hits += 1
                return entry.value
            self.stats.misses += 1
        value = compute()
        with self._lock:
            if self._generations_of(scope_tuple) == generations:
                self._entries[key] = _Entry(scope_tuple, generations, value)
            else:
                self.stats.stale_discards += 1
        return value

    def invalidate(self, scopes: Iterable[Scope]) -> int:
        """Bump the given scopes and drop every entry touching them.

        Returns the number of entries dropped.  Called by the serving
        index with the scopes derived from one tick's dirty set; an
        empty iterable is a no-op (empty ticks keep the cache warm).
        """
        scope_set = set(scopes)
        if not scope_set:
            return 0
        with self._lock:
            for scope in scope_set:
                self._generations[scope] = self._generations.get(scope, 0) + 1
            dead = [
                key
                for key, entry in self._entries.items()
                if scope_set.intersection(entry.scopes)
            ]
            for key in dead:
                del self._entries[key]
            self.stats.invalidated += len(dead)
            return len(dead)

    def register_metrics(self, registry, shard: "int | None" = None) -> None:
        """Expose the cache through a registry *collector*.

        The cache already counts everything the stats surface needs in
        :class:`CacheStats`; a snapshot-time collector publishes those
        counters (and the live entry count / hit ratio) without adding
        any work to the lookup hot path.  Idempotent per registry call
        site: registering twice just reports the same numbers twice.

        With ``shard``, each series carries a ``{shard="N"}`` label (the
        registry's flat labeled-name convention), so the per-shard
        caches of a partitioned index report side by side instead of
        colliding on one name.
        """
        suffix = "" if shard is None else '{shard="%d"}' % shard

        def collect():
            stats = self.stats
            return {
                "counters": {
                    f"serve_cache_hits_total{suffix}": stats.hits,
                    f"serve_cache_misses_total{suffix}": stats.misses,
                    f"serve_cache_invalidated_total{suffix}": stats.invalidated,
                    f"serve_cache_stale_discards_total{suffix}": stats.stale_discards,
                },
                "gauges": {
                    f"serve_cache_entries{suffix}": len(self),
                    f"serve_cache_hit_ratio{suffix}": stats.hit_rate,
                },
            }

        registry.register_collector(collect)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
