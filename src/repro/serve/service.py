"""The serving facade: monitor ingest plus a concurrent query front end.

:class:`ServeService` wires the four serving pieces together -- a
:class:`~repro.stream.StreamingMonitor`, the versioned
:class:`~repro.serve.index.ServeIndex`, the dirty-token-keyed
:class:`~repro.serve.cache.AggregateCache` and the
:class:`~repro.serve.query.QueryService` -- and can drive the monitor
either inline (:meth:`advance` / :meth:`run`, the deterministic path
tests and benchmarks use) or on a background ingest thread
(:meth:`start_background`, the ``python -m repro serve`` path) while
any number of reader threads query concurrently.

Threading model: exactly one writer (whichever thread drives the
monitor) mutates state; every read answers from an immutable published
version, so readers never block the writer and never see a half-applied
tick.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional, TYPE_CHECKING

from repro.core.detectors.pipeline import PipelineResult
from repro.obs.registry import NULL_REGISTRY, HistogramSnapshot, MetricsRegistry
from repro.serve.cache import AggregateCache, CacheStats
from repro.serve.index import ServeIndex
from repro.serve.model import ServeVersion
from repro.serve.query import QueryService
from repro.serve.router import ShardRouter
from repro.serve.sharding import ShardedServeIndex
from repro.stream.monitor import StreamingMonitor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.wire.server import WireServer


class ServeService:
    """Owns one monitor and serves queries over its versioned state."""

    def __init__(
        self,
        monitor: StreamingMonitor,
        use_cache: bool = True,
        registry: Optional[MetricsRegistry] = None,
        shards: int = 1,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.monitor = monitor
        #: The service inherits its monitor's registry unless given its
        #: own, so one registry spans ingest through serving.
        self.registry = (
            registry
            if registry is not None
            else getattr(monitor, "registry", None) or NULL_REGISTRY
        )
        self.shards = shards
        if shards > 1:
            #: The partitioned read model keeps one cache *per shard*
            #: (invalidated by its own dirty slice); the service-level
            #: handle stays None and :meth:`cache_stats` aggregates.
            self.cache: Optional[AggregateCache] = None
            self.index = ShardedServeIndex(
                monitor,
                shard_count=shards,
                use_cache=use_cache,
                registry=self.registry,
            )
            self.query: QueryService = ShardRouter(self.index)
        else:
            self.cache = AggregateCache() if use_cache else None
            self.index = ServeIndex(monitor, cache=self.cache, registry=self.registry)
            self.query = QueryService(self.index, cache=self.cache)
        #: Per-tick wall-clock latency of background ingest, as a
        #: bounded-reservoir histogram: exact count/sum, estimated
        #: percentiles, O(1) memory however long the service runs.
        #: Recorded even without an external registry (a private one
        #: backs it), so the CLI summary always has percentiles.
        self._tick_registry = (
            self.registry if self.registry.enabled else MetricsRegistry()
        )
        self.tick_latency = self._tick_registry.histogram(
            "serve_tick_seconds",
            "Wall-clock latency of each background ingest tick.",
        )
        #: Set when the background ingest loop has finished (caught up,
        #: reached its target, was stopped -- or crashed; see
        #: ``ingest_error``).
        self.done = threading.Event()
        #: The exception that killed the background ingest loop, if any.
        #: ``join()`` re-raises it so a crash can never masquerade as a
        #: clean completion.
        self.ingest_error: Optional[BaseException] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: The TCP front end, when one was started (see :meth:`serve_wire`).
        self.wire: Optional["WireServer"] = None
        #: Wall-clock time of the last completed tick (health liveness
        #: watermark); None until the first tick.
        self._last_tick_at: Optional[float] = None
        #: The attached SLO engine, if any (see :meth:`attach_slo`).
        self.slo_engine = None
        #: Seconds without a tick before a still-running ingest loop is
        #: reported as stalled by :meth:`health_snapshot`.
        self.stall_after = 30.0

    @classmethod
    def for_world(
        cls,
        world,
        use_cache: bool = True,
        registry: Optional[MetricsRegistry] = None,
        shards: int = 1,
        **monitor_kwargs,
    ) -> "ServeService":
        """Build a service over a simulated world's handles."""
        if registry is not None:
            monitor_kwargs.setdefault("registry", registry)
        return cls(
            StreamingMonitor.for_world(world, **monitor_kwargs),
            use_cache=use_cache,
            registry=registry,
            shards=shards,
        )

    # -- introspection -----------------------------------------------------
    def tick_latency_snapshot(self) -> HistogramSnapshot:
        """Percentiles of background ingest tick latency (CLI summary)."""
        return self.tick_latency.snapshot()

    def metrics_snapshot(self) -> Dict[str, Dict[str, Any]]:
        """One JSON-friendly view of every metric the service touches.

        With a real registry this is the full cross-layer picture
        (cursor, scheduler, monitor, index, cache, wire); without one,
        the privately tracked tick histogram is still reported so the
        surface never comes back empty.
        """
        snapshot = self.registry.snapshot()
        if not self.registry.enabled:
            snapshot["histograms"]["serve_tick_seconds"] = (
                self.tick_latency.snapshot().as_dict()
            )
        return snapshot

    def health_snapshot(self) -> Dict[str, Any]:
        """One readiness read: ingest liveness, publish lag, wire
        pressure, SLO budget state, rolled up into a traffic-light
        ``status`` -- the payload of the ``health`` wire verb and the
        contract behind ``python -m repro probe``.

        * ``ok`` -- serving and inside every budget.
        * ``degraded`` -- serving, but an SLO budget is exhausted, a
          subscriber queue is near overflow, or background ingest has
          stalled (no tick for ``stall_after`` seconds).
        * ``unhealthy`` -- the ingest loop crashed.
        """
        now = time.time()
        head = self.monitor.node.block_number
        processed = self.monitor.processed_block
        running = self._thread is not None and not self.done.is_set()
        crashed = self.ingest_error is not None
        last_tick_age = (
            None if self._last_tick_at is None else now - self._last_tick_at
        )
        ingest: Dict[str, Any] = {
            "processed_block": processed,
            "head_block": head,
            "lag_blocks": max(head - processed, 0),
            "ticks": self.monitor.tick_count,
            "running": running,
            "done": self.done.is_set(),
            "crashed": crashed,
            "last_tick_age_seconds": last_tick_age,
        }
        if crashed:
            ingest["error"] = repr(self.ingest_error)
        current = self.index.current
        publish: Dict[str, Any] = {
            "shards": self.shards,
            "version": current.version,
            "published_seq": current.last_seq,
            "log_seq": self.index.last_seq,
            "lag_alerts": max(self.index.last_seq - current.last_seq, 0),
        }
        health: Dict[str, Any] = {"ingest": ingest, "publish": publish}
        wire = self.wire
        if wire is not None:
            health["wire"] = wire.health_stats()
        if self.slo_engine is not None:
            health["slo"] = self.slo_engine.state()

        stalled = (
            running
            and last_tick_age is not None
            and last_tick_age > self.stall_after
        )
        budget_blown = any(
            not state["healthy"] for state in health.get("slo", {}).values()
        )
        pressured = (
            health.get("wire", {}).get("subscriber_queue_pressure", 0.0) >= 0.9
        )
        if crashed:
            status = "unhealthy"
        elif stalled or budget_blown or pressured:
            status = "degraded"
        else:
            status = "ok"
        health["status"] = status
        return health

    def cache_stats(self) -> Optional[CacheStats]:
        """Aggregate-cache counters, summed across shards when sharded.

        None when caching is disabled.  The summed view is what the CLI
        summary and the benchmark report; per-shard counters remain
        visible through the registry's labeled series.
        """
        if self.shards > 1:
            caches = [cache for cache in self.index.caches if cache is not None]
            if self.index.router_cache is not None:
                caches.append(self.index.router_cache)
        else:
            caches = [self.cache] if self.cache is not None else []
        if not caches:
            return None
        total = CacheStats()
        for cache in caches:
            stats = cache.stats
            total.hits += stats.hits
            total.misses += stats.misses
            total.invalidated += stats.invalidated
            total.stale_discards += stats.stale_discards
        return total

    def attach_slo(self, engine) -> None:
        """Evaluate ``engine`` every tick (see :mod:`repro.obs.slo`);
        breaches surface as SLO_BREACH alerts on the monitor's stream
        and as budget state in :meth:`health_snapshot`."""
        self.slo_engine = engine
        self.monitor.attach_slo(engine)

    def _mark_block_seen(self) -> None:
        """Open the latency ledger entry for the *upcoming* tick.

        Trace ids are deterministic (see ``StreamingMonitor.predict_trace``),
        so the driving loop can timestamp "block seen" before the tick
        runs.  Gated on an enabled registry: the bare path pays nothing.
        """
        if self.registry.enabled:
            self.registry.latency.mark(self.monitor.predict_trace(), "block_seen")

    def _note_tick(self) -> None:
        self._last_tick_at = time.time()

    # -- inline driving ----------------------------------------------------
    def advance(self, to_block: Optional[int] = None) -> ServeVersion:
        """One monitor tick; returns the version it published."""
        self._mark_block_seen()
        self.monitor.advance(to_block)
        self._note_tick()
        return self.index.current

    def run(
        self, to_block: Optional[int] = None, step_blocks: int = 25
    ) -> ServeVersion:
        """Follow the chain inline to ``to_block`` (default: head)."""
        self.monitor.run(to_block=to_block, step_blocks=step_blocks)
        return self.index.current

    # -- background driving ------------------------------------------------
    def start_background(
        self,
        to_block: Optional[int] = None,
        step_blocks: int = 25,
        tick_delay: float = 0.0,
    ) -> threading.Thread:
        """Drive the monitor on a daemon thread; readers query meanwhile.

        Mirrors :meth:`StreamingMonitor.run` (including the final
        explicit tick that performs the divergence check when there is
        nothing to scan), with a stop flag checked between ticks and an
        optional per-tick delay to shape ingest cadence.  ``done`` is
        set when the loop exits for any reason.
        """
        if self._thread is not None:
            raise RuntimeError("background ingest already started")
        if step_blocks < 1:
            raise ValueError("step_blocks must be >= 1")

        def drive() -> None:
            try:
                ticked = False
                while not self._stop.is_set():
                    head = self.monitor.node.block_number
                    target = head if to_block is None else min(to_block, head)
                    if self.monitor.cursor.next_block > target:
                        break
                    upper = min(
                        self.monitor.cursor.next_block + step_blocks - 1, target
                    )
                    self._mark_block_seen()
                    started = time.perf_counter()
                    self.monitor.advance(upper)
                    self.tick_latency.observe(time.perf_counter() - started)
                    self._note_tick()
                    ticked = True
                    if tick_delay:
                        time.sleep(tick_delay)
                if not ticked and not self._stop.is_set():
                    self._mark_block_seen()
                    started = time.perf_counter()
                    self.monitor.advance(to_block)
                    self.tick_latency.observe(time.perf_counter() - started)
                    self._note_tick()
            except BaseException as error:  # noqa: BLE001 - re-raised by join
                self.ingest_error = error
            finally:
                self.done.set()

        self._thread = threading.Thread(
            target=drive, name="serve-ingest", daemon=True
        )
        self._thread.start()
        return self._thread

    def stop(self, timeout: Optional[float] = None) -> None:
        """Ask the ingest loop to exit and join it.

        Unlike :meth:`join`, a crash that happened before the stop is
        still surfaced -- the stored ``ingest_error`` is re-raised.
        """
        self._stop.set()
        self.join(timeout)

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for background ingest to finish; True when it did.

        Re-raises the exception that killed the ingest thread, if any --
        a crashed ingest must never look like a clean completion.
        """
        if self._thread is not None:
            self._thread.join(timeout)
            if self.ingest_error is not None:
                raise self.ingest_error
            return not self._thread.is_alive()
        return True

    # -- the wire front end ------------------------------------------------
    def serve_wire(
        self, host: str = "127.0.0.1", port: int = 0, **server_kwargs
    ) -> "WireServer":
        """Start the TCP front end over this service's query API.

        Returns the running :class:`~repro.serve.wire.server.WireServer`
        (``server.address`` carries the concrete port when 0 was asked).
        The server shares this service's versioned read model, so wire
        clients get the same snapshot-isolation guarantees as in-process
        readers; :meth:`shutdown` closes it gracefully.
        """
        if self.wire is not None:
            raise RuntimeError("wire server already started")
        from repro.serve.wire.server import WireServer

        server_kwargs.setdefault("registry", self.registry)
        server_kwargs.setdefault("metrics_snapshot", self.metrics_snapshot)
        server_kwargs.setdefault("health_snapshot", self.health_snapshot)
        self.wire = WireServer(self.query, host, port, **server_kwargs).start()
        return self.wire

    def shutdown(self, timeout: Optional[float] = None) -> None:
        """Graceful stop of the whole service: listener, readers, ingest.

        Ordering matters: the wire listener stops accepting first, then
        in-flight requests are drained and connections closed, and only
        then is background ingest stopped and joined -- so every request
        that was accepted is answered from a live, publishing service.
        A crashed ingest thread is still surfaced (:meth:`stop`
        re-raises), but only after the wire side is down.
        """
        wire_timeout = 10.0 if timeout is None else timeout
        if self.wire is not None:
            self.wire.close(timeout=wire_timeout)
        self.stop(timeout)
        # Release the scheduler's worker pool (no-op when serial).
        close = getattr(self.monitor, "close", None)
        if close is not None:
            close()

    # -- passthroughs ------------------------------------------------------
    def result(self) -> PipelineResult:
        """The batch-identical pipeline result as of the processed block."""
        return self.monitor.result()
