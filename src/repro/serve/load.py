"""A mixed-workload load generator for the query service.

One reader thread's workload: a randomized mix of point lookups,
paginated listings, cached aggregates and (optionally) a replay-cursor
mirror, with two serving invariants checked as it runs -- versions
observed by a reader never move backwards, and folding the replayed
alert stream must reproduce the served confirmed set without ever
retracting something that was not confirmed.

Shared by ``benchmarks/bench_serve_load.py`` (throughput and cache
comparisons) and the ``python -m repro serve`` CLI (its query worker
threads), so the reported queries/sec of both always measure the same
workload.
"""

from __future__ import annotations

import random
import threading
from collections import Counter
from typing import Optional

from repro.serve.model import record_key
from repro.serve.query import QueryService
from repro.stream.alerts import AlertKind


class LoadGenerator:
    """One reader thread's mixed point/aggregate query workload.

    Runs until the ``stop`` event is set (plus one settled pass over the
    final state), tracking throughput in ``queries`` and invariant
    violations in ``errors``.  With ``mirror=True`` the generator also
    plays the late-joining consumer: a replay cursor folds every
    confirmation and retraction into ``mirror``, which must equal the
    served confirmed set once ingest settles.
    """

    def __init__(
        self,
        query: QueryService,
        seed: int,
        stop: threading.Event,
        mirror: bool = False,
    ) -> None:
        self.query = query
        self.rng = random.Random(seed)
        self.stop = stop
        self.queries = 0
        self.errors: list = []
        self.last_version = -1
        self.mirror: Optional[Counter] = Counter() if mirror else None
        self._cursor = query.replay() if mirror else None
        self.thread = threading.Thread(target=self.run, daemon=True)

    def _drain_mirror(self) -> None:
        for alert in self._cursor.poll():
            if alert.kind is AlertKind.ACTIVITY_CONFIRMED:
                self.mirror[record_key(alert.activity)] += 1
            elif alert.kind is AlertKind.ACTIVITY_RETRACTED:
                self.mirror[record_key(alert.activity)] -= 1
                if self.mirror[record_key(alert.activity)] < 0:
                    self.errors.append(
                        f"retraction without matching confirmation at seq "
                        f"{alert.seq}"
                    )

    def step(self) -> None:
        """One query of the mixed workload (and the invariant checks)."""
        query, rng = self.query, self.rng
        version = query.version()
        if version.version < self.last_version:
            self.errors.append(
                f"version moved backwards: {self.last_version} -> "
                f"{version.version}"
            )
        self.last_version = version.version
        roll = rng.random()
        if roll < 0.40 and version.token_order:
            query.token_status(rng.choice(version.token_order))
        elif roll < 0.60 and version.account_profiles:
            query.account_profile(rng.choice(sorted(version.account_profiles)))
        elif roll < 0.75:
            # The whole pagination walk pins one version -- mixing a
            # cursor from one version with pages of another can skip or
            # repeat records.
            page = query.list_confirmed(limit=8, version=version)
            while page.next_cursor is not None and rng.random() < 0.5:
                page = query.list_confirmed(
                    limit=8, cursor=page.next_cursor, version=version
                )
        elif roll < 0.85:
            query.funnel_stats()
        elif roll < 0.95 and version.token_order:
            query.collection_rollup(rng.choice(version.token_order).contract)
        else:
            for venue in query.venues():
                query.marketplace_rollup(venue)
        if self._cursor is not None:
            self._drain_mirror()
        self.queries += 1

    def run(self) -> None:
        try:
            while not self.stop.is_set():
                self.step()
            self.step()  # one settled pass over the final state
            if self._cursor is not None:
                self._drain_mirror()
        except Exception as error:  # pragma: no cover - asserted by callers
            self.errors.append(repr(error))
