"""Wire parity: the socket must serve exactly the in-process answers.

The serving layer's acceptance bar (see :mod:`repro.serve.parity`)
extends across the network boundary: for every endpoint, the
over-the-wire answer at a pinned version must equal the *encoding of*
the in-process :class:`~repro.serve.query.QueryService` answer at that
same immutable :class:`~repro.serve.model.ServeVersion` -- including
mid-reorg-storm, where the pinned snapshot is precisely what makes the
comparison race-free while ingest keeps publishing.

:func:`wire_parity_mismatches` needs to resolve the pinned version
*number* the server returned back into the version *object* the server
answered from; in-process harnesses (tests, benchmarks, ``--verify``)
pass :meth:`~repro.serve.wire.server.WireServer.lookup_version`.
"""

from __future__ import annotations

import json
from typing import Any, Callable, List, Optional

from repro.serve.model import ServeVersion
from repro.serve.query import QueryService
from repro.serve.wire import codec
from repro.serve.wire.client import WireClient

#: Resolves a pinned version number to the snapshot it names.
VersionResolver = Callable[[int], Optional[ServeVersion]]


def _normal(payload: Any) -> Any:
    """JSON-normalize (tuples to lists, key order) for == comparison."""
    return json.loads(json.dumps(payload, sort_keys=True))


def wire_parity_mismatches(
    client: WireClient,
    query: QueryService,
    resolve_version: VersionResolver,
    page_size: int = 7,
) -> List[str]:
    """Compare every wire endpoint against the in-process service.

    Pins the current version over the wire, resolves the same snapshot
    in-process, and walks the whole verb surface at that pin.  Returns
    a human-readable description of every divergence ([] = parity).
    """
    problems: List[str] = []
    info = client.version()
    number = info["version"]
    pinned = resolve_version(number)
    if pinned is None:
        return [f"pinned version {number} cannot be resolved in-process"]

    def check(endpoint: str, wire_payload: Any, local_payload: Any) -> None:
        if _normal(wire_payload) != _normal(local_payload):
            problems.append(f"{endpoint} diverges at version {number}")

    check("version", info, codec.encode_version_info(pinned))
    check(
        "token_order",
        client.token_order(version=number)["tokens"],
        [codec.encode_nft(nft) for nft in pinned.token_order],
    )
    check(
        "accounts",
        client.accounts(version=number)["accounts"],
        sorted(pinned.account_profiles),
    )

    # -- the confirmed listing, walked page by page over the wire ----------
    wire_records: List[Any] = []
    cursor = None
    pages = 0
    while True:
        page = client.list_confirmed(
            limit=page_size, cursor=cursor, version=number
        )
        wire_records.extend(page["records"])
        if page["total_matched"] != len(pinned.confirmed):
            problems.append(
                f"list_confirmed total_matched diverges at version {number}: "
                f"wire {page['total_matched']}, local {len(pinned.confirmed)}"
            )
            break
        if page["next_cursor"] is None:
            break
        cursor = page["next_cursor"]
        pages += 1
        if pages > len(pinned.confirmed) + 2:
            problems.append("list_confirmed pagination does not terminate")
            break
    check(
        "list_confirmed (paged walk)",
        wire_records,
        [codec.encode_record(record) for record in pinned.confirmed],
    )

    # -- filtered listings (one pass per venue and per live method) --------
    for venue in query.venues(version=pinned):
        local = query.list_confirmed(venue=venue, limit=10_000, version=pinned)
        check(
            f"list_confirmed venue={venue}",
            client.list_confirmed(venue=venue, limit=10_000, version=number),
            codec.encode_page(local),
        )
    for method in sorted({m for r in pinned.confirmed for m in r.methods}):
        local = query.list_confirmed(method=method, limit=10_000, version=pinned)
        check(
            f"list_confirmed method={method.value}",
            client.list_confirmed(
                method=method.value, limit=10_000, version=number
            ),
            codec.encode_page(local),
        )

    # -- point lookups ------------------------------------------------------
    for nft in sorted(pinned.flagged_nfts):
        check(
            f"token_status {nft}",
            client.token_status(nft.contract, nft.token_id, version=number),
            codec.encode_token_status(query.token_status(nft, version=pinned)),
        )
    clean = codec.encode_token_status(
        query.token_status("0x" + "f" * 40, 0, version=pinned)
    )
    check(
        "token_status (unknown token)",
        client.token_status("0x" + "f" * 40, 0, version=number),
        clean,
    )
    for account in sorted(pinned.account_profiles):
        check(
            f"account_profile {account}",
            client.account_profile(account, version=number),
            codec.encode_account_profile(
                query.account_profile(account, version=pinned)
            ),
        )

    # -- aggregates ----------------------------------------------------------
    check(
        "funnel_stats",
        client.funnel_stats(version=number),
        codec.encode_funnel(query.funnel_stats(version=pinned)),
    )
    check(
        "collections",
        client.collections(version=number),
        list(query.collections(version=pinned)),
    )
    check(
        "venues",
        client.venues(version=number),
        list(query.venues(version=pinned)),
    )
    for contract in query.collections(version=pinned):
        check(
            f"collection_rollup {contract}",
            client.collection_rollup(contract, version=number),
            codec.encode_collection_rollup(
                query.collection_rollup(contract, version=pinned)
            ),
        )
    for venue in query.venues(version=pinned):
        check(
            f"marketplace_rollup {venue}",
            client.marketplace_rollup(venue, version=number),
            codec.encode_marketplace_rollup(
                query.marketplace_rollup(venue, version=pinned)
            ),
        )

    # -- the alert log prefix up to the pinned version ----------------------
    wire_alerts = [
        alert
        for alert in client.alerts(since_seq=-1)["alerts"]
        if alert["seq"] <= pinned.last_seq
    ]
    local_alerts = [
        codec.encode_alert(alert)
        for alert in query.index.alerts_since(-1)
        if alert.seq <= pinned.last_seq
    ]
    check("alerts (log prefix)", wire_alerts, local_alerts)

    client.release(number)
    return problems
