"""Wire protocol for the serving layer: the network boundary of the API.

PR 4 made detection *queryable in-process*; this package makes it a
*service*: a stdlib-only, length-prefixed JSON framing protocol over
TCP exposing every :class:`~repro.serve.query.QueryService` endpoint --
point lookups, paginated listings, cached aggregates, funnel
statistics, explicit version pinning -- plus a streaming ``subscribe``
verb that replays the alert log from any sequence cursor and then
pushes live confirmations and retractions with slow-client
backpressure.

Layers (bytes up):

* :mod:`~repro.serve.wire.framing` -- 4-byte big-endian length prefix +
  UTF-8 JSON object; the recoverable/unrecoverable error taxonomy.
* :mod:`~repro.serve.wire.codec` -- deterministic JSON encodings of the
  read model (and alert decoding for stream consumers).
* :mod:`~repro.serve.wire.server` -- :class:`WireServer`, a threaded
  ``socketserver`` front end with per-connection version pins, bounded
  subscriber queues and graceful draining shutdown.
* :mod:`~repro.serve.wire.client` -- :class:`WireClient` /
  :class:`AlertStream` / :class:`RemoteQueryService`, the latter a
  drop-in for the in-process read surface so identical workloads run
  over TCP.
* :mod:`~repro.serve.wire.parity` -- the wire acceptance bar: at a
  pinned version, every wire answer equals the encoding of the
  in-process answer, mid-reorg-storm included.
"""

from repro.serve.wire.client import (
    AlertStream,
    RemotePage,
    RemoteQueryService,
    RemoteReplayCursor,
    RemoteVersion,
    WireClient,
    WireRequestError,
)
from repro.serve.wire.codec import PROTOCOL_VERSION
from repro.serve.wire.framing import (
    ConnectionClosed,
    DEFAULT_MAX_FRAME_BYTES,
    FrameDecodeError,
    FrameTooLargeError,
    TruncatedFrameError,
    WireError,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.serve.wire.parity import wire_parity_mismatches
from repro.serve.wire.server import WireServer

__all__ = [
    "AlertStream",
    "ConnectionClosed",
    "DEFAULT_MAX_FRAME_BYTES",
    "FrameDecodeError",
    "FrameTooLargeError",
    "PROTOCOL_VERSION",
    "RemotePage",
    "RemoteQueryService",
    "RemoteReplayCursor",
    "RemoteVersion",
    "TruncatedFrameError",
    "WireClient",
    "WireError",
    "WireRequestError",
    "WireServer",
    "encode_frame",
    "read_frame",
    "wire_parity_mismatches",
    "write_frame",
]
