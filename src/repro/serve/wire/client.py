"""Client side of the wire protocol.

Three layers, each one step closer to the in-process API:

* :class:`WireClient` -- one TCP connection speaking the framing
  protocol: synchronous ``request(verb, **params)`` plus
  ``subscribe()``, which flips the connection into streaming mode and
  returns an :class:`AlertStream`.
* :class:`AlertStream` -- a background reader draining pushed alert
  events into a local queue, decoding them back into real
  :class:`~repro.stream.alerts.Alert` objects.  A typed
  ``subscriber-overflow`` goodbye from the server is surfaced as
  :attr:`AlertStream.overflow_seq` (the resume cursor), not an
  exception.
* :class:`RemoteQueryService` -- a facade exposing the read surface of
  the in-process :class:`~repro.serve.query.QueryService` over the
  wire, including replay cursors, so workload drivers written against
  the in-process API (the load generator, the soak tests) run over TCP
  unchanged.
"""

from __future__ import annotations

import queue
import socket
import threading
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.chain.types import NFTKey
from repro.core.activity import DetectionMethod
from repro.serve.wire import codec
from repro.serve.wire.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    WireError,
    read_frame,
    write_frame,
)
from repro.stream.alerts import Alert


class WireRequestError(Exception):
    """The server answered ``ok: false``; carries the typed error."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class WireClient:
    """One connection to a :class:`~repro.serve.wire.server.WireServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_frame_bytes = max_frame_bytes
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._wfile = None
        self._next_id = 0
        self._streaming = False
        self._lock = threading.Lock()
        #: The ``trace`` echoed on the most recent response (None when
        #: the request carried no trace id).
        self.last_trace: Optional[str] = None

    # -- lifecycle ---------------------------------------------------------
    def connect(self) -> "WireClient":
        if self._sock is not None:
            return self
        sock = socket.create_connection((self.host, self.port), self.timeout)
        sock.settimeout(self.timeout)
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._wfile = sock.makefile("wb")
        return self

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is None:
            return
        # Shut the socket down *before* closing the buffered files: a
        # reader thread blocked inside rfile holds its lock, and
        # shutdown is what unblocks it (close would deadlock until the
        # socket timeout instead).
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        for stream in (self._rfile, self._wfile):
            try:
                stream.close()
            except (OSError, ValueError):
                pass
        sock.close()

    def __enter__(self) -> "WireClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def connected(self) -> bool:
        return self._sock is not None

    # -- request/response --------------------------------------------------
    def request(
        self, verb: str, trace_id: Optional[str] = None, **params: Any
    ) -> Any:
        """One synchronous round trip; returns the ``result`` payload.

        ``trace_id`` rides the request frame's top-level ``trace`` field
        (not a verb parameter); the server echoes it on the response and
        :attr:`last_trace` captures the echo.
        """
        if self._sock is None:
            self.connect()
        if self._streaming:
            raise RuntimeError(
                "connection is in streaming mode; open a new WireClient "
                "for request/response traffic"
            )
        with self._lock:
            self._next_id += 1
            request_id = self._next_id
            payload = {
                "id": request_id,
                "verb": verb,
                "params": {
                    key: value for key, value in params.items() if value is not None
                },
            }
            if trace_id:
                payload["trace"] = trace_id
            write_frame(self._wfile, payload)
            response = read_frame(self._rfile, self.max_frame_bytes)
            self.last_trace = response.get("trace")
        if response.get("ok"):
            return response.get("result")
        error = response.get("error") or {}
        raise WireRequestError(
            error.get("code", "unknown"), error.get("message", "unknown error")
        )

    # -- convenience verbs -------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def version(self) -> Dict[str, Any]:
        """Pin the server's current version; returns its scalar summary."""
        return self.request("version")

    def release(self, version: int) -> bool:
        return bool(self.request("release", version=version)["released"])

    def token_order(self, version: Optional[int] = None) -> Dict[str, Any]:
        return self.request("token_order", version=version)

    def accounts(self, version: Optional[int] = None) -> Dict[str, Any]:
        return self.request("accounts", version=version)

    def token_status(
        self, contract: str, token_id: int, version: Optional[int] = None
    ) -> Dict[str, Any]:
        return self.request(
            "token_status", contract=contract, token_id=token_id, version=version
        )

    def account_profile(
        self, address: str, version: Optional[int] = None
    ) -> Dict[str, Any]:
        return self.request("account_profile", address=address, version=version)

    def list_confirmed(self, **params: Any) -> Dict[str, Any]:
        return self.request("list_confirmed", **params)

    def collections(self, version: Optional[int] = None) -> List[str]:
        return self.request("collections", version=version)["collections"]

    def venues(self, version: Optional[int] = None) -> List[str]:
        return self.request("venues", version=version)["venues"]

    def collection_rollup(
        self, contract: str, version: Optional[int] = None
    ) -> Dict[str, Any]:
        return self.request("collection_rollup", contract=contract, version=version)

    def marketplace_rollup(
        self, venue: str, version: Optional[int] = None
    ) -> Dict[str, Any]:
        return self.request("marketplace_rollup", venue=venue, version=version)

    def funnel_stats(self, version: Optional[int] = None) -> Dict[str, Any]:
        return self.request("funnel_stats", version=version)

    def alerts(
        self, since_seq: int = -1, limit: Optional[int] = None
    ) -> Dict[str, Any]:
        return self.request("alerts", since_seq=since_seq, limit=limit)

    def stats(self) -> Dict[str, int]:
        return self.request("stats")

    def health(self) -> Dict[str, Any]:
        """The node's readiness snapshot (the ``health`` verb)."""
        return self.request("health")

    def trace_lookup(self, trace: str) -> Dict[str, Any]:
        """Spans, alert seqs and latency marks recorded for a trace id."""
        return self.request("trace", trace=trace)

    # -- streaming ---------------------------------------------------------
    def subscribe(self, since_seq: int = -1) -> "AlertStream":
        """Switch this connection into streaming mode.

        The server replays every alert after ``since_seq`` and then
        pushes live ones; the returned stream owns the connection from
        here on (``request`` raises).
        """
        self.request("subscribe", since_seq=since_seq)
        self._streaming = True
        return AlertStream(self)


class AlertStream:
    """Background consumer of one subscribed connection."""

    def __init__(self, client: WireClient) -> None:
        self._client = client
        self._queue: "queue.Queue" = queue.Queue()
        self.closed = threading.Event()
        #: Resume cursor from the server's overflow goodbye (None unless
        #: the server disconnected this subscriber for falling behind).
        self.overflow_seq: Optional[int] = None
        self._reader = threading.Thread(
            target=self._read_loop, name="wire-alert-stream", daemon=True
        )
        self._reader.start()

    def _read_loop(self) -> None:
        try:
            while True:
                frame = read_frame(
                    self._client._rfile, self._client.max_frame_bytes
                )
                event = frame.get("event")
                if event == "alert":
                    self._queue.put(codec.decode_alert(frame["alert"]))
                elif event == "error":
                    error = frame.get("error") or {}
                    if error.get("code") == "subscriber-overflow":
                        self.overflow_seq = frame.get("last_seq")
                    break
                # Anything else (e.g. a stray response) is ignored.
        except (WireError, OSError, ValueError):
            pass
        finally:
            self.closed.set()

    def poll(self) -> Tuple[Alert, ...]:
        """Drain every alert received so far without blocking."""
        drained: List[Alert] = []
        while True:
            try:
                drained.append(self._queue.get_nowait())
            except queue.Empty:
                return tuple(drained)

    def next(self, timeout: Optional[float] = None) -> Optional[Alert]:
        """Block up to ``timeout`` for the next alert; None on timeout."""
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def close(self, timeout: float = 5.0) -> None:
        self._client.close()
        self._reader.join(timeout=timeout)


class RemoteVersion:
    """A pinned server version, as a client-side handle.

    Quacks enough like a :class:`~repro.serve.model.ServeVersion` for
    the read workloads: the version number, the store's token ordering
    and the implicated-account listing at that version.
    """

    def __init__(
        self,
        info: Dict[str, Any],
        token_order: Tuple[NFTKey, ...],
        account_profiles: Tuple[str, ...],
    ) -> None:
        self.info = info
        self.version: int = info["version"]
        self.block: int = info["block"]
        self.last_seq: int = info["last_seq"]
        self.confirmed_activity_count: int = info["confirmed_activity_count"]
        self.token_order = token_order
        self.account_profiles = account_profiles


def _version_number(version) -> Optional[int]:
    if version is None:
        return None
    if isinstance(version, RemoteVersion):
        return version.version
    if isinstance(version, int):
        return version
    return version.version  # a ServeVersion-shaped object


class RemoteReplayCursor:
    """The wire twin of :class:`~repro.serve.query.AlertReplayCursor`.

    Runs over its own subscribed connection; :meth:`poll` drains what
    the server has pushed so far, decoded into real alerts, and
    advances :attr:`position`.
    """

    def __init__(self, host: str, port: int, since_seq: int = -1) -> None:
        self.position = since_seq
        self._client = WireClient(host, port).connect()
        self._stream = self._client.subscribe(since_seq)
        #: Alerts drained from the stream but held back by a poll limit;
        #: always consumed before fresh stream output so order holds.
        self._pending: List[Alert] = []

    def poll(self, limit: Optional[int] = None) -> Tuple[Alert, ...]:
        batch = self._pending + list(self._stream.poll())
        if limit is not None and len(batch) > limit:
            self._pending = batch[limit:]
            batch = batch[:limit]
        else:
            self._pending = []
        if batch:
            self.position = batch[-1].seq
        return tuple(batch)

    @property
    def overflowed(self) -> bool:
        return self._stream.overflow_seq is not None

    def close(self) -> None:
        self._stream.close()


class RemoteQueryService:
    """The in-process query API, served over the wire.

    Drop-in for the read surface of
    :class:`~repro.serve.query.QueryService`: point lookups, listings,
    aggregates and replay cursors -- which is exactly what
    :class:`~repro.serve.load.LoadGenerator` exercises, so the same
    mixed workload can be pointed at a socket instead of a Python
    object.  Point answers come back as decoded JSON payloads; listing
    pages keep their ``records`` / ``next_cursor`` shape.

    ``version()`` pins server-side and caches the version's token
    ordering and account listing client-side (one fetch per new
    version, not per query).
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.client = WireClient(host, port, timeout=timeout).connect()
        self._cached_version: Optional[RemoteVersion] = None
        self._cursors: List[RemoteReplayCursor] = []

    # -- versions ----------------------------------------------------------
    def version(self) -> RemoteVersion:
        info = self.client.version()
        cached = self._cached_version
        if cached is not None and cached.version == info["version"]:
            return cached
        number = info["version"]
        token_order = tuple(
            codec.decode_nft(item)
            for item in self.client.token_order(version=number)["tokens"]
        )
        accounts = tuple(self.client.accounts(version=number)["accounts"])
        fresh = RemoteVersion(info, token_order, accounts)
        self._cached_version = fresh
        return fresh

    # -- point lookups -----------------------------------------------------
    def token_status(
        self,
        nft: Union[NFTKey, str],
        token_id: Optional[int] = None,
        version=None,
    ) -> Dict[str, Any]:
        if isinstance(nft, NFTKey):
            contract, token_id = nft.contract, nft.token_id
        else:
            contract = nft
            if token_id is None:
                raise ValueError("token_id is required with a contract address")
        return self.client.token_status(
            contract, token_id, version=_version_number(version)
        )

    def account_profile(self, address: str, version=None) -> Dict[str, Any]:
        return self.client.account_profile(
            address, version=_version_number(version)
        )

    # -- listings ----------------------------------------------------------
    def list_confirmed(
        self,
        method=None,
        venue: Optional[str] = None,
        since_block: Optional[int] = None,
        limit: int = 50,
        cursor=None,
        version=None,
    ):
        if isinstance(method, DetectionMethod):
            method = method.value
        page = self.client.list_confirmed(
            method=method,
            venue=venue,
            since_block=since_block,
            limit=limit,
            cursor=codec.encode_page_cursor(cursor),
            version=_version_number(version),
        )
        return RemotePage(page)

    # -- aggregates --------------------------------------------------------
    def funnel_stats(self, version=None) -> Dict[str, Any]:
        return self.client.funnel_stats(version=_version_number(version))

    def collection_rollup(self, contract: str, version=None) -> Dict[str, Any]:
        return self.client.collection_rollup(
            contract, version=_version_number(version)
        )

    def marketplace_rollup(self, venue: str, version=None) -> Dict[str, Any]:
        return self.client.marketplace_rollup(
            venue, version=_version_number(version)
        )

    def collections(self, version=None) -> Tuple[str, ...]:
        return tuple(self.client.collections(version=_version_number(version)))

    def venues(self, version=None) -> Tuple[str, ...]:
        return tuple(self.client.venues(version=_version_number(version)))

    # -- subscriptions -----------------------------------------------------
    def replay(self, since_seq: int = -1) -> RemoteReplayCursor:
        cursor = RemoteReplayCursor(self.host, self.port, since_seq)
        self._cursors.append(cursor)
        return cursor

    def close(self) -> None:
        for cursor in self._cursors:
            cursor.close()
        self.client.close()


class RemotePage:
    """One wire page, with the cursor decoded for round-tripping."""

    def __init__(self, payload: Dict[str, Any]) -> None:
        self.payload = payload
        self.records: Tuple[Dict[str, Any], ...] = tuple(payload["records"])
        self.next_cursor = codec.decode_page_cursor(payload["next_cursor"])
        self.total_matched: int = payload["total_matched"]
        self.version: int = payload["version"]
