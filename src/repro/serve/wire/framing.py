"""Length-prefixed JSON framing: the byte layer of the wire protocol.

One frame is a 4-byte big-endian unsigned length ``N`` followed by
exactly ``N`` bytes of UTF-8 JSON encoding a single JSON object.  That
is the entire byte-level contract -- both directions, requests and
responses and pushed events alike -- so a reader is always either at a
frame boundary or inside a frame whose remaining size it knows.

The error taxonomy matters more than the happy path, because the server
must map every way a peer can violate the contract onto a *recoverable*
or *unrecoverable* outcome:

* :class:`FrameTooLargeError` -- the peer declared a length above the
  negotiated maximum.  The declared bytes were never read, so the stream
  position is unusable: respond with a typed error, then close.
* :class:`FrameDecodeError` -- the length was honest and fully read, but
  the payload is not valid UTF-8 JSON or not a JSON object.  The stream
  is still at a frame boundary: respond with a typed error and keep the
  connection.
* :class:`TruncatedFrameError` -- the peer disconnected mid-frame.
  Nothing can be sent back; close quietly.
* :class:`ConnectionClosed` -- clean EOF exactly at a frame boundary:
  the normal end of a connection, not an error.
"""

from __future__ import annotations

import json
import struct
from typing import Any, BinaryIO, Dict

#: Frames above this many payload bytes are rejected unless the caller
#: raises the limit.  Generous for the serving answers (a full confirmed
#: listing with activities attached) while bounding a hostile prefix.
DEFAULT_MAX_FRAME_BYTES = 8 * 1024 * 1024

#: The 4-byte big-endian unsigned length prefix.
_LENGTH = struct.Struct(">I")


class WireError(Exception):
    """Base of every wire-protocol failure; carries a stable code."""

    code = "wire-error"

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message


class ConnectionClosed(WireError):
    """Clean EOF at a frame boundary (the peer simply hung up)."""

    code = "connection-closed"


class TruncatedFrameError(WireError):
    """The peer disconnected in the middle of a frame."""

    code = "truncated-frame"


class FrameTooLargeError(WireError):
    """The peer declared a frame larger than the negotiated maximum."""

    code = "frame-too-large"

    def __init__(self, declared: int, limit: int) -> None:
        super().__init__(
            f"declared frame of {declared} bytes exceeds the {limit}-byte limit"
        )
        self.declared = declared
        self.limit = limit


class FrameDecodeError(WireError):
    """A well-framed payload that is not a JSON object."""

    code = "bad-json"


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """Serialize one JSON object into a complete frame (prefix + body)."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return _LENGTH.pack(len(body)) + body


def write_frame(stream: BinaryIO, payload: Dict[str, Any]) -> None:
    """Write one frame and flush it."""
    stream.write(encode_frame(payload))
    stream.flush()


def _read_exact(stream: BinaryIO, count: int, midframe: bool) -> bytes:
    """Read exactly ``count`` bytes or raise the appropriate EOF error."""
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = stream.read(remaining)
        if not chunk:
            if midframe or chunks:
                raise TruncatedFrameError(
                    f"peer disconnected {count - remaining} bytes into a "
                    f"{count}-byte read"
                )
            raise ConnectionClosed("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(
    stream: BinaryIO, max_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Dict[str, Any]:
    """Read one frame; return its decoded JSON object.

    Raises the :class:`WireError` subclass matching how the peer broke
    the contract -- see the module docstring for which ones leave the
    stream usable.
    """
    prefix = _read_exact(stream, _LENGTH.size, midframe=False)
    (length,) = _LENGTH.unpack(prefix)
    if length > max_bytes:
        raise FrameTooLargeError(length, max_bytes)
    body = _read_exact(stream, length, midframe=True) if length else b""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameDecodeError(f"payload is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise FrameDecodeError(
            f"payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload
