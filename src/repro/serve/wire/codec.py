"""JSON encodings of the serving read model (and back).

The wire protocol's value layer: every answer the in-process
:class:`~repro.serve.query.QueryService` can give has exactly one JSON
shape here, produced by an ``encode_*`` function.  The encodings are
deterministic -- sets come out sorted, enum members come out as their
values -- which is what makes wire parity checkable: the over-the-wire
answer must equal the *encoding of* the in-process answer at the same
version, byte for byte after JSON normalization.

Alerts additionally have a decoder (:func:`decode_alert`) because the
subscription stream is consumed programmatically: a remote mirror folds
confirmations and retractions by
:func:`~repro.serve.model.record_key`, which needs the activity's NFT,
account set and transfer hashes back as real objects.  The decoder
rebuilds genuine :class:`~repro.core.activity.WashTradingActivity`
instances (transfers included), so client-side code -- the load
generator's replay mirror, the reconnect tests -- runs the very same
reconciliation logic as an in-process consumer.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.chain.types import NFTKey
from repro.core.activity import (
    CandidateComponent,
    DetectionEvidence,
    DetectionMethod,
    WashTradingActivity,
)
from repro.ingest.records import ERC20Payment, NFTTransfer
from repro.serve.model import (
    AccountProfile,
    ActivityRecord,
    CollectionRollup,
    FunnelSnapshot,
    MarketplaceRollup,
    RecordKey,
    ServeVersion,
    TokenStatus,
)
from repro.serve.query import ConfirmedPage, PageCursor
from repro.stream.alerts import Alert, AlertKind

#: Protocol revision announced by ``ping``; bump on breaking changes.
PROTOCOL_VERSION = 1


# -- keys and cursors ------------------------------------------------------
def encode_nft(nft: NFTKey) -> List[Any]:
    return [nft.contract, nft.token_id]


def decode_nft(data: Sequence[Any]) -> NFTKey:
    contract, token_id = data
    return NFTKey(contract=str(contract), token_id=int(token_id))


def encode_record_key(key: RecordKey) -> List[Any]:
    contract, token_id, accounts, hashes = key
    return [contract, token_id, list(accounts), list(hashes)]


def decode_record_key(data: Sequence[Any]) -> RecordKey:
    contract, token_id, accounts, hashes = data
    return (
        str(contract),
        int(token_id),
        tuple(str(account) for account in accounts),
        tuple(str(tx_hash) for tx_hash in hashes),
    )


def encode_page_cursor(cursor: Optional[PageCursor]) -> Optional[List[Any]]:
    if cursor is None:
        return None
    seq, key = cursor
    return [seq, encode_record_key(key)]


def decode_page_cursor(data: Optional[Sequence[Any]]) -> Optional[PageCursor]:
    if data is None:
        return None
    seq, key = data
    return (int(seq), decode_record_key(key))


# -- activities ------------------------------------------------------------
def encode_transfer(transfer: NFTTransfer) -> Dict[str, Any]:
    return {
        "nft": encode_nft(transfer.nft),
        "sender": transfer.sender,
        "recipient": transfer.recipient,
        "tx_hash": transfer.tx_hash,
        "block_number": transfer.block_number,
        "timestamp": transfer.timestamp,
        "price_wei": transfer.price_wei,
        "gas_fee_wei": transfer.gas_fee_wei,
        "interacted_contract": transfer.interacted_contract,
        "marketplace": transfer.marketplace,
        "tx_sender": transfer.tx_sender,
        "erc20_payments": [
            [payment.token, payment.sender, payment.recipient, payment.amount]
            for payment in transfer.erc20_payments
        ],
    }


def decode_transfer(data: Dict[str, Any]) -> NFTTransfer:
    return NFTTransfer(
        nft=decode_nft(data["nft"]),
        sender=data["sender"],
        recipient=data["recipient"],
        tx_hash=data["tx_hash"],
        block_number=data["block_number"],
        timestamp=data["timestamp"],
        price_wei=data["price_wei"],
        gas_fee_wei=data["gas_fee_wei"],
        interacted_contract=data["interacted_contract"],
        marketplace=data["marketplace"],
        tx_sender=data["tx_sender"],
        erc20_payments=tuple(
            ERC20Payment(token=token, sender=sender, recipient=recipient, amount=amount)
            for token, sender, recipient, amount in data["erc20_payments"]
        ),
    )


def encode_activity(activity: WashTradingActivity) -> Dict[str, Any]:
    component = activity.component
    return {
        "nft": encode_nft(activity.nft),
        "accounts": sorted(component.accounts),
        "methods": sorted(method.value for method in activity.methods),
        "volume_wei": component.volume_wei,
        "transfers": [
            encode_transfer(transfer)
            for transfer in sorted(
                component.transfers,
                key=lambda t: (t.block_number, t.tx_hash, t.sender, t.recipient),
            )
        ],
        # Evidence details hold free-form detector output (addresses,
        # balances, tuples); the canonical sorted-items repr is the same
        # normalization the in-process parity fingerprint uses.
        "evidence": sorted(
            (
                {
                    "method": item.method.value,
                    "details": repr(sorted(item.details.items())),
                }
                for item in activity.evidence
            ),
            key=lambda entry: (entry["method"], entry["details"]),
        ),
    }


def decode_activity(data: Dict[str, Any]) -> WashTradingActivity:
    component = CandidateComponent(
        nft=decode_nft(data["nft"]),
        accounts=frozenset(data["accounts"]),
        transfers=tuple(decode_transfer(item) for item in data["transfers"]),
    )
    evidence = [
        DetectionEvidence(
            method=DetectionMethod(item["method"]),
            # The canonical repr string is kept verbatim: it is exactly
            # what the parity fingerprint compares, and detector output
            # types (tuples, sets) do not survive JSON anyway.
            details={"canonical": item["details"]},
        )
        for item in data["evidence"]
    ]
    return WashTradingActivity(component=component, evidence=evidence)


# -- records and point lookups ---------------------------------------------
def encode_record(record: ActivityRecord) -> Dict[str, Any]:
    return {
        "nft": encode_nft(record.nft),
        "key": encode_record_key(record.key),
        "accounts": sorted(record.accounts),
        "methods": sorted(method.value for method in record.methods),
        "volume_wei": record.volume_wei,
        "transfer_count": record.transfer_count,
        "first_block": record.first_block,
        "last_block": record.last_block,
        "marketplace": record.marketplace,
        "venue": record.venue,
        "confirmed_at_block": record.confirmed_at_block,
        "seq": record.seq,
        "activity": encode_activity(record.activity),
    }


def encode_token_status(status: TokenStatus) -> Dict[str, Any]:
    return {
        "nft": encode_nft(status.nft),
        "is_washed": status.is_washed,
        "activity_count": status.activity_count,
        "retraction_count": status.retraction_count,
        "methods": sorted(method.value for method in status.methods),
        "volume_wei": status.volume_wei,
        "last_confirmed_block": status.last_confirmed_block,
        "records": [encode_record(record) for record in status.records],
    }


def encode_account_profile(profile: AccountProfile) -> Dict[str, Any]:
    return {
        "address": profile.address,
        "is_implicated": profile.is_implicated,
        "activity_count": profile.activity_count,
        "methods": sorted(method.value for method in profile.methods),
        "volume_wei": profile.volume_wei,
        "nfts": sorted(encode_nft(nft) for nft in profile.nfts),
        "partners": sorted(profile.partners),
        "records": [encode_record(record) for record in profile.records],
    }


# -- listings --------------------------------------------------------------
def encode_page(page: ConfirmedPage) -> Dict[str, Any]:
    return {
        "records": [encode_record(record) for record in page.records],
        "next_cursor": encode_page_cursor(page.next_cursor),
        "total_matched": page.total_matched,
        "version": page.version,
    }


# -- aggregates ------------------------------------------------------------
def _encode_method_counts(counts) -> Dict[str, int]:
    return {method.value: count for method, count in sorted(counts.items())}


def encode_collection_rollup(rollup: CollectionRollup) -> Dict[str, Any]:
    return {
        "contract": rollup.contract,
        "version": rollup.version,
        "token_count": rollup.token_count,
        "flagged_token_count": rollup.flagged_token_count,
        "activity_count": rollup.activity_count,
        "volume_wei": rollup.volume_wei,
        "account_count": rollup.account_count,
        "method_counts": _encode_method_counts(rollup.method_counts),
        "retraction_count": rollup.retraction_count,
    }


def encode_marketplace_rollup(rollup: MarketplaceRollup) -> Dict[str, Any]:
    return {
        "venue": rollup.venue,
        "version": rollup.version,
        "activity_count": rollup.activity_count,
        "flagged_nft_count": rollup.flagged_nft_count,
        "volume_wei": rollup.volume_wei,
        "account_count": rollup.account_count,
        "method_counts": _encode_method_counts(rollup.method_counts),
    }


def encode_funnel(funnel: FunnelSnapshot) -> Dict[str, Any]:
    return {
        "version": funnel.version,
        "candidate_count": funnel.candidate_count,
        "confirmed_activity_count": funnel.confirmed_activity_count,
        "stages": [
            {
                "name": stage.name,
                "nft_count": stage.nft_count,
                "component_count": stage.component_count,
                "account_count": stage.account_count,
            }
            for stage in funnel.stages
        ],
    }


# -- versions --------------------------------------------------------------
def encode_version_info(version: ServeVersion) -> Dict[str, Any]:
    """The scalar summary of one published version (the ``pin`` answer)."""
    return {
        "version": version.version,
        "block": version.block,
        "last_seq": version.last_seq,
        "dirty_token_count": version.dirty_token_count,
        "reorg_depth": version.reorg_depth,
        "retracted_count": version.retracted_count,
        "newly_confirmed_count": version.newly_confirmed_count,
        "confirmed_activity_count": version.confirmed_activity_count,
        "flagged_nft_count": len(version.flagged_nfts),
        "is_revision": version.is_revision,
        "store": {
            "transfer_count": version.store_stats.transfer_count,
            "token_count": version.store_stats.token_count,
            "account_count": version.store_stats.account_count,
        },
    }


# -- alerts ----------------------------------------------------------------
def encode_alert(alert: Alert) -> Dict[str, Any]:
    return {
        "kind": alert.kind.value,
        "block": alert.block,
        "timestamp": alert.timestamp,
        "nft": None if alert.nft is None else encode_nft(alert.nft),
        "activity": (
            None if alert.activity is None else encode_activity(alert.activity)
        ),
        "watched_accounts": sorted(alert.watched_accounts),
        "reorg_depth": alert.reorg_depth,
        "fork_block": alert.fork_block,
        "seq": alert.seq,
        "trace": alert.trace,
        "slo": alert.slo,
        "budget_used": alert.budget_used,
        "detail": alert.detail,
    }


def decode_alert(data: Dict[str, Any]) -> Alert:
    return Alert(
        kind=AlertKind(data["kind"]),
        block=data["block"],
        timestamp=data["timestamp"],
        nft=None if data["nft"] is None else decode_nft(data["nft"]),
        activity=(
            None if data["activity"] is None else decode_activity(data["activity"])
        ),
        watched_accounts=frozenset(data["watched_accounts"]),
        reorg_depth=data["reorg_depth"],
        fork_block=data["fork_block"],
        seq=data["seq"],
        # .get with defaults: tolerate frames from a pre-trace peer.
        trace=data.get("trace", ""),
        slo=data.get("slo", ""),
        budget_used=data.get("budget_used", 0.0),
        detail=data.get("detail", ""),
    )
