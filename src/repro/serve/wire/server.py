"""The wire server: every QueryService endpoint over threaded TCP.

:class:`WireServer` is a :class:`socketserver.ThreadingTCPServer` that
speaks the length-prefixed JSON framing of :mod:`repro.serve.wire.framing`.
One handler thread per connection runs a request/response loop; the
dispatch table maps verbs onto the in-process
:class:`~repro.serve.query.QueryService`, so the wire surface is exactly
the in-process surface -- same snapshot isolation, same answers
(:mod:`repro.serve.wire.parity` is the checkable form of that claim).

Three protocol decisions worth knowing:

* **Version pinning is explicit and per-connection.**  The ``version``
  verb pins the current :class:`~repro.serve.model.ServeVersion` and
  returns its number; subsequent requests carrying ``"version": N`` are
  answered from that exact immutable snapshot, however many ticks or
  reorg revisions land meanwhile.  Pins live in a bounded per-connection
  LRU (oldest evicted first); querying an evicted or never-pinned number
  is a typed ``unknown-version`` error, never a silently different
  snapshot.
* **Subscriptions replay, then stream, exactly once.**  ``subscribe``
  with ``since_seq`` first replays the append-only alert log from that
  cursor, then hands over to live pushes -- the two phases are stitched
  by alert sequence number, so the stream never skips and never repeats
  even while ingest is publishing concurrently.
* **Slow subscribers get a typed error, not an unbounded buffer.**
  Live alerts are fanned out through a bounded per-connection queue; a
  consumer that cannot keep up is sent one final
  ``subscriber-overflow`` event carrying the last sequence number it
  was actually sent, then disconnected.  Reconnecting with that cursor
  resumes exactly where delivery stopped.

Failure containment is the other half of the contract: a malformed
frame, an unknown verb, bad parameters or a handler bug yield a typed
error response (or a clean close when the byte stream itself is
unusable) on *that* connection only -- other connections, the listener
and the ingest thread are never affected.
"""

from __future__ import annotations

import queue
import socket
import socketserver
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.activity import DetectionMethod
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.serve.model import ServeVersion
from repro.serve.query import QueryService
from repro.serve.wire import codec
from repro.serve.wire.framing import (
    ConnectionClosed,
    DEFAULT_MAX_FRAME_BYTES,
    FrameDecodeError,
    FrameTooLargeError,
    TruncatedFrameError,
    read_frame,
    write_frame,
)

#: How many alerts a subscription pusher replays per log read.
REPLAY_BATCH = 256

#: Default bound of the live-alert queue between the fan-out and one
#: subscribed connection; beyond it the subscriber is overflowed.
DEFAULT_SUBSCRIBER_QUEUE = 1024

#: Default size of the per-connection pinned-version LRU.
DEFAULT_MAX_PINS = 32

#: How many pinned versions the server-wide registry remembers (the
#: parity harness resolves pinned numbers back to version objects
#: through it).
PIN_REGISTRY_LIMIT = 512


class RequestError(Exception):
    """A typed request failure sent back as an error response."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


def _require(params: Dict[str, Any], name: str, kind, kind_name: str):
    value = params.get(name)
    if not isinstance(value, kind) or isinstance(value, bool):
        raise RequestError(
            "bad-request", f"parameter {name!r} must be a {kind_name}"
        )
    return value


def _optional(params: Dict[str, Any], name: str, kind, kind_name: str):
    value = params.get(name)
    if value is None:
        return None
    if not isinstance(value, kind) or isinstance(value, bool):
        raise RequestError(
            "bad-request", f"parameter {name!r} must be a {kind_name} or null"
        )
    return value


class _Subscriber:
    """Live-delivery state of one subscribed connection."""

    def __init__(self, since_seq: int, queue_size: int) -> None:
        self.queue: "queue.Queue" = queue.Queue(maxsize=queue_size)
        self.position = since_seq
        self.overflowed = False
        self.stopping = threading.Event()
        self.thread: Optional[threading.Thread] = None


class WireConnectionHandler(socketserver.StreamRequestHandler):
    """One connection's request loop; never lets a peer kill the server."""

    server: "WireServer"

    def setup(self) -> None:
        super().setup()
        self.send_lock = threading.Lock()
        self.busy = threading.Event()
        self.closed = threading.Event()
        self._pins: "OrderedDict[int, ServeVersion]" = OrderedDict()
        self._subscriber: Optional[_Subscriber] = None
        self.thread = threading.current_thread()
        self.server._register_connection(self)

    def finish(self) -> None:
        self._teardown_subscription()
        self.server._unregister_connection(self)
        self.closed.set()
        super().finish()

    # -- the request loop --------------------------------------------------
    def handle(self) -> None:
        while not self.server.closing.is_set():
            try:
                request = read_frame(self.rfile, self.server.max_frame_bytes)
            except ConnectionClosed:
                break
            except FrameTooLargeError as error:
                # The declared bytes were never read; the stream position
                # is unusable.  Typed error, then close.
                self._send_error(None, error.code, error.message)
                self.server._count("frame_errors")
                break
            except TruncatedFrameError:
                self.server._count("frame_errors")
                break
            except FrameDecodeError as error:
                # Framing was intact, only the payload was garbage: the
                # stream is still synchronized, so the connection lives.
                self._send_error(None, error.code, error.message)
                self.server._count("frame_errors")
                continue
            except (OSError, ValueError):
                break
            if not self._serve_one(request):
                break

    def _serve_one(self, request: Dict[str, Any]) -> bool:
        """Dispatch one request; False when the connection must close."""
        request_id = request.get("id")
        if request_id is not None and not isinstance(request_id, (int, str)):
            request_id = None
        # A client-injected trace id is echoed verbatim on the response
        # frame (success or error) so a caller can correlate requests
        # across its own systems; absent in, absent out.
        trace = request.get("trace")
        if not isinstance(trace, str) or not trace:
            trace = None
        # Known verbs are labeled verbatim; everything else is clamped
        # to "unknown" so a fuzzing peer cannot mint unbounded label
        # cardinality in the per-verb metric families.
        verb = request.get("verb")
        verb_label = verb if isinstance(verb, str) and verb in self.VERBS else "unknown"
        self.busy.set()
        started = time.perf_counter()
        try:
            self.server._count("requests")
            self.server.metric_requests.labels(verb=verb_label).inc()
            try:
                result = self._dispatch(request)
            except RequestError as error:
                self.server._count("request_errors")
                return self._send_error(
                    request_id, error.code, error.message, trace=trace
                )
            except Exception as error:  # noqa: BLE001 - a handler bug must
                # surface as a typed response on this connection, not as a
                # dead server thread.
                self.server._count("internal_errors")
                return self._send_error(
                    request_id,
                    "internal-error",
                    f"{type(error).__name__}: {error}",
                    trace=trace,
                )
            payload = {"id": request_id, "ok": True, "result": result}
            if trace is not None:
                payload["trace"] = trace
            sent = self._send(payload)
            # A subscribe verb flips the connection into streaming mode
            # only after its acknowledgement is on the wire, so the ok
            # response always precedes the first pushed event.
            if sent and self._subscriber is not None and self._subscriber.thread is None:
                self._start_pusher()
            return sent
        finally:
            self.server.metric_latency.labels(verb=verb_label).observe(
                time.perf_counter() - started
            )
            self.busy.clear()

    # -- sending -----------------------------------------------------------
    def _send(self, payload: Dict[str, Any]) -> bool:
        try:
            with self.send_lock:
                write_frame(self.wfile, payload)
            return True
        except (OSError, ValueError):
            return False

    def _send_error(
        self, request_id, code: str, message: str, trace: Optional[str] = None
    ) -> bool:
        payload: Dict[str, Any] = {
            "id": request_id,
            "ok": False,
            "error": {"code": code, "message": message},
        }
        if trace is not None:
            payload["trace"] = trace
        return self._send(payload)

    # -- dispatch ----------------------------------------------------------
    def _dispatch(self, request: Dict[str, Any]):
        verb = request.get("verb")
        if not isinstance(verb, str):
            raise RequestError("bad-request", "request must carry a string 'verb'")
        params = request.get("params") or {}
        if not isinstance(params, dict):
            raise RequestError("bad-request", "'params' must be an object")
        handler = self.VERBS.get(verb)
        if handler is None:
            raise RequestError("unknown-verb", f"unknown verb {verb!r}")
        return handler(self, params)

    def _resolve_pin(self, params: Dict[str, Any]) -> Optional[ServeVersion]:
        """The pinned version named by the request, or None when unpinned.

        Verbs that can answer from the *current* state pass the None
        straight through to the :class:`QueryService`: that is the
        branch served by the dirty-token-keyed aggregate cache, so an
        unpinned wire aggregate stays as cheap as an unpinned
        in-process one.
        """
        number = _optional(params, "version", int, "integer")
        if number is None:
            return None
        pinned = self._pins.get(number)
        if pinned is None:
            raise RequestError(
                "unknown-version",
                f"version {number} is not pinned on this connection "
                f"(pin with the 'version' verb; pins are evicted "
                f"oldest-first beyond {self.server.max_pins})",
            )
        self._pins.move_to_end(number)
        return pinned

    def _resolve_version(self, params: Dict[str, Any]) -> ServeVersion:
        """Like :meth:`_resolve_pin` but always a concrete snapshot."""
        pinned = self._resolve_pin(params)
        return self.server.query.version() if pinned is None else pinned

    def _pin(self, version: ServeVersion) -> None:
        self._pins[version.version] = version
        self._pins.move_to_end(version.version)
        while len(self._pins) > self.server.max_pins:
            self._pins.popitem(last=False)
        self.server._remember_pin(version)

    # -- verbs -------------------------------------------------------------
    def _verb_ping(self, params: Dict[str, Any]):
        return {"pong": True, "protocol": codec.PROTOCOL_VERSION}

    def _verb_version(self, params: Dict[str, Any]):
        version = self.server.query.version()
        self._pin(version)
        return codec.encode_version_info(version)

    def _verb_release(self, params: Dict[str, Any]):
        number = _require(params, "version", int, "integer")
        return {"released": self._pins.pop(number, None) is not None}

    def _verb_token_order(self, params: Dict[str, Any]):
        version = self._resolve_version(params)
        return {
            "version": version.version,
            "tokens": [codec.encode_nft(nft) for nft in version.token_order],
        }

    def _verb_accounts(self, params: Dict[str, Any]):
        version = self._resolve_version(params)
        return {
            "version": version.version,
            "accounts": sorted(version.account_profiles),
        }

    def _verb_token_status(self, params: Dict[str, Any]):
        version = self._resolve_pin(params)
        contract = _require(params, "contract", str, "string")
        token_id = _require(params, "token_id", int, "integer")
        status = self.server.query.token_status(
            contract, token_id, version=version
        )
        return codec.encode_token_status(status)

    def _verb_account_profile(self, params: Dict[str, Any]):
        version = self._resolve_pin(params)
        address = _require(params, "address", str, "string")
        return codec.encode_account_profile(
            self.server.query.account_profile(address, version=version)
        )

    def _verb_list_confirmed(self, params: Dict[str, Any]):
        version = self._resolve_pin(params)
        method_name = _optional(params, "method", str, "string")
        method = None
        if method_name is not None:
            try:
                method = DetectionMethod(method_name)
            except ValueError:
                raise RequestError(
                    "bad-request", f"unknown detection method {method_name!r}"
                ) from None
        venue = _optional(params, "venue", str, "string")
        since_block = _optional(params, "since_block", int, "integer")
        limit = _optional(params, "limit", int, "integer")
        limit = 50 if limit is None else limit
        if limit < 1:
            raise RequestError("bad-request", "'limit' must be >= 1")
        raw_cursor = params.get("cursor")
        try:
            cursor = codec.decode_page_cursor(raw_cursor)
        except (TypeError, ValueError, KeyError):
            raise RequestError(
                "bad-request", f"malformed pagination cursor {raw_cursor!r}"
            ) from None
        page = self.server.query.list_confirmed(
            method=method,
            venue=venue,
            since_block=since_block,
            limit=limit,
            cursor=cursor,
            version=version,
        )
        return codec.encode_page(page)

    def _verb_collections(self, params: Dict[str, Any]):
        version = self._resolve_version(params)
        return {
            "version": version.version,
            "collections": list(self.server.query.collections(version=version)),
        }

    def _verb_venues(self, params: Dict[str, Any]):
        version = self._resolve_version(params)
        return {
            "version": version.version,
            "venues": list(self.server.query.venues(version=version)),
        }

    def _verb_collection_rollup(self, params: Dict[str, Any]):
        # An unpinned rollup goes through version=None so the aggregate
        # cache serves it, exactly like the in-process API.
        version = self._resolve_pin(params)
        contract = _require(params, "contract", str, "string")
        return codec.encode_collection_rollup(
            self.server.query.collection_rollup(contract, version=version)
        )

    def _verb_marketplace_rollup(self, params: Dict[str, Any]):
        version = self._resolve_pin(params)
        venue = _require(params, "venue", str, "string")
        return codec.encode_marketplace_rollup(
            self.server.query.marketplace_rollup(venue, version=version)
        )

    def _verb_funnel_stats(self, params: Dict[str, Any]):
        version = self._resolve_pin(params)
        return codec.encode_funnel(
            self.server.query.funnel_stats(version=version)
        )

    def _verb_alerts(self, params: Dict[str, Any]):
        since_seq = _optional(params, "since_seq", int, "integer")
        since_seq = -1 if since_seq is None else since_seq
        limit = _optional(params, "limit", int, "integer")
        if limit is not None and limit < 1:
            raise RequestError("bad-request", "'limit' must be >= 1")
        batch = self.server.index.alerts_since(since_seq, limit)
        return {
            "alerts": [codec.encode_alert(alert) for alert in batch],
            "last_seq": self.server.index.last_seq,
        }

    def _verb_stats(self, params: Dict[str, Any]):
        # The flat socket counters keep their historical top-level keys;
        # the full cross-layer registry snapshot (per-verb latency
        # histograms, tick-stage timings, cache ratios, reorg counters)
        # rides alongside under "metrics".
        stats: Dict[str, Any] = dict(self.server.stats())
        # How many read-model shards sit behind the query surface (1
        # when unsharded) -- lets an operator confirm the topology the
        # service actually runs without scraping labeled metrics.
        stats["shards"] = getattr(self.server.query.index, "shard_count", 1)
        stats["metrics"] = self.server.metrics_snapshot()
        return stats

    def _verb_health(self, params: Dict[str, Any]):
        # The owning ServeService supplies the full readiness picture
        # (ingest liveness, publish lag, SLO budgets); a bare wire
        # server still answers with its own socket-layer view so the
        # probe CLI works against any node.
        provider = self.server.health_snapshot
        if provider is not None:
            return provider()
        return {"status": "ok", "wire": self.server.health_stats()}

    def _verb_trace(self, params: Dict[str, Any]):
        """Everything the node remembers about one trace id: the tick's
        spans (from the span ring) and the alert seqs it published."""
        trace = _require(params, "trace", str, "string")
        spans = [
            record.as_dict()
            for record in self.server.registry.recent_spans()
            if record.trace == trace
        ]
        # Alerts sharing a trace are one tick's contiguous block of the
        # append-only log, so a reverse scan can stop at the first
        # non-matching alert after the block.
        alert_seqs: List[int] = []
        log = self.server.index.alerts_since(-1)
        for alert in reversed(log):
            if alert.trace == trace:
                alert_seqs.append(alert.seq)
            elif alert_seqs:
                break
        alert_seqs.reverse()
        return {
            "trace": trace,
            "spans": spans,
            "alert_seqs": alert_seqs,
            "found": bool(spans or alert_seqs),
            "marks": dict(self.server.registry.latency.marks(trace)),
        }

    def _verb_subscribe(self, params: Dict[str, Any]):
        if self._subscriber is not None:
            raise RequestError(
                "already-subscribed", "this connection is already streaming"
            )
        since_seq = _optional(params, "since_seq", int, "integer")
        since_seq = -1 if since_seq is None else since_seq
        last_seq = self.server.index.last_seq
        if since_seq > last_seq:
            # A cursor from some other server (or a typo) would make the
            # seq-stitched delivery silently drop everything until the
            # log catches up to the bogus position; refuse it instead.
            raise RequestError(
                "cursor-above-horizon",
                f"since_seq {since_seq} is beyond the newest alert "
                f"({last_seq}); resubscribe with a cursor the server "
                f"actually issued",
            )
        subscriber = _Subscriber(since_seq, self.server.subscriber_queue_size)
        # Register for live fan-out *before* the replay starts so no
        # alert can fall between the phases; duplicates are dropped by
        # sequence number in the pusher.
        self._subscriber = subscriber
        self.server._register_subscriber(subscriber)
        return {"subscribed": True, "since_seq": since_seq}

    def _verb_unsubscribe(self, params: Dict[str, Any]):
        if self._subscriber is None:
            return {"unsubscribed": False}
        self._teardown_subscription()
        return {"unsubscribed": True}

    VERBS: Dict[str, Callable] = {
        "ping": _verb_ping,
        "version": _verb_version,
        "release": _verb_release,
        "token_order": _verb_token_order,
        "accounts": _verb_accounts,
        "token_status": _verb_token_status,
        "account_profile": _verb_account_profile,
        "list_confirmed": _verb_list_confirmed,
        "collections": _verb_collections,
        "venues": _verb_venues,
        "collection_rollup": _verb_collection_rollup,
        "marketplace_rollup": _verb_marketplace_rollup,
        "funnel_stats": _verb_funnel_stats,
        "alerts": _verb_alerts,
        "stats": _verb_stats,
        "health": _verb_health,
        "trace": _verb_trace,
        "subscribe": _verb_subscribe,
        "unsubscribe": _verb_unsubscribe,
    }

    # -- subscription delivery ---------------------------------------------
    def _start_pusher(self) -> None:
        subscriber = self._subscriber
        if subscriber is None:
            return
        subscriber.thread = threading.Thread(
            target=self._push_alerts,
            args=(subscriber,),
            name="wire-subscription",
            daemon=True,
        )
        subscriber.thread.start()

    def _push_alerts(self, subscriber: _Subscriber) -> None:
        """Replay from the cursor, then stream live -- exactly once."""
        index = self.server.index
        try:
            # Phase 1: catch up from the append-only log.  Live alerts
            # published meanwhile land in the queue too; the sequence
            # check below deduplicates the overlap.
            while not subscriber.stopping.is_set():
                batch = index.alerts_since(subscriber.position, REPLAY_BATCH)
                if not batch:
                    break
                for alert in batch:
                    if not self._push_alert_frame(alert):
                        return
                    subscriber.position = alert.seq
            # Phase 2: live queue.
            while not subscriber.stopping.is_set():
                if subscriber.overflowed and subscriber.queue.empty():
                    break
                try:
                    alert = subscriber.queue.get(timeout=0.05)
                except queue.Empty:
                    continue
                if alert is None or alert.seq <= subscriber.position:
                    continue
                if not self._push_alert_frame(alert):
                    return
                subscriber.position = alert.seq
            if subscriber.overflowed and not subscriber.stopping.is_set():
                # One typed goodbye carrying the resume cursor, then the
                # connection is closed: bounded memory, no silent gaps.
                self.server._count("overflows")
                self._send_event(
                    {
                        "event": "error",
                        "error": {
                            "code": "subscriber-overflow",
                            "message": (
                                "subscriber too slow; resubscribe with "
                                f"since_seq={subscriber.position} to resume"
                            ),
                        },
                        "last_seq": subscriber.position,
                    }
                )
                self._shutdown_socket()
        finally:
            self.server._unregister_subscriber(subscriber)

    def _send_event(self, payload: Dict[str, Any]) -> bool:
        return self._send(payload)

    def _push_alert_frame(self, alert) -> bool:
        """Write one alert event; server-stamps the tick's trace id on
        the frame and closes the latency ledger after the write."""
        payload: Dict[str, Any] = {
            "event": "alert",
            "alert": codec.encode_alert(alert),
        }
        if alert.trace:
            payload["trace"] = alert.trace
        if not self._send_event(payload):
            return False
        # The end of the measured pipeline: the frame reached the
        # subscriber's socket.  Re-observes deliver/total per frame.
        self.server.registry.latency.mark(alert.trace, "socket_write")
        return True

    def _teardown_subscription(self) -> None:
        subscriber = self._subscriber
        if subscriber is None:
            return
        self._subscriber = None
        subscriber.stopping.set()
        self.server._unregister_subscriber(subscriber)
        if (
            subscriber.thread is not None
            and subscriber.thread is not threading.current_thread()
        ):
            subscriber.thread.join(timeout=5)

    def _shutdown_socket(self) -> None:
        try:
            self.connection.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass


class WireServer(socketserver.ThreadingTCPServer):
    """Threaded TCP front end over one :class:`QueryService`."""

    daemon_threads = True
    allow_reuse_address = True
    block_on_close = False

    def __init__(
        self,
        query: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        subscriber_queue_size: int = DEFAULT_SUBSCRIBER_QUEUE,
        max_pins: int = DEFAULT_MAX_PINS,
        registry: Optional[MetricsRegistry] = None,
        metrics_snapshot: Optional[Callable[[], Dict[str, Any]]] = None,
        health_snapshot: Optional[Callable[[], Dict[str, Any]]] = None,
    ) -> None:
        self.query = query
        self.index = query.index
        self.registry = (
            registry
            if registry is not None
            else getattr(query.index, "registry", None) or NULL_REGISTRY
        )
        #: Cross-layer snapshot hook for the ``stats`` verb; the owning
        #: ServeService passes its own so wire clients see every layer,
        #: not just the wire's instruments.
        self._metrics_snapshot = metrics_snapshot or self.registry.snapshot
        #: Readiness hook for the ``health`` verb; the owning
        #: ServeService passes :meth:`ServeService.health_snapshot`.
        #: None on a bare server -- the verb then answers from
        #: :meth:`health_stats` alone.
        self.health_snapshot = health_snapshot
        self.metric_requests = self.registry.counter(
            "wire_requests_total", "Wire requests dispatched, labeled by verb.",
            labels=("verb",),
        )
        self.metric_latency = self.registry.histogram(
            "wire_request_seconds",
            "Wire request handling latency, labeled by verb.",
            labels=("verb",),
        )
        self.registry.register_collector(self._collect_metrics)
        self.max_frame_bytes = max_frame_bytes
        self.subscriber_queue_size = subscriber_queue_size
        self.max_pins = max_pins
        self.closing = threading.Event()
        self._lock = threading.Lock()
        self._connections: List[WireConnectionHandler] = []
        self._subscribers: List[_Subscriber] = []
        self._fanout_position = self.index.last_seq
        self._counters: Dict[str, int] = {
            "connections": 0,
            "requests": 0,
            "request_errors": 0,
            "internal_errors": 0,
            "frame_errors": 0,
            "overflows": 0,
        }
        self._pin_registry: "OrderedDict[int, ServeVersion]" = OrderedDict()
        self._serve_thread: Optional[threading.Thread] = None
        super().__init__((host, port), WireConnectionHandler)
        # Live alerts flow to subscribers on the publishing (ingest)
        # thread; the index isolates subscriber exceptions, so a wire
        # failure can never abort a tick.
        self.index.subscribe_versions(self._fan_out)

    # -- lifecycle ---------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) -- port is concrete even when 0 was asked."""
        return self.server_address[0], self.server_address[1]

    def start(self) -> "WireServer":
        """Serve connections on a background daemon thread."""
        if self._serve_thread is not None:
            raise RuntimeError("wire server already started")
        self._serve_thread = threading.Thread(
            target=self.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="wire-accept",
            daemon=True,
        )
        self._serve_thread.start()
        return self

    def close(self, timeout: float = 10.0) -> None:
        """Graceful shutdown: stop accepting, drain in-flight, close.

        In-flight requests get their responses; idle and subscribed
        connections are then disconnected; finally every handler thread
        is joined.  Safe to call more than once.
        """
        if self.closing.is_set():
            return
        self.closing.set()
        if self._serve_thread is not None:
            self.shutdown()  # stops serve_forever
            self._serve_thread.join(timeout=timeout)
        self.server_close()  # closes the listener socket
        with self._lock:
            connections = list(self._connections)
        deadline = threading.Event()
        for connection in connections:
            # Drain: let the response of an in-flight request reach the
            # wire before the socket is torn down.
            waited = 0.0
            while connection.busy.is_set() and waited < timeout:
                deadline.wait(0.01)
                waited += 0.01
            connection._teardown_subscription()
            connection._shutdown_socket()
        for connection in connections:
            if connection.thread is not threading.current_thread():
                connection.thread.join(timeout=timeout)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            snapshot = dict(self._counters)
            snapshot["active_connections"] = len(self._connections)
            snapshot["active_subscribers"] = len(self._subscribers)
        return snapshot

    def subscriber_queue_pressure(self) -> float:
        """Worst-case fullness of any live subscriber queue (0..1).

        The health surface's early-warning signal: a subscriber at 1.0
        is about to be overflowed and disconnected.
        """
        with self._lock:
            subscribers = list(self._subscribers)
        pressure = 0.0
        for subscriber in subscribers:
            size = subscriber.queue.maxsize or 1
            pressure = max(pressure, subscriber.queue.qsize() / size)
        return pressure

    def health_stats(self) -> Dict[str, Any]:
        """The wire slice of the health surface."""
        stats = self.stats()
        return {
            "active_connections": stats["active_connections"],
            "active_subscribers": stats["active_subscribers"],
            "requests": stats["requests"],
            "request_errors": stats["request_errors"],
            "internal_errors": stats["internal_errors"],
            "frame_errors": stats["frame_errors"],
            "overflows": stats["overflows"],
            "subscriber_queue_pressure": self.subscriber_queue_pressure(),
        }

    def _collect_metrics(self) -> Dict[str, Dict[str, float]]:
        """Registry collector: the socket-layer counters and live levels.

        These already exist in ``_counters`` (asserted by the wire test
        batteries), so the registry polls them at snapshot time instead
        of double-counting on the hot path.
        """
        stats = self.stats()
        return {
            "counters": {
                "wire_connections_total": stats["connections"],
                "wire_request_errors_total": stats["request_errors"],
                "wire_internal_errors_total": stats["internal_errors"],
                "wire_frame_errors_total": stats["frame_errors"],
                "wire_subscriber_overflows_total": stats["overflows"],
            },
            "gauges": {
                "wire_active_connections": stats["active_connections"],
                "wire_active_subscribers": stats["active_subscribers"],
            },
        }

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The cross-layer metrics view the ``stats`` verb returns."""
        return self._metrics_snapshot()

    def lookup_version(self, number: int) -> Optional[ServeVersion]:
        """Resolve a pinned version number back to its snapshot.

        The server remembers recently pinned versions so an in-process
        harness (the parity checks, the benchmarks) can compare wire
        answers at version ``N`` against in-process answers from the
        very same immutable object.
        """
        with self._lock:
            return self._pin_registry.get(number)

    # -- internals ---------------------------------------------------------
    def _count(self, key: str) -> None:
        with self._lock:
            self._counters[key] += 1

    def _remember_pin(self, version: ServeVersion) -> None:
        with self._lock:
            self._pin_registry[version.version] = version
            while len(self._pin_registry) > PIN_REGISTRY_LIMIT:
                self._pin_registry.popitem(last=False)

    def _register_connection(self, connection: WireConnectionHandler) -> None:
        with self._lock:
            self._connections.append(connection)
            self._counters["connections"] += 1

    def _unregister_connection(self, connection: WireConnectionHandler) -> None:
        with self._lock:
            if connection in self._connections:
                self._connections.remove(connection)

    def _register_subscriber(self, subscriber: _Subscriber) -> None:
        with self._lock:
            self._subscribers.append(subscriber)

    def _unregister_subscriber(self, subscriber: _Subscriber) -> None:
        with self._lock:
            if subscriber in self._subscribers:
                self._subscribers.remove(subscriber)

    def _fan_out(self, version: ServeVersion) -> None:
        """Push this tick's alerts to every live subscriber queue."""
        batch = self.index.alerts_since(self._fanout_position)
        if not batch:
            return
        self._fanout_position = batch[-1].seq
        ledger = self.registry.latency
        marked: set = set()
        for alert in batch:
            if alert.trace and alert.trace not in marked:
                marked.add(alert.trace)
                ledger.mark(alert.trace, "fanout_enqueue")
        with self._lock:
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            if subscriber.overflowed:
                continue
            for alert in batch:
                try:
                    subscriber.queue.put_nowait(alert)
                except queue.Full:
                    # Stop feeding this subscriber: what is queued stays a
                    # contiguous prefix, everything after it is dropped
                    # and the pusher sends the typed overflow goodbye.
                    subscriber.overflowed = True
                    break

    def handle_error(self, request, client_address) -> None:
        # A handler-thread crash is already surfaced as an internal-error
        # response where possible; never let socketserver print a
        # traceback over the serving output or kill the acceptor.
        self._count("internal_errors")
