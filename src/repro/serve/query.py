"""The concurrent query API over the versioned read model.

Every public method resolves the *current* version once (a single
atomic reference read) and answers entirely from that immutable
snapshot -- concurrent monitor ticks can publish new versions mid-query
without the answer ever mixing two states.  Callers can also pin a
version explicitly (``version=``) to ask several questions against the
same consistent state; explicitly pinned versions bypass the aggregate
cache, which only tracks the current generation.

Three query families:

* **Point lookups** -- :meth:`token_status`, :meth:`account_profile`:
  O(1) dictionary reads.
* **Listings** -- :meth:`list_confirmed`: filtered, paginated scans
  over the version's confirmed records with a stable ``(seq, key)``
  cursor, so pages never skip or duplicate records while the filter
  result is stable.
* **Aggregates** -- :meth:`funnel_stats`, :meth:`collection_rollup`,
  :meth:`marketplace_rollup`: O(tokens)/O(records) computations served
  through the dirty-token-keyed :class:`~repro.serve.cache.AggregateCache`.

Subscription cursors (:meth:`replay`) expose the monitor's alert
sequence numbers: a consumer that remembers the last ``seq`` it applied
can always catch back up -- including the ``ACTIVITY_RETRACTED``
revisions it must not miss.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.chain.types import NFTKey
from repro.core.activity import DetectionMethod
from repro.engine.refine import STAGE_NAMES, StageAccumulator
from repro.engine.views import tokens_per_collection
from repro.serve.cache import (
    AggregateCache,
    FUNNEL_SCOPE,
    collection_scope,
    venue_scope,
)
from repro.serve.index import ServeIndex
from repro.serve.model import (
    AccountProfile,
    ActivityRecord,
    CollectionRollup,
    FunnelSnapshot,
    MarketplaceRollup,
    RecordKey,
    ServeVersion,
    TokenStatus,
)
from repro.stream.alerts import Alert

#: Opaque pagination cursor: the (seq, key) sort coordinate of the last
#: record of the previous page.
PageCursor = Tuple[int, RecordKey]


@dataclass(frozen=True)
class ConfirmedPage:
    """One page of a filtered confirmed-activity listing."""

    records: Tuple[ActivityRecord, ...]
    #: Pass back as ``cursor=`` to fetch the next page; None when this
    #: page exhausted the listing.
    next_cursor: Optional[PageCursor]
    #: Records matching the filter across all pages.
    total_matched: int
    #: Version the page was served from (stable pagination requires
    #: passing it back via ``version=`` on subsequent pages).
    version: int


class AlertReplayCursor:
    """A resumable subscription over the append-only alert stream.

    Holds a position (the last consumed ``seq``); :meth:`poll` returns
    everything published since and advances.  Late joiners start from
    ``since_seq=-1`` and replay the full history -- confirmations and
    the retraction revisions alike, in publication order.
    """

    def __init__(self, index: ServeIndex, since_seq: int = -1) -> None:
        self._index = index
        self.position = since_seq

    @property
    def lag(self) -> int:
        """Alerts published but not yet consumed by this cursor."""
        return self._index.last_seq - self.position

    def poll(self, limit: Optional[int] = None) -> Tuple[Alert, ...]:
        """Consume (up to ``limit``) alerts after the cursor position."""
        batch = self._index.alerts_since(self.position, limit)
        if batch:
            self.position = batch[-1].seq
        return batch


class QueryService:
    """Thread-safe read API over a :class:`ServeIndex`."""

    def __init__(
        self, index: ServeIndex, cache: Optional[AggregateCache] = None
    ) -> None:
        self.index = index
        self.cache = cache

    # -- versions ----------------------------------------------------------
    def version(self) -> ServeVersion:
        """Pin the current version (the snapshot-isolation handle)."""
        return self.index.current

    # -- point lookups -----------------------------------------------------
    def token_status(
        self,
        nft: Union[NFTKey, str],
        token_id: Optional[int] = None,
        version: Optional[ServeVersion] = None,
    ) -> TokenStatus:
        """Wash status of one NFT (``NFTKey`` or contract + token id)."""
        if not isinstance(nft, NFTKey):
            if token_id is None:
                raise ValueError("token_id is required with a contract address")
            nft = NFTKey(contract=nft, token_id=token_id)
        return (version or self.version()).status_of(nft)

    def account_profile(
        self, address: str, version: Optional[ServeVersion] = None
    ) -> AccountProfile:
        """Involvement summary of one account (empty when clean)."""
        return (version or self.version()).profile_of(address)

    # -- listings ----------------------------------------------------------
    def list_confirmed(
        self,
        method: Optional[DetectionMethod] = None,
        venue: Optional[str] = None,
        since_block: Optional[int] = None,
        limit: int = 50,
        cursor: Optional[PageCursor] = None,
        version: Optional[ServeVersion] = None,
    ) -> ConfirmedPage:
        """Filtered, paginated listing of currently confirmed activities.

        ``method`` keeps activities confirmed by that technique;
        ``venue`` keeps activities whose dominant marketplace matches
        (:data:`~repro.serve.model.OFF_MARKET` selects venue-less
        activity); ``since_block`` keeps activities confirmed at or
        after the block.  Records come out in confirmation order.
        """
        if limit < 1:
            raise ValueError("limit must be >= 1")
        pinned = version or self.version()
        matched = [
            record
            for record in pinned.confirmed
            if (method is None or method in record.methods)
            and (venue is None or record.venue == venue)
            and (since_block is None or record.confirmed_at_block >= since_block)
        ]
        start = 0
        if cursor is not None:
            while start < len(matched) and (
                (matched[start].seq, matched[start].key) <= cursor
            ):
                start += 1
        page = tuple(matched[start : start + limit])
        exhausted = start + limit >= len(matched)
        return ConfirmedPage(
            records=page,
            next_cursor=(
                None if exhausted or not page else (page[-1].seq, page[-1].key)
            ),
            total_matched=len(matched),
            version=pinned.version,
        )

    # -- aggregates (cached) -----------------------------------------------
    def funnel_stats(self, version: Optional[ServeVersion] = None) -> FunnelSnapshot:
        """Live refinement-funnel statistics (batch-identical)."""
        if version is not None:
            return self._compute_funnel(version)
        # The version is resolved inside the compute closure, *after*
        # the cache captured its scope generations: a tick racing the
        # query can only make the computed value fresher than the
        # captured generations (and the store is then discarded), never
        # staler -- see AggregateCache.get_or_compute.
        return self._cached(
            ("funnel",),
            (FUNNEL_SCOPE,),
            lambda: self._compute_funnel(self.version()),
        )

    def collection_rollup(
        self, contract: str, version: Optional[ServeVersion] = None
    ) -> CollectionRollup:
        """Aggregate wash status of one contract."""
        if version is not None:
            return self._compute_collection(version, contract)
        return self._cached(
            ("collection", contract),
            (collection_scope(contract),),
            lambda: self._compute_collection(self.version(), contract),
        )

    def marketplace_rollup(
        self, venue: str, version: Optional[ServeVersion] = None
    ) -> MarketplaceRollup:
        """Aggregate wash status of one venue (by dominant marketplace)."""
        if version is not None:
            return self._compute_marketplace(version, venue)
        return self._cached(
            ("venue", venue),
            (venue_scope(venue),),
            lambda: self._compute_marketplace(self.version(), venue),
        )

    def collections(self, version: Optional[ServeVersion] = None) -> Tuple[str, ...]:
        """Every contract known to the store, in first-seen order."""
        pinned = version or self.version()
        seen = dict.fromkeys(nft.contract for nft in pinned.token_order)
        return tuple(seen)

    def venues(self, version: Optional[ServeVersion] = None) -> Tuple[str, ...]:
        """Venues carrying at least one confirmed activity, sorted."""
        pinned = version or self.version()
        return tuple(sorted({record.venue for record in pinned.confirmed}))

    # -- subscriptions -----------------------------------------------------
    def replay(self, since_seq: int = -1) -> AlertReplayCursor:
        """A resumable alert cursor starting after ``since_seq``."""
        return AlertReplayCursor(self.index, since_seq)

    # -- internals ---------------------------------------------------------
    def _cached(self, key, scopes, compute):
        if self.cache is None:
            return compute()
        return self.cache.get_or_compute(key, scopes, compute)

    @staticmethod
    def _compute_funnel(version: ServeVersion) -> FunnelSnapshot:
        merged = [StageAccumulator(name=name) for name in STAGE_NAMES]
        candidate_count = 0
        for state in version.token_states.values():
            candidate_count += len(state.candidates)
            for accumulator, stage in zip(merged, state.stages):
                accumulator.merge(stage)
        return FunnelSnapshot(
            version=version.version,
            stages=tuple(accumulator.to_stage() for accumulator in merged),
            candidate_count=candidate_count,
            confirmed_activity_count=version.confirmed_activity_count,
        )

    @staticmethod
    def _compute_collection(
        version: ServeVersion, contract: str
    ) -> CollectionRollup:
        token_count = tokens_per_collection(version.token_order).get(contract, 0)
        records = [
            record for record in version.confirmed if record.nft.contract == contract
        ]
        methods: Counter = Counter()
        accounts = set()
        for record in records:
            methods.update(record.methods)
            accounts.update(record.accounts)
        retractions = sum(
            status.retraction_count
            for nft, status in version.token_status.items()
            if nft.contract == contract
        )
        return CollectionRollup(
            contract=contract,
            version=version.version,
            token_count=token_count,
            flagged_token_count=len({record.nft for record in records}),
            activity_count=len(records),
            volume_wei=sum(record.volume_wei for record in records),
            account_count=len(accounts),
            method_counts=dict(methods),
            retraction_count=retractions,
        )

    @staticmethod
    def _compute_marketplace(
        version: ServeVersion, venue: str
    ) -> MarketplaceRollup:
        records = [record for record in version.confirmed if record.venue == venue]
        methods: Counter = Counter()
        accounts = set()
        for record in records:
            methods.update(record.methods)
            accounts.update(record.accounts)
        return MarketplaceRollup(
            venue=venue,
            version=version.version,
            activity_count=len(records),
            flagged_nft_count=len({record.nft for record in records}),
            volume_wei=sum(record.volume_wei for record in records),
            account_count=len(accounts),
            method_counts=dict(methods),
        )
