"""The serving layer's read model: immutable, versioned query records.

Everything here is frozen.  A :class:`ServeVersion` is one published,
never-mutated view of the monitor's detection state; queries issued
against it keep seeing exactly that state no matter how many ticks (or
reorg rollbacks) happen afterwards -- snapshot isolation by
construction, not by locking.  The maps inside a version are plain
dicts for speed; they are built fresh per publish and must be treated
as read-only by consumers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from repro.chain.types import NFTKey
from repro.core.activity import DetectionMethod, WashTradingActivity
from repro.core.refine import FunnelStage
from repro.engine.views import StoreStats
from repro.stream.scheduler import TokenState

#: Venue name used for confirmed activities whose dominant marketplace
#: is None (the component traded without touching a known venue).
OFF_MARKET = "off-market"

#: Stable identity of one confirmed activity across recomputations and
#: revisions: (contract, token id, sorted accounts, sorted tx hashes).
#: Matches the scheduler's diff identity, with the NFT made explicit so
#: keys are unique store-wide.
RecordKey = Tuple[str, int, Tuple[str, ...], Tuple[str, ...]]


def record_key(activity: WashTradingActivity) -> RecordKey:
    """The serving-layer identity of one confirmed activity."""
    return (
        activity.nft.contract,
        activity.nft.token_id,
        tuple(sorted(activity.accounts)),
        tuple(sorted(t.tx_hash for t in activity.component.transfers)),
    )


@dataclass(frozen=True)
class ActivityRecord:
    """One currently confirmed activity, as the query API serves it.

    ``seq`` / ``confirmed_at_block`` pin *when this identity was
    announced* (the ACTIVITY_CONFIRMED alert); they survive evidence
    drift -- a still-confirmed activity whose method set evolves keeps
    its original confirmation coordinates while ``methods`` tracks the
    current truth.
    """

    nft: NFTKey
    accounts: FrozenSet[str]
    methods: FrozenSet[DetectionMethod]
    volume_wei: int
    transfer_count: int
    #: Block range of the activity's own wash trades.
    first_block: int
    last_block: int
    #: Dominant venue (None when the activity traded off-market).
    marketplace: Optional[str]
    #: Head block of the tick that confirmed this identity.
    confirmed_at_block: int
    #: Alert sequence number of the confirmation (-1 only when the
    #: serving index attached after the identity was already confirmed).
    seq: int
    #: The full activity object, for drill-down queries and parity
    #: checks (compared by identity key, not by value).
    activity: WashTradingActivity = field(compare=False, repr=False)

    @property
    def key(self) -> RecordKey:
        return record_key(self.activity)

    @property
    def venue(self) -> str:
        """The rollup venue name (OFF_MARKET for venue-less activity)."""
        return self.marketplace if self.marketplace is not None else OFF_MARKET

    @classmethod
    def from_activity(
        cls, activity: WashTradingActivity, seq: int, confirmed_at_block: int
    ) -> "ActivityRecord":
        component = activity.component
        return cls(
            nft=activity.nft,
            accounts=component.accounts,
            methods=frozenset(activity.methods),
            volume_wei=component.volume_wei,
            transfer_count=component.transfer_count,
            first_block=min(t.block_number for t in component.transfers),
            last_block=max(t.block_number for t in component.transfers),
            marketplace=component.dominant_marketplace(),
            confirmed_at_block=confirmed_at_block,
            seq=seq,
            activity=activity,
        )


@dataclass(frozen=True)
class TokenStatus:
    """Per-NFT wash status: the point-lookup answer of the query API."""

    nft: NFTKey
    #: Currently confirmed activities of this token, in confirmation
    #: (seq) order.  Empty means "clean as of this version".
    records: Tuple[ActivityRecord, ...] = ()
    #: Lifetime retractions this token has been through (reset when the
    #: token empties out entirely -- a reorg-vanished token that
    #: reappears is a brand-new token, matching the scheduler).
    retraction_count: int = 0

    @property
    def is_washed(self) -> bool:
        return bool(self.records)

    @property
    def activity_count(self) -> int:
        return len(self.records)

    @property
    def methods(self) -> FrozenSet[DetectionMethod]:
        """Union of confirmation methods across current activities."""
        merged: set = set()
        for record in self.records:
            merged |= record.methods
        return frozenset(merged)

    @property
    def volume_wei(self) -> int:
        return sum(record.volume_wei for record in self.records)

    @property
    def last_confirmed_block(self) -> int:
        """Newest confirmation block (-1 for a clean token)."""
        if not self.records:
            return -1
        return max(record.confirmed_at_block for record in self.records)


@dataclass(frozen=True)
class AccountProfile:
    """Per-account involvement summary across confirmed activities."""

    address: str
    #: Every current confirmed activity the account participates in,
    #: in confirmation (seq) order.  Empty = not currently implicated.
    records: Tuple[ActivityRecord, ...] = ()

    @property
    def is_implicated(self) -> bool:
        return bool(self.records)

    @property
    def activity_count(self) -> int:
        return len(self.records)

    @property
    def nfts(self) -> FrozenSet[NFTKey]:
        return frozenset(record.nft for record in self.records)

    @property
    def methods(self) -> FrozenSet[DetectionMethod]:
        merged: set = set()
        for record in self.records:
            merged |= record.methods
        return frozenset(merged)

    @property
    def volume_wei(self) -> int:
        """Artificial volume of every activity the account is part of."""
        return sum(record.volume_wei for record in self.records)

    @property
    def partners(self) -> FrozenSet[str]:
        """Other accounts this one colluded with, across activities."""
        merged: set = set()
        for record in self.records:
            merged |= record.accounts
        merged.discard(self.address)
        return frozenset(merged)


@dataclass(frozen=True)
class CollectionRollup:
    """Aggregate wash status of one contract (collection)."""

    contract: str
    #: Version the rollup was computed against.
    version: int
    #: Tokens of the collection known to the store at that version.
    token_count: int
    flagged_token_count: int
    activity_count: int
    volume_wei: int
    account_count: int
    #: Confirmations per method across the collection's activities.
    method_counts: Mapping[DetectionMethod, int]
    retraction_count: int


@dataclass(frozen=True)
class MarketplaceRollup:
    """Aggregate wash status of one venue (by dominant marketplace)."""

    venue: str
    version: int
    activity_count: int
    flagged_nft_count: int
    volume_wei: int
    account_count: int
    method_counts: Mapping[DetectionMethod, int]


@dataclass(frozen=True)
class FunnelSnapshot:
    """Live refinement-funnel statistics, batch-identical per version."""

    version: int
    #: The four funnel stages, equal to a batch run's
    #: ``result.refinement.stages`` over the same chain prefix.
    stages: Tuple[FunnelStage, ...]
    candidate_count: int
    confirmed_activity_count: int


@dataclass(frozen=True)
class ServeVersion:
    """One published, immutable view of the monitor's detection state.

    Published by the :class:`~repro.serve.index.ServeIndex` after every
    monitor tick (version numbers are the monitor's tick numbers, so
    they are strictly monotone; version 0 is the empty pre-ingest
    state).  Reorg revisions are ordinary versions with
    ``retracted_count``/``reorg_depth`` set -- a previously published
    version is never touched, so a reader holding one keeps a fully
    consistent pre-revision view.
    """

    version: int
    #: Highest chain block reflected by this version.
    block: int
    #: Highest alert sequence number folded into this version (-1 when
    #: no alert has ever been published).
    last_seq: int
    dirty_token_count: int
    reorg_depth: int
    retracted_count: int
    newly_confirmed_count: int
    #: Every currently confirmed activity, ordered by (seq, key).
    confirmed: Tuple[ActivityRecord, ...]
    #: Wash status per flagged token (clean tokens are absent; use
    #: :meth:`status_of` for a uniform answer).
    token_status: Mapping[NFTKey, TokenStatus]
    #: Involvement summaries per currently implicated account.
    account_profiles: Mapping[str, AccountProfile]
    #: Per-token scheduler states captured at publish time (shared
    #: immutable-by-convention references; the funnel aggregate's
    #: source).
    token_states: Mapping[NFTKey, TokenState] = field(repr=False, default_factory=dict)
    #: Store token ordering at publish time.
    token_order: Tuple[NFTKey, ...] = ()
    store_stats: StoreStats = StoreStats(0, 0, 0)
    #: The shard's differentially maintained funnel partial (see
    #: :mod:`repro.serve.funnel`), frozen at publish time.  Only shard
    #: versions carry one; the monolithic index recomputes its funnel
    #: from ``token_states`` instead.  Typed loosely to keep the module
    #: import DAG acyclic.
    funnel: Optional[object] = field(repr=False, compare=False, default=None)

    @property
    def is_revision(self) -> bool:
        """True when this version withdrew previously served answers."""
        return self.retracted_count > 0 or self.reorg_depth > 0

    @property
    def confirmed_activity_count(self) -> int:
        return len(self.confirmed)

    @property
    def flagged_nfts(self) -> FrozenSet[NFTKey]:
        return frozenset(self.token_status)

    def status_of(self, nft: NFTKey) -> TokenStatus:
        """The token's status, synthesizing "clean" for unknown tokens."""
        status = self.token_status.get(nft)
        if status is not None:
            return status
        return TokenStatus(nft=nft)

    def profile_of(self, address: str) -> AccountProfile:
        """The account's profile, synthesizing an empty one if clean."""
        profile = self.account_profiles.get(address)
        if profile is not None:
            return profile
        return AccountProfile(address=address)
