"""Query/serving subsystem: a concurrent wash-status API over the monitor.

The streaming monitor (:mod:`repro.stream`) keeps detection continuously
current; this package is its *read path* -- the part a marketplace or a
wallet actually calls.  Four pieces:

* :mod:`repro.serve.index` -- :class:`ServeIndex`, a versioned read
  model rebuilt incrementally from each monitor tick.  Every tick
  publishes a new immutable :class:`~repro.serve.model.ServeVersion`;
  reorg retractions publish a *revision* and never mutate a served
  snapshot, so queries get snapshot isolation without locks.
* :mod:`repro.serve.query` -- :class:`QueryService`: point lookups
  (``token_status``, ``account_profile``), filtered paginated listings
  (``list_confirmed``), cached aggregates (collection / marketplace
  rollups, live funnel statistics) and replayable subscription cursors
  keyed by alert sequence number.
* :mod:`repro.serve.cache` -- :class:`AggregateCache`, a result cache
  for the expensive aggregates invalidated *precisely* by the
  scheduler's per-tick dirty-token set instead of wholesale.
* :mod:`repro.serve.sharding` / :mod:`repro.serve.router` -- the
  partitioned live path: :class:`ShardedServeIndex` splits the read
  model into token-range shards (stable CRC32 routing, one shared
  alert log, two-phase stage-then-flip publication for global snapshot
  isolation) and :class:`ShardRouter` serves the unchanged
  :class:`QueryService` surface over it -- point lookups hash-route,
  listings k-way merge, aggregates scatter-gather per-shard cached
  partials; ``python -m repro serve --shards N`` turns it on.
* :mod:`repro.serve.service` -- :class:`ServeService`, the facade that
  runs monitor ingest (inline or on a background thread) and the query
  front end together; ``python -m repro serve`` is its CLI.
* :mod:`repro.serve.wire` -- the network boundary: a length-prefixed
  JSON framing protocol over TCP (:class:`~repro.serve.wire.WireServer`
  / :class:`~repro.serve.wire.WireClient`) exposing every query
  endpoint plus a replayable ``subscribe`` alert stream with
  slow-client backpressure; ``python -m repro serve --listen`` serves
  it, ``python -m repro query`` drives it.

Parity bar (pinned by ``tests/serve`` and
``benchmarks/bench_serve_load.py``): at every published version --
including mid-reorg-storm -- every query answer equals a fresh batch
``WashTradingPipeline(engine="columnar")`` build over the same chain
prefix; :func:`~repro.serve.parity.serving_parity_mismatches` is the
self-check.
"""

from repro.serve.cache import AggregateCache, CacheStats
from repro.serve.index import ServeIndex
from repro.serve.load import LoadGenerator
from repro.serve.model import (
    AccountProfile,
    ActivityRecord,
    CollectionRollup,
    FunnelSnapshot,
    MarketplaceRollup,
    OFF_MARKET,
    ServeVersion,
    TokenStatus,
    record_key,
)
from repro.serve.parity import (
    serving_parity_mismatches,
    sharded_parity_mismatches,
)
from repro.serve.query import AlertReplayCursor, ConfirmedPage, QueryService
from repro.serve.router import ShardRouter
from repro.serve.service import ServeService
from repro.serve.sharding import (
    GlobalVersion,
    ShardSpec,
    ShardedServeIndex,
    shard_of,
)
from repro.serve.wire import (
    RemoteQueryService,
    WireClient,
    WireServer,
    wire_parity_mismatches,
)

__all__ = [
    "RemoteQueryService",
    "WireClient",
    "WireServer",
    "wire_parity_mismatches",
    "AccountProfile",
    "ActivityRecord",
    "AggregateCache",
    "AlertReplayCursor",
    "CacheStats",
    "CollectionRollup",
    "ConfirmedPage",
    "FunnelSnapshot",
    "GlobalVersion",
    "LoadGenerator",
    "MarketplaceRollup",
    "OFF_MARKET",
    "QueryService",
    "ServeIndex",
    "ServeService",
    "ServeVersion",
    "ShardRouter",
    "ShardSpec",
    "ShardedServeIndex",
    "TokenStatus",
    "record_key",
    "serving_parity_mismatches",
    "shard_of",
    "sharded_parity_mismatches",
]
