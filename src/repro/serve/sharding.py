"""Partitioning the serving read model into token-range shards.

The single :class:`~repro.serve.index.ServeIndex` rebuilds and serves
everything from one process-wide structure: every tick contends on one
aggregate cache, and every dirty token invalidates globally scoped
answers.  This module splits the model into ``N`` shards, each a full
:class:`ServeIndex` restricted to the tokens whose stable key hash maps
to it, coordinated by :class:`ShardedServeIndex`:

* **Routing** is by stable key hash (:func:`shard_of`, a CRC32 over
  ``contract:token_id`` -- deliberately *not* Python's salted ``hash``,
  so the token→shard mapping is identical across processes and runs).
  Tokens partition exactly; accounts and venues may span shards.
* **One alert log.**  The coordinator owns the append-only log and the
  shards share the same list reference, so ``seq`` stays globally
  gapless and every shard's ``last_seq`` agrees.
* **Two-phase publication.**  Each tick, every shard *stages* its next
  version first (nothing visible changes), then the coordinator flips
  all shard handles plus the merged :class:`GlobalVersion` handle, and
  only then invalidates the per-shard caches.  Readers therefore either
  see the complete pre-tick state or the complete post-tick state --
  snapshot isolation and reorg-retraction revisions hold globally, not
  just per shard.
* **Per-shard dirty slices.**  A tick's dirty set is split by ownership
  before cache invalidation, so a tick that only touches shard A's
  tokens leaves shard B's cached aggregate partials warm -- the
  scatter-gather aggregates in :class:`~repro.serve.router.ShardRouter`
  then recompute only the touched shards' partials.

:class:`GlobalVersion` duck-types the whole
:class:`~repro.serve.model.ServeVersion` surface (the parity checker,
the wire codec and the load generator all read it).  Scalars are
coordinator-computed; merged containers materialize lazily on first
access, so point lookups -- which route to one shard -- never pay for a
global merge.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from heapq import merge as heap_merge

from repro.chain.types import NFTKey
from repro.engine.views import StoreStats
from repro.obs.bounded import DEFAULT_ERROR_RETENTION, BoundedLog
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.serve.cache import AggregateCache
from repro.serve.index import ServeIndex, StagedVersion
from repro.serve.model import AccountProfile, ActivityRecord, ServeVersion, TokenStatus
from repro.stream.alerts import Alert, MonitorSnapshot
from repro.stream.monitor import StreamingMonitor


def shard_of(nft: NFTKey, shard_count: int) -> int:
    """Stable shard of one token key: CRC32 of its contract.

    Process- and run-independent (unlike the interpreter's salted
    string hash), so routers, tests and future remote shards all agree
    on the same token→shard mapping.  Hashing the *contract* projection
    of the key (rather than ``contract:token_id``) co-locates each
    collection on one shard: wash activity concentrates inside target
    collections, so a tick's dirty slice -- SCC re-refinement included
    -- lands on few shards instead of being sprayed across all of them,
    and a collection rollup recomputes on exactly one shard.
    """
    digest = zlib.crc32(nft.contract.encode("utf-8"))
    return digest % shard_count


@dataclass(frozen=True)
class ShardSpec:
    """Identity of one shard inside a fixed-size shard layout."""

    index: int
    count: int

    def contains(self, nft: NFTKey) -> bool:
        """True when this shard owns the token."""
        return shard_of(nft, self.count) == self.index


def merge_profiles(
    address: str, profiles: List[AccountProfile]
) -> AccountProfile:
    """One account's global profile from its per-shard profiles.

    Accounts span shards (a wash trader can touch tokens in several),
    so the global profile is the ``(seq, key)``-ordered union of the
    per-shard record lists -- the same order the single-index build
    produces.
    """
    if len(profiles) == 1:
        return profiles[0]
    records = sorted(
        (record for profile in profiles for record in profile.records),
        key=lambda record: (record.seq, record.key),
    )
    return AccountProfile(address=address, records=tuple(records))


class GlobalVersion:
    """One globally consistent snapshot handle over per-shard versions.

    Built (and atomically swapped in) by :class:`ShardedServeIndex`
    after every shard has staged the same tick, so the held shard
    versions always describe one single tick -- never a mix.  Duck-types
    :class:`~repro.serve.model.ServeVersion`; merged containers are
    cached after first materialization (benign-race lazy init: a
    concurrent duplicate compute yields an equal value).
    """

    __slots__ = (
        "shards",
        "version",
        "block",
        "last_seq",
        "dirty_token_count",
        "reorg_depth",
        "retracted_count",
        "newly_confirmed_count",
        "token_order",
        "store_stats",
        "_confirmed",
        "_token_status",
        "_account_profiles",
        "_token_states",
    )

    def __init__(
        self,
        shards: Tuple[ServeVersion, ...],
        version: int,
        block: int,
        last_seq: int,
        dirty_token_count: int,
        reorg_depth: int,
        retracted_count: int,
        newly_confirmed_count: int,
        token_order: Tuple[NFTKey, ...],
        store_stats: StoreStats,
    ) -> None:
        self.shards = shards
        self.version = version
        self.block = block
        self.last_seq = last_seq
        self.dirty_token_count = dirty_token_count
        self.reorg_depth = reorg_depth
        self.retracted_count = retracted_count
        self.newly_confirmed_count = newly_confirmed_count
        self.token_order = token_order
        self.store_stats = store_stats
        self._confirmed: Optional[Tuple[ActivityRecord, ...]] = None
        self._token_status: Optional[Dict[NFTKey, TokenStatus]] = None
        self._account_profiles: Optional[Dict[str, AccountProfile]] = None
        self._token_states: Optional[Dict] = None

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def shard_version_of(self, nft: NFTKey) -> ServeVersion:
        """The shard version owning one token (hash routing)."""
        return self.shards[shard_of(nft, len(self.shards))]

    # -- merged containers (lazy) ------------------------------------------
    @property
    def confirmed(self) -> Tuple[ActivityRecord, ...]:
        """Every confirmed record, ``(seq, key)``-ordered k-way merge.

        Each shard's ``confirmed`` is already sorted, and records
        partition across shards, so merging the sorted runs reproduces
        the single-index global ordering exactly.
        """
        merged = self._confirmed
        if merged is None:
            merged = tuple(
                heap_merge(
                    *(shard.confirmed for shard in self.shards),
                    key=lambda record: (record.seq, record.key),
                )
            )
            self._confirmed = merged
        return merged

    @property
    def token_status(self) -> Mapping[NFTKey, TokenStatus]:
        merged = self._token_status
        if merged is None:
            merged = {}
            for shard in self.shards:
                merged.update(shard.token_status)
            self._token_status = merged
        return merged

    @property
    def token_states(self) -> Mapping:
        merged = self._token_states
        if merged is None:
            merged = {}
            for shard in self.shards:
                merged.update(shard.token_states)
            self._token_states = merged
        return merged

    @property
    def account_profiles(self) -> Mapping[str, AccountProfile]:
        merged = self._account_profiles
        if merged is None:
            grouped: Dict[str, List[AccountProfile]] = {}
            for shard in self.shards:
                for address, profile in shard.account_profiles.items():
                    grouped.setdefault(address, []).append(profile)
            merged = {
                address: merge_profiles(address, profiles)
                for address, profiles in grouped.items()
            }
            self._account_profiles = merged
        return merged

    # -- ServeVersion surface ----------------------------------------------
    @property
    def is_revision(self) -> bool:
        return self.retracted_count > 0 or self.reorg_depth > 0

    @property
    def confirmed_activity_count(self) -> int:
        return sum(shard.confirmed_activity_count for shard in self.shards)

    @property
    def flagged_nfts(self) -> FrozenSet[NFTKey]:
        merged: set = set()
        for shard in self.shards:
            merged.update(shard.token_status)
        return frozenset(merged)

    def status_of(self, nft: NFTKey) -> TokenStatus:
        """Point lookup: one shard dictionary read, no global merge."""
        return self.shard_version_of(nft).status_of(nft)

    def profile_of(self, address: str) -> AccountProfile:
        """Account lookup: probe every shard, merge only on multi-hit."""
        merged = self._account_profiles
        if merged is not None:
            profile = merged.get(address)
            return profile if profile is not None else AccountProfile(address=address)
        found = []
        for shard in self.shards:
            profile = shard.account_profiles.get(address)
            if profile is not None:
                found.append(profile)
        if not found:
            return AccountProfile(address=address)
        return merge_profiles(address, found)


class ShardedServeIndex:
    """Coordinator over ``N`` :class:`ServeIndex` shards.

    Presents the same index surface the wire tier and the replay
    cursors consume (``current`` / ``last_seq`` / ``alerts_since`` /
    ``subscribe_versions``), with ``current`` being a
    :class:`GlobalVersion`.  See the module docstring for the
    publication and invalidation protocol.
    """

    def __init__(
        self,
        monitor: StreamingMonitor,
        shard_count: int,
        use_cache: bool = True,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        self.monitor = monitor
        self.registry = (
            registry
            if registry is not None
            else getattr(monitor, "registry", None) or NULL_REGISTRY
        )
        self.shard_count = shard_count
        #: The one append-only alert log, owned here and shared (by
        #: reference) with every shard; only the coordinator extends it.
        self.alert_log: List[Alert] = []
        self.alert_log.extend(monitor.alerts)
        self.versions_published = 0
        #: Publication seqlock: odd while a tick is flipping the global
        #: handle and invalidating the per-shard caches, even when the
        #: two are mutually consistent.  Readers gathering cached
        #: partials validate it was stable-and-even across the gather
        #: (see :meth:`ShardRouter._gather`) -- the only window where a
        #: cached partial could disagree with the live handle.
        self.publish_seq = 0
        self._version_subscribers: List = []
        self.subscriber_errors: BoundedLog = BoundedLog(DEFAULT_ERROR_RETENTION)

        self._metric_alert_log = self.registry.gauge(
            "serve_alert_log_entries", "Alerts held in the replayable log."
        )
        self._metric_subscriber_errors = self.registry.counter(
            "serve_subscriber_errors_total",
            "Version-subscriber callbacks that raised during publish.",
        )
        self.registry.gauge(
            "serve_shards", "Read-model shards behind the router."
        ).set(shard_count)

        self.caches: Tuple[Optional[AggregateCache], ...] = tuple(
            AggregateCache() if use_cache else None for _ in range(shard_count)
        )
        #: Memo of *merged* aggregate answers, so a warm aggregate costs
        #: one lookup (exactly like the single-index cache) instead of a
        #: per-shard gather plus merge.  Invalidated with the union of
        #: the shards' dirty scopes; on a miss the gather still resolves
        #: per shard, so only the shards a tick actually touched
        #: recompute their partials.  Registered unlabeled: this layer
        #: *is* the service-level cache of the sharded topology.
        self.router_cache: Optional[AggregateCache] = (
            AggregateCache() if use_cache else None
        )
        if self.router_cache is not None:
            self.router_cache.register_metrics(self.registry)
        self.shards: Tuple[ServeIndex, ...] = tuple(
            ServeIndex(
                monitor,
                cache=cache,
                registry=self.registry,
                shard=ShardSpec(index=index, count=shard_count),
                alert_log=self.alert_log,
                attach=False,
            )
            for index, cache in enumerate(self.caches)
        )
        self._current = self._global_version(
            tuple(shard.current for shard in self.shards),
            version=monitor.tick_count,
            dirty_token_count=0,
            reorg_depth=0,
            retracted_count=0,
            newly_confirmed_count=0,
        )
        self.versions_published += 1
        self._metric_alert_log.set(len(self.alert_log))
        monitor.subscribe_snapshots(self._on_snapshot)

    # -- public surface ----------------------------------------------------
    @property
    def current(self) -> GlobalVersion:
        """The newest published global version (atomic reference read)."""
        return self._current

    @property
    def last_seq(self) -> int:
        """Highest alert sequence number folded in (globally gapless)."""
        return len(self.alert_log) - 1

    def subscribe_versions(self, callback) -> object:
        """Register a callback invoked with every published global version."""
        self._version_subscribers.append(callback)
        return callback

    def alerts_since(self, seq: int, limit: Optional[int] = None) -> Tuple[Alert, ...]:
        """Alerts with sequence number strictly greater than ``seq``."""
        start = max(seq + 1, 0)
        if limit is None:
            return tuple(self.alert_log[start:])
        return tuple(self.alert_log[start : start + limit])

    # -- tick application --------------------------------------------------
    def _on_snapshot(self, snapshot: MonitorSnapshot) -> None:
        """Stage every shard, then flip all handles, then invalidate.

        The order is the whole point:

        1. *Stage* -- each shard folds its slice of the tick into its
           working maps and builds (without publishing) its next
           version.  Readers still see the previous tick everywhere.
        2. *Flip* -- every shard handle and the global handle swap to
           the staged versions.  Single reference assignments; a reader
           resolves either the old or the new tick, never a mix of
           shard versions (the global handle carries its own shard
           tuple).
        3. *Invalidate* -- only now are the per-shard caches bumped
           with their own slice of the dirty set.  Publishing before
           invalidating means a racing reader can only have a
           freshly-computed value *discarded*, never cached stale
           (see :meth:`AggregateCache.get_or_compute`).

        Steps 2-3 sit inside the :attr:`publish_seq` seqlock window, so
        a scatter-gather reader can tell "my cached partials and the
        handle I resolved belong together" from "a flip+invalidate
        overlapped my reads" without comparing partial versions.
        """
        with self.registry.span(
            "publish", dirty=snapshot.dirty_token_count, shards=self.shard_count
        ):
            self.alert_log.extend(snapshot.alerts)
            staged: List[StagedVersion] = [
                shard.stage_snapshot(snapshot) for shard in self.shards
            ]
            global_version = self._global_version(
                tuple(stage.version for stage in staged),
                version=snapshot.tick,
                dirty_token_count=snapshot.dirty_token_count,
                reorg_depth=snapshot.reorg_depth,
                retracted_count=snapshot.retracted_count,
                newly_confirmed_count=snapshot.newly_confirmed_count,
            )
            for shard, stage in zip(self.shards, staged):
                shard.commit_staged(stage)
            # Seqlock around flip+invalidate: a reader that gathers
            # cached partials entirely outside this window is guaranteed
            # a cache state consistent with the handle it resolved.
            self.publish_seq += 1
            self._current = global_version
            self.versions_published += 1
            for shard, stage in zip(self.shards, staged):
                shard.invalidate_staged(stage)
            if self.router_cache is not None:
                merged_scopes: set = set()
                for stage in staged:
                    merged_scopes.update(stage.scopes)
                self.router_cache.invalidate(merged_scopes)
            self.publish_seq += 1
            # The tick's alerts are globally readable from here on.
            self.registry.latency.mark(snapshot.trace, "publish")
        self._metric_alert_log.set(len(self.alert_log))
        for callback in self._version_subscribers:
            try:
                callback(global_version)
            except Exception as error:  # noqa: BLE001 - subscriber isolation,
                # exactly as in ServeIndex: the publish is already done.
                self.subscriber_errors.append((callback, global_version, error))
                self._metric_subscriber_errors.inc()

    def _global_version(
        self,
        shard_versions: Tuple[ServeVersion, ...],
        version: int,
        dirty_token_count: int,
        reorg_depth: int,
        retracted_count: int,
        newly_confirmed_count: int,
    ) -> GlobalVersion:
        store = self.monitor.cursor.store
        return GlobalVersion(
            shards=shard_versions,
            version=version,
            block=self.monitor.processed_block,
            last_seq=len(self.alert_log) - 1,
            dirty_token_count=dirty_token_count,
            reorg_depth=reorg_depth,
            retracted_count=retracted_count,
            newly_confirmed_count=newly_confirmed_count,
            token_order=tuple(store.tokens),
            store_stats=StoreStats.capture(store),
        )
