"""The versioned read model over a live streaming monitor.

:class:`ServeIndex` subscribes to a :class:`~repro.stream.StreamingMonitor`
and, after every tick, publishes a fresh immutable
:class:`~repro.serve.model.ServeVersion`.  The contract:

* **Versions are immutable and monotone.**  A tick never mutates a
  published version; it builds a new one and swaps the ``current``
  reference (a single atomic assignment).  Queries that pinned an older
  version keep a fully consistent pre-tick view.
* **Reorg retractions publish a revision, not an edit.**  A rollback
  tick produces a version whose ``retracted_count``/``reorg_depth``
  mark it as a revision; the retracted activities are simply absent
  from it, while the alert log keeps the explicit ``ACTIVITY_RETRACTED``
  events a replaying consumer needs.
* **The rebuild is incremental.**  Only the tick's dirty tokens are
  re-read from the scheduler (via
  :meth:`~repro.stream.scheduler.DirtyTokenScheduler.confirmed_activities`,
  which also captures evidence drift the alert stream deliberately does
  not re-announce); per-account profiles are rebuilt only for accounts
  whose record set changed.  Publishing shares everything untouched
  with the previous version.

The index also owns the append-only alert log (the replay source for
subscription cursors) and drives the aggregate cache's precise,
dirty-set-keyed invalidation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.chain.types import NFTKey
from repro.engine.views import StoreStats
from repro.serve.cache import (
    AggregateCache,
    FUNNEL_SCOPE,
    Scope,
    collection_scope,
    venue_scope,
)
from repro.serve.funnel import FunnelMaintainer
from repro.serve.model import (
    AccountProfile,
    ActivityRecord,
    RecordKey,
    ServeVersion,
    TokenStatus,
    record_key,
)
from repro.obs.bounded import DEFAULT_ERROR_RETENTION, BoundedLog
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.stream.alerts import Alert, AlertKind, MonitorSnapshot
from repro.stream.monitor import StreamingMonitor

VersionCallback = Callable[[ServeVersion], None]


@dataclass
class StagedVersion:
    """One tick folded in but not yet published (two-phase publish).

    ``stage_snapshot`` returns this; ``commit_staged`` flips the
    ``current`` handle and ``invalidate_staged`` bumps the cache --
    split so a sharded coordinator can stage *every* shard before any
    handle flips, and flip every handle before any cache invalidation.
    """

    version: ServeVersion
    #: The cache scopes this tick's (owned) dirty slice may have moved.
    scopes: Set[Scope]


class ServeIndex:
    """Maintains and publishes the immutable read model, tick by tick."""

    def __init__(
        self,
        monitor: StreamingMonitor,
        cache: Optional[AggregateCache] = None,
        registry: Optional[MetricsRegistry] = None,
        shard=None,
        alert_log: Optional[List[Alert]] = None,
        attach: bool = True,
    ) -> None:
        self.monitor = monitor
        self.cache = cache
        self.registry = (
            registry
            if registry is not None
            else getattr(monitor, "registry", None) or NULL_REGISTRY
        )
        #: Restriction of this index to one token-range shard: any
        #: object with ``index`` and ``contains(nft)`` (see
        #: :class:`repro.serve.sharding.ShardSpec`; duck-typed here to
        #: keep the import DAG acyclic).  ``None`` serves everything.
        self.shard = shard
        #: Append-only copy of every alert the monitor published since
        #: (and including) the bootstrap -- ``alert_log[seq].seq == seq``.
        #: A sharded deployment passes one shared list: the coordinator
        #: owns (extends) it, the shards only read, so ``seq`` stays
        #: globally gapless with a single source of truth.
        self._owns_log = alert_log is None
        self.alert_log: List[Alert] = [] if alert_log is None else alert_log
        self.versions_published = 0
        self._version_subscribers: List[VersionCallback] = []
        #: Recent version-subscriber failures, isolated like the
        #: monitor's own subscriber errors: a raising callback never
        #: starves the subscribers after it and never aborts the
        #: publish.  Bounded to the last DEFAULT_ERROR_RETENTION
        #: ``(callback, version, error)`` tuples; ``.total`` counts all.
        self.subscriber_errors: BoundedLog = BoundedLog(DEFAULT_ERROR_RETENTION)

        if shard is None:
            self._metric_versions = self.registry.counter(
                "serve_versions_published_total", "Immutable versions published."
            )
            self._metric_confirmed = self.registry.gauge(
                "serve_confirmed_records", "Confirmed activity records being served."
            )
        else:
            # Shard instances label the same families instead of
            # claiming the bare name, so the stats surface aggregates
            # them per shard without colliding.
            label = str(shard.index)
            self._metric_versions = self.registry.counter(
                "serve_versions_published_total",
                "Immutable versions published.",
                labels=("shard",),
            ).labels(shard=label)
            self._metric_confirmed = self.registry.gauge(
                "serve_confirmed_records",
                "Confirmed activity records being served.",
                labels=("shard",),
            ).labels(shard=label)
        self._metric_subscriber_errors = self.registry.counter(
            "serve_subscriber_errors_total",
            "Version-subscriber callbacks that raised during publish.",
        )
        self._metric_alert_log = self.registry.gauge(
            "serve_alert_log_entries", "Alerts held in the replayable log."
        )
        if cache is not None:
            cache.register_metrics(
                self.registry, shard=None if shard is None else shard.index
            )

        self._records: Dict[RecordKey, ActivityRecord] = {}
        self._token_records: Dict[NFTKey, Dict[RecordKey, ActivityRecord]] = {}
        self._token_retractions: Dict[NFTKey, int] = {}
        self._token_status: Dict[NFTKey, TokenStatus] = {}
        self._account_records: Dict[str, Dict[RecordKey, ActivityRecord]] = {}
        self._profiles: Dict[str, AccountProfile] = {}
        #: Shard instances maintain their funnel partial differentially
        #: (O(dirty slice) per tick) and publish it on every version;
        #: the monolithic index keeps its recompute-from-states design.
        self.funnel_state: Optional[FunnelMaintainer] = (
            None if shard is None else FunnelMaintainer()
        )

        self._bootstrap()
        if attach:
            monitor.subscribe_snapshots(self._on_snapshot)

    # -- public surface ----------------------------------------------------
    @property
    def current(self) -> ServeVersion:
        """The newest published version (atomic reference read)."""
        return self._current

    @property
    def last_seq(self) -> int:
        """Highest alert sequence number the index has folded in."""
        return len(self.alert_log) - 1

    def subscribe_versions(self, callback: VersionCallback) -> VersionCallback:
        """Register a callback invoked with every published version."""
        self._version_subscribers.append(callback)
        return callback

    def alerts_since(self, seq: int, limit: Optional[int] = None) -> Tuple[Alert, ...]:
        """Alerts with sequence number strictly greater than ``seq``.

        The replay primitive: the log is append-only, so a slice taken
        while the monitor thread appends is always a consistent prefix
        of the stream.
        """
        start = max(seq + 1, 0)
        if limit is None:
            return tuple(self.alert_log[start:])
        return tuple(self.alert_log[start : start + limit])

    # -- bootstrap ---------------------------------------------------------
    def _bootstrap(self) -> None:
        """Build version 0 from whatever the monitor already holds.

        Normally that is the empty pre-ingest state; attaching to a
        monitor that already ran some ticks is supported: the published
        alerts are adopted into the log (so replay cursors see the
        whole history) and folded into per-identity confirmation
        coordinates, so adopted records carry the ``seq``/block of
        their *latest* confirmation exactly as if the index had been
        attached from the start.
        """
        if self._owns_log:
            self.alert_log.extend(self.monitor.alerts)
        confirmation_info: Dict[RecordKey, Tuple[int, int]] = {}
        for alert in self.alert_log:
            if alert.kind is AlertKind.ACTIVITY_CONFIRMED:
                confirmation_info[record_key(alert.activity)] = (
                    alert.seq,
                    alert.block,
                )
        for nft in sorted(
            self.monitor.scheduler.flagged_nfts, key=self.monitor.scheduler.order_of
        ):
            if self._owns(nft):
                self._rebuild_token(nft, confirmation_info, set(), set())
        for account in list(self._account_records):
            self._rebuild_profile(account)
        if self.funnel_state is not None:
            self.funnel_state.rebuild(
                state
                for nft, state in self.monitor.scheduler.states.items()
                if self._owns(nft)
            )
        self._current = self._build_version(
            version=self.monitor.tick_count,
            dirty_token_count=0,
            reorg_depth=0,
            retracted_count=0,
            newly_confirmed_count=0,
        )
        self.versions_published += 1
        self._metric_versions.inc()
        if self._owns_log:
            self._metric_alert_log.set(len(self.alert_log))
        self._metric_confirmed.set(len(self._records))

    # -- tick application --------------------------------------------------
    def _owns(self, nft: NFTKey) -> bool:
        """True when this index serves the token (always, unsharded)."""
        return self.shard is None or self.shard.contains(nft)

    def _on_snapshot(self, snapshot: MonitorSnapshot) -> None:
        """Fold one monitor tick into the model and publish a version.

        The unsharded path simply runs the two-phase pieces back to
        back; a sharded coordinator interleaves them across shards
        instead (stage all, flip all, invalidate all).
        """
        with self.registry.span("publish", dirty=snapshot.dirty_token_count):
            staged = self.stage_snapshot(snapshot)
            # Publish before invalidating: a reader that captured the
            # old cache generations and then computes from this new
            # version can only be *discarded* by the invalidation,
            # never cached stale.
            self.commit_staged(staged)
            # The tick's alerts are readable from here on.
            self.registry.latency.mark(snapshot.trace, "publish")
            self.invalidate_staged(staged)
            self.notify_subscribers(staged.version)

    def stage_snapshot(self, snapshot: MonitorSnapshot) -> StagedVersion:
        """Fold one tick's owned slice in; build but don't publish.

        Nothing a reader can observe changes here: the working maps are
        private, and the returned version only becomes visible when
        :meth:`commit_staged` swaps the ``current`` reference.
        """
        if self._owns_log:
            self.alert_log.extend(snapshot.alerts)
        confirmation_info: Dict[RecordKey, Tuple[int, int]] = {}
        for alert in snapshot.alerts:
            if alert.kind is AlertKind.ACTIVITY_CONFIRMED:
                confirmation_info[record_key(alert.activity)] = (
                    alert.seq,
                    alert.block,
                )

        dirty = [nft for nft in snapshot.dirty_nfts if self._owns(nft)]
        touched_accounts: Set[str] = set()
        changed_venues: Set[str] = set()
        for nft in dirty:
            self._rebuild_token(
                nft, confirmation_info, touched_accounts, changed_venues
            )
        for account in touched_accounts:
            self._rebuild_profile(account)
        if self.funnel_state is not None and dirty:
            # Retire each dirty token's previous funnel contribution and
            # install the fresh one -- the full delta, because the
            # scheduler reports every re-installed state as dirty.
            previous_states = self._current.token_states
            fresh_states = self.monitor.scheduler.states
            for nft in dirty:
                self.funnel_state.apply(
                    previous_states.get(nft), fresh_states.get(nft)
                )

        # A tick that moved nothing publishes a fresh version *sharing*
        # the previous one's containers: publishing is then O(1).  The
        # unsharded index requires a fully idle tick (no re-detection,
        # no store growth, no rollback); a shard only needs its own
        # dirty slice empty -- new or rolled-back tokens are always in
        # the dirty set, so untouched shards stay O(1) even while the
        # rest of the world churns (shard store_stats may then lag; the
        # coordinator captures fresh global stats every tick).
        if self.shard is None:
            unchanged = (
                not snapshot.dirty_nfts
                and snapshot.new_transfer_count == 0
                and snapshot.rolled_back_transfer_count == 0
            )
            retracted_count = snapshot.retracted_count
            newly_confirmed_count = snapshot.newly_confirmed_count
        else:
            unchanged = not dirty
            retracted_count = sum(
                1
                for alert in snapshot.alerts
                if alert.kind is AlertKind.ACTIVITY_RETRACTED
                and self._owns(alert.nft)
            )
            newly_confirmed_count = sum(
                1
                for alert in snapshot.alerts
                if alert.kind is AlertKind.ACTIVITY_CONFIRMED
                and self._owns(alert.nft)
            )
        version = self._build_version(
            version=snapshot.tick,
            dirty_token_count=len(dirty),
            reorg_depth=snapshot.reorg_depth,
            retracted_count=retracted_count,
            newly_confirmed_count=newly_confirmed_count,
            reuse=self._current if unchanged else None,
        )
        return StagedVersion(
            version=version, scopes=self._scopes_for(tuple(dirty), changed_venues)
        )

    def commit_staged(self, staged: StagedVersion) -> None:
        """Flip ``current`` to the staged version (one atomic swap)."""
        self._current = staged.version
        self.versions_published += 1
        self._metric_versions.inc()
        if self._owns_log:
            self._metric_alert_log.set(len(self.alert_log))
        self._metric_confirmed.set(len(self._records))

    def invalidate_staged(self, staged: StagedVersion) -> None:
        """Bump the cache with the tick's owned slice of the dirty set."""
        if self.cache is not None:
            self.cache.invalidate(staged.scopes)

    def notify_subscribers(self, version: ServeVersion) -> None:
        """Deliver one published version to every subscriber, isolated."""
        for callback in self._version_subscribers:
            try:
                callback(version)
            except Exception as error:  # noqa: BLE001 - isolation, as in
                # the monitor's _deliver: the publish is already done,
                # the failure is the subscriber's.
                self.subscriber_errors.append((callback, version, error))
                self._metric_subscriber_errors.inc()

    def _scopes_for(
        self, dirty_nfts: Tuple[NFTKey, ...], changed_venues: Set[str]
    ) -> Set[Scope]:
        """Exactly the cache scopes one tick's dirty set can have moved."""
        scopes: Set[Scope] = set()
        if dirty_nfts:
            # Any reprocessed token may have changed its funnel-stage
            # contribution, even without a confirmation flip.
            scopes.add(FUNNEL_SCOPE)
        for nft in dirty_nfts:
            scopes.add(collection_scope(nft.contract))
        for venue in changed_venues:
            scopes.add(venue_scope(venue))
        return scopes

    def _rebuild_token(
        self,
        nft: NFTKey,
        confirmation_info: Dict[RecordKey, Tuple[int, int]],
        touched_accounts: Set[str],
        changed_venues: Set[str],
    ) -> None:
        """Re-derive one dirty token's records from the scheduler.

        Surviving identities keep their confirmation coordinates but
        refresh their payload (evidence drift); new identities take
        their ``seq``/block from this tick's confirmation alert;
        removed identities are dropped and counted as retractions.
        """
        old = self._token_records.get(nft, {})
        fresh: Dict[RecordKey, ActivityRecord] = {}
        for activity in self.monitor.scheduler.confirmed_activities(nft).values():
            key = record_key(activity)
            previous = old.get(key)
            if previous is not None:
                seq, block = previous.seq, previous.confirmed_at_block
            else:
                seq, block = confirmation_info.get(
                    key, (-1, self.monitor.processed_block)
                )
            record = ActivityRecord.from_activity(activity, seq, block)
            fresh[key] = record
            if previous is None or record != previous:
                changed_venues.add(record.venue)
                touched_accounts.update(record.accounts)

        removed = [key for key in old if key not in fresh]
        for key in removed:
            record = old[key]
            changed_venues.add(record.venue)
            touched_accounts.update(record.accounts)

        # Swap the global and per-account record maps.
        for key, record in old.items():
            del self._records[key]
            for account in record.accounts:
                holders = self._account_records.get(account)
                if holders is not None:
                    holders.pop(key, None)
                    if not holders:
                        del self._account_records[account]
        for key, record in fresh.items():
            self._records[key] = record
            for account in record.accounts:
                self._account_records.setdefault(account, {})[key] = record

        if not fresh:
            self._token_records.pop(nft, None)
            self._token_status.pop(nft, None)
            self._token_retractions.pop(nft, None)
            return
        retractions = self._token_retractions.get(nft, 0) + len(removed)
        self._token_records[nft] = fresh
        self._token_retractions[nft] = retractions
        self._token_status[nft] = TokenStatus(
            nft=nft,
            records=tuple(
                sorted(fresh.values(), key=lambda record: (record.seq, record.key))
            ),
            retraction_count=retractions,
        )

    def _rebuild_profile(self, account: str) -> None:
        holders = self._account_records.get(account)
        if not holders:
            self._profiles.pop(account, None)
            return
        self._profiles[account] = AccountProfile(
            address=account,
            records=tuple(
                sorted(holders.values(), key=lambda record: (record.seq, record.key))
            ),
        )

    # -- publishing --------------------------------------------------------
    def _build_version(
        self,
        version: int,
        dirty_token_count: int,
        reorg_depth: int,
        retracted_count: int,
        newly_confirmed_count: int,
        reuse: Optional[ServeVersion] = None,
    ) -> ServeVersion:
        """Assemble one immutable version (scalars always fresh).

        With ``reuse`` (an unchanged-tick fast path), the previous
        version's containers are shared instead of re-copied -- they
        are immutable, and the index only replaces (never mutates) its
        own working containers, so sharing is safe.
        """
        if reuse is not None:
            confirmed = reuse.confirmed
            token_status = reuse.token_status
            account_profiles = reuse.account_profiles
            token_states = reuse.token_states
            token_order = reuse.token_order
            store_stats = reuse.store_stats
            funnel = reuse.funnel
        else:
            store = self.monitor.cursor.store
            confirmed = tuple(
                sorted(
                    self._records.values(),
                    key=lambda record: (record.seq, record.key),
                )
            )
            token_status = dict(self._token_status)
            account_profiles = dict(self._profiles)
            if self.shard is None:
                token_states = dict(self.monitor.scheduler.states)
                token_order = tuple(store.tokens)
            else:
                # The shard's slice of the world, in global store order
                # (so concatenating shard ordering facts -- collection
                # token counts, funnel partials -- reproduces the
                # single-index numbers exactly).
                contains = self.shard.contains
                token_states = {
                    nft: state
                    for nft, state in self.monitor.scheduler.states.items()
                    if contains(nft)
                }
                token_order = tuple(nft for nft in store.tokens if contains(nft))
            store_stats = StoreStats.capture(store)
            funnel = (
                None
                if self.funnel_state is None
                else self.funnel_state.partial(version, len(confirmed))
            )
        return ServeVersion(
            version=version,
            block=self.monitor.processed_block,
            last_seq=len(self.alert_log) - 1,
            dirty_token_count=dirty_token_count,
            reorg_depth=reorg_depth,
            retracted_count=retracted_count,
            newly_confirmed_count=newly_confirmed_count,
            confirmed=confirmed,
            token_status=token_status,
            account_profiles=account_profiles,
            token_states=token_states,
            token_order=token_order,
            store_stats=store_stats,
            funnel=funnel,
        )
