"""Seeded randomness.

Every stochastic choice in the simulation goes through a
:class:`DeterministicRNG` so a world built from a given seed is fully
reproducible, and independent sub-streams can be derived by name without
the draws of one component perturbing another.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

T = TypeVar("T")


class DeterministicRNG:
    """A named, seeded random stream with convenience draws.

    Parameters
    ----------
    seed:
        Root seed of the stream.
    name:
        Optional stream name; different names with the same seed yield
        independent streams.
    """

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = seed
        self.name = name
        self._random = random.Random(f"{seed}:{name}")

    def child(self, name: str) -> "DeterministicRNG":
        """Derive an independent sub-stream identified by ``name``."""
        return DeterministicRNG(self.seed, f"{self.name}/{name}")

    # -- primitive draws -------------------------------------------------
    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._random.uniform(low, high)

    def choice(self, seq: Sequence[T]) -> T:
        """Pick one element of a non-empty sequence."""
        return self._random.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        """Sample ``k`` distinct elements."""
        return self._random.sample(seq, k)

    def shuffle(self, seq: list[T]) -> list[T]:
        """Return a shuffled copy of ``seq`` (the input is not modified)."""
        copy = list(seq)
        self._random.shuffle(copy)
        return copy

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Pick one element with the given relative weights."""
        return self._random.choices(list(items), weights=list(weights), k=1)[0]

    # -- distributions used by the workload generator --------------------
    def lognormal(self, mean: float, sigma: float) -> float:
        """Draw from a log-normal distribution (heavy-tailed prices/volumes)."""
        return self._random.lognormvariate(mean, sigma)

    def exponential(self, mean: float) -> float:
        """Draw from an exponential distribution with the given mean."""
        return self._random.expovariate(1.0 / mean) if mean > 0 else 0.0

    def pareto(self, alpha: float, scale: float = 1.0) -> float:
        """Draw from a Pareto distribution (used for whale-like volumes)."""
        return scale * self._random.paretovariate(alpha)

    def bernoulli(self, probability: float) -> bool:
        """Return True with the given probability."""
        return self._random.random() < probability

    def address(self, *parts: object) -> str:
        """Derive a fresh deterministic address from this stream."""
        from repro.utils.hashing import address_from_parts

        return address_from_parts(self.seed, self.name, self._random.random(), *parts)
