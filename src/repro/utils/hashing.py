"""Deterministic hashing helpers.

The real Ethereum protocol uses Keccak-256 for addresses, transaction
hashes and event signatures.  Inside this reproduction hashes are only
identifiers -- nothing cryptographic depends on them -- so we use
SHA3-256 from the standard library as a stand-in (see DESIGN.md,
"Numerical conventions").  What matters for the paper's methodology is
that ERC-721 Transfer events are recognisable by a fixed signature
prefix (``ddf252ad``), which we preserve verbatim.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Iterator

#: Signature (topic 0) shared by ERC-20 and ERC-721 ``Transfer`` events on
#: the real chain: ``keccak("Transfer(address,address,uint256)")``.  The
#: paper identifies ERC-721 transfers by this signature *plus* the fact
#: that they carry four topics (the token id is indexed), while ERC-20
#: transfers carry only three.
ERC721_TRANSFER_SIGNATURE = (
    "0xddf252ad1be2c89b69c2b068fc378daa952ba7f163c4a11628f55a4df523b3ef"
)

#: ``keccak("TransferSingle(address,address,address,uint256,uint256)")`` --
#: the ERC-1155 single-transfer event, used as a distractor in tests.
ERC1155_TRANSFER_SINGLE_SIGNATURE = (
    "0xc3d58168c5ae7397731d063d5bbf3d657854427343f4c083240f7aacaa2d0f62"
)

#: ``keccak("TransferBatch(address,address,address,uint256[],uint256[])")``
#: -- the ERC-1155 batch mint/burn/transfer event.  Like TransferSingle
#: it must never be picked up by the ERC-721 scan.
ERC1155_TRANSFER_BATCH_SIGNATURE = (
    "0x4a39dc06d4c0dbc64b70af90fd698a233a518aa5d07e595d983b8c0526c8f7fb"
)

#: ``keccak("Approval(address,address,uint256)")``.
APPROVAL_SIGNATURE = (
    "0x8c5be1e5ebec7d5bd14f71427d1e84f3dd0314c0f7b2291e5b200ac8c7c3b925"
)


def keccak_hex(*parts: object) -> str:
    """Return a deterministic 32-byte hex digest (``0x`` + 64 chars).

    The digest is a SHA3-256 over the repr of the parts; it serves as a
    stand-in for Keccak-256 identifiers (transaction hashes, addresses).
    """
    digest = hashlib.sha3_256()
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x00")
    return "0x" + digest.hexdigest()


def event_signature(declaration: str) -> str:
    """Return the topic-0 signature for an event declaration string.

    Known standard events return their real mainnet signatures so the
    ingest layer can match on the same constants the paper uses; any
    other declaration gets a deterministic synthetic signature.
    """
    known = {
        "Transfer(address,address,uint256)": ERC721_TRANSFER_SIGNATURE,
        "TransferSingle(address,address,address,uint256,uint256)": (
            ERC1155_TRANSFER_SINGLE_SIGNATURE
        ),
        "TransferBatch(address,address,address,uint256[],uint256[])": (
            ERC1155_TRANSFER_BATCH_SIGNATURE
        ),
        "Approval(address,address,uint256)": APPROVAL_SIGNATURE,
    }
    if declaration in known:
        return known[declaration]
    return keccak_hex("event", declaration)


_address_counter: Iterator[int] = itertools.count(1)


def new_address(namespace: str = "account") -> str:
    """Return a fresh, deterministic 20-byte address (``0x`` + 40 chars).

    Addresses are derived from a process-wide counter plus a namespace so
    two worlds built in the same process never collide; determinism
    across runs comes from the simulation layer, which derives addresses
    from its own seeded RNG instead of calling this helper directly.
    """
    serial = next(_address_counter)
    return address_from_parts(namespace, serial)


def address_from_parts(*parts: object) -> str:
    """Derive a 20-byte address deterministically from arbitrary parts."""
    return "0x" + keccak_hex("address", *parts)[2:42]


def new_tx_hash(*parts: object) -> str:
    """Derive a transaction hash deterministically from arbitrary parts."""
    return keccak_hex("tx", *parts)


def is_address(value: str) -> bool:
    """Return True if ``value`` looks like a 20-byte hex address."""
    if not isinstance(value, str) or not value.startswith("0x"):
        return False
    body = value[2:]
    if len(body) != 40:
        return False
    try:
        int(body, 16)
    except ValueError:
        return False
    return True
