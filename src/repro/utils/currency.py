"""Currency units and conversions.

All on-chain value in the reproduction is held as integer wei, exactly
like the real chain; ETH and USD only appear at the analysis boundary.
"""

from __future__ import annotations

WEI_PER_ETH = 10**18
WEI_PER_GWEI = 10**9
GWEI_PER_ETH = 10**9


def eth_to_wei(amount_eth: float | int) -> int:
    """Convert an ETH amount to integer wei (rounded to the nearest wei)."""
    return int(round(amount_eth * WEI_PER_ETH))


def wei_to_eth(amount_wei: int) -> float:
    """Convert integer wei to a float ETH amount."""
    return amount_wei / WEI_PER_ETH


def gwei_to_wei(amount_gwei: float | int) -> int:
    """Convert gwei (the customary gas-price unit) to integer wei."""
    return int(round(amount_gwei * WEI_PER_GWEI))


def wei_to_gwei(amount_wei: int) -> float:
    """Convert integer wei to gwei."""
    return amount_wei / WEI_PER_GWEI


def format_eth(amount_wei: int, decimals: int = 4) -> str:
    """Render a wei amount as a human-readable ETH string."""
    return f"{wei_to_eth(amount_wei):,.{decimals}f} ETH"


def format_usd(amount_usd: float, decimals: int = 2) -> str:
    """Render a USD amount as a human-readable string."""
    return f"${amount_usd:,.{decimals}f}"
