"""Time helpers.

The simulation models time as plain UNIX timestamps.  Days matter in two
places that mirror the paper: marketplace reward programs distribute
tokens per *day* of trading volume, and the USD price oracle is a daily
series.
"""

from __future__ import annotations

import datetime as _dt

SECONDS_PER_DAY = 86_400

#: The simulation epoch: 2020-01-01 00:00:00 UTC.  Collections, trades
#: and reward epochs are all expressed relative to this origin, loosely
#: matching the window in which most of the paper's activity happens.
SIMULATION_EPOCH = int(_dt.datetime(2020, 1, 1, tzinfo=_dt.timezone.utc).timestamp())


def day_of(timestamp: int) -> int:
    """Return the day index (since the UNIX epoch) of a timestamp."""
    return timestamp // SECONDS_PER_DAY


def timestamp_of_day(day_index: int) -> int:
    """Return the timestamp of midnight UTC of the given day index."""
    return day_index * SECONDS_PER_DAY


def days_between(start_ts: int, end_ts: int) -> float:
    """Return the (fractional) number of days between two timestamps."""
    return (end_ts - start_ts) / SECONDS_PER_DAY


def format_day(timestamp: int) -> str:
    """Render a timestamp as an ISO date string (UTC)."""
    moment = _dt.datetime.fromtimestamp(timestamp, tz=_dt.timezone.utc)
    return moment.strftime("%Y-%m-%d")
