"""Small shared utilities: deterministic hashing, currency conversion,
seeded randomness and time helpers."""

from repro.utils.hashing import keccak_hex, event_signature, new_address, new_tx_hash
from repro.utils.currency import (
    WEI_PER_ETH,
    GWEI_PER_ETH,
    eth_to_wei,
    wei_to_eth,
    gwei_to_wei,
    format_eth,
    format_usd,
)
from repro.utils.rng import DeterministicRNG
from repro.utils.timeutil import (
    SECONDS_PER_DAY,
    day_of,
    days_between,
    timestamp_of_day,
    format_day,
)

__all__ = [
    "keccak_hex",
    "event_signature",
    "new_address",
    "new_tx_hash",
    "WEI_PER_ETH",
    "GWEI_PER_ETH",
    "eth_to_wei",
    "wei_to_eth",
    "gwei_to_wei",
    "format_eth",
    "format_usd",
    "DeterministicRNG",
    "SECONDS_PER_DAY",
    "day_of",
    "days_between",
    "timestamp_of_day",
    "format_day",
]
