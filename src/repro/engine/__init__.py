"""The columnar detection engine.

A production-oriented execution path for the Sec. IV detection stack,
layered as:

* :mod:`repro.engine.store` -- :class:`ColumnarTransferStore`, interned
  accounts and flat per-NFT transfer columns built once per dataset.
* :mod:`repro.engine.refine` -- mask-based candidate search and
  refinement; exclusion stages are integer-set masks over the columns
  instead of graph rebuilds.
* :mod:`repro.engine.executor` -- contiguous token shards executed
  serially or on a process pool, merged deterministically.

The legacy networkx implementation in :mod:`repro.core` remains the
reference; ``WashTradingPipeline(engine="columnar")`` selects this one,
and the parity tests in ``tests/engine`` pin the two to identical
output.
"""

from repro.engine.executor import (
    AccountSetPredicate,
    SharedPayload,
    ShardResult,
    partition_tokens,
    run_columnar_pipeline,
)
from repro.engine.refine import (
    STAGE_NAMES,
    ShardRefinement,
    StageAccumulator,
    TokenComponent,
    refine_tokens,
    token_components,
)
from repro.engine.store import ColumnarTransferStore, TokenColumns

__all__ = [
    "AccountSetPredicate",
    "ColumnarTransferStore",
    "STAGE_NAMES",
    "SharedPayload",
    "ShardRefinement",
    "ShardResult",
    "StageAccumulator",
    "TokenColumns",
    "TokenComponent",
    "partition_tokens",
    "refine_tokens",
    "run_columnar_pipeline",
    "token_components",
]
