"""Columnar transfer storage for the detection engine.

The legacy pipeline materializes a networkx ``MultiDiGraph`` per NFT and
rebuilds every graph from scratch at each refinement stage.  The engine
instead builds one :class:`ColumnarTransferStore` per dataset: accounts
are interned into dense integer ids shared across the whole store, and
each NFT's transfers become flat, parallel arrays (timestamps, sender
ids, recipient ids, payment flags) sorted once in the same order the
legacy graph builder uses.  Refinement stages then reduce to integer set
operations over these arrays -- no object graphs are ever rebuilt.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.chain.types import NFTKey
from repro.ingest.records import NFTTransfer


def _row_sort_key(transfer: NFTTransfer) -> Tuple[int, int, str]:
    """The row order shared by batch construction and streaming appends."""
    return (transfer.timestamp, transfer.block_number, transfer.tx_hash)


@dataclass
class TokenColumns:
    """The transfers of one NFT as flat, parallel columns.

    ``transfers[i]`` corresponds to ``timestamps[i]``, ``senders[i]``,
    ``recipients[i]`` and ``payment_flags[i]``; sender/recipient entries
    are store-wide interned account ids.  Rows are sorted by
    ``(timestamp, block_number, tx_hash)`` exactly like the legacy
    ``build_transaction_graph``.
    """

    nft: NFTKey
    transfers: Tuple[NFTTransfer, ...]
    timestamps: array
    senders: array
    recipients: array
    #: 1 where the carrying transaction moved ETH or ERC-20 value.
    payment_flags: bytes
    #: Distinct account ids appearing in this token's rows.
    account_ids: FrozenSet[int]

    @property
    def row_count(self) -> int:
        """Number of transfers of this NFT."""
        return len(self.transfers)

    def touched_by(self, excluded: FrozenSet[int]) -> bool:
        """True if any account of this token is in the excluded id set."""
        if not excluded:
            return False
        if len(self.account_ids) <= len(excluded):
            return not self.account_ids.isdisjoint(excluded)
        return not excluded.isdisjoint(self.account_ids)

    def as_arrays(self):
        """Zero-copy numpy views over the columns.

        Returns ``(timestamps, senders, recipients, payment_flags)`` as
        int64/int64/int64/uint8 arrays sharing the ``array("q")`` /
        ``bytes`` buffers -- nothing is copied.  The views pin the
        underlying buffers while alive (``array.append`` raises
        ``BufferError`` on an exporting array), so callers must drop
        them before the store grows, and must re-take them after any
        append: extending an ``array`` may reallocate its buffer, which
        a previously taken view does not follow.
        """
        import numpy

        return (
            numpy.frombuffer(self.timestamps, dtype=numpy.int64),
            numpy.frombuffer(self.senders, dtype=numpy.int64),
            numpy.frombuffer(self.recipients, dtype=numpy.int64),
            numpy.frombuffer(self.payment_flags, dtype=numpy.uint8),
        )


class ColumnarTransferStore:
    """Every NFT's transfers in interned, columnar form.

    Built once per dataset; the refinement funnel and the sharded
    executor only ever read it.  Token insertion order matches the
    dataset's ``transfers_by_nft`` iteration order so results merged from
    shards line up with the legacy pipeline's candidate order.
    """

    def __init__(self) -> None:
        #: id -> account address.
        self.accounts: List[str] = []
        self._ids: Dict[str, int] = {}
        self.tokens: Dict[NFTKey, TokenColumns] = {}
        #: Tokens whose columns went through the out-of-order rebuild
        #: fallback since their creation.  Row positions of such tokens no
        #: longer correspond to append order, so rollback consumers must
        #: re-columnarize them instead of truncating by row count.
        self.rebuilt_tokens: Set[NFTKey] = set()

    # -- construction ------------------------------------------------------
    def intern(self, address: str) -> int:
        """Return the dense id of an account, creating one if unseen."""
        existing = self._ids.get(address)
        if existing is not None:
            return existing
        new_id = len(self.accounts)
        self._ids[address] = new_id
        self.accounts.append(address)
        return new_id

    def add_token(self, nft: NFTKey, transfers: Sequence[NFTTransfer]) -> TokenColumns:
        """Intern and columnarize the transfers of one NFT.

        If the token already exists its :class:`TokenColumns` object is
        rewritten *in place*, so every caller holding a previously
        returned columns reference keeps seeing current rows -- the
        out-of-order append fallback and the rollback path both rely on
        this aliasing guarantee.
        """
        ordered = tuple(sorted(transfers, key=_row_sort_key))
        # Comprehensions + array-from-list beat per-row appends; this is
        # the hottest loop of the store build.
        intern = self.intern
        sender_ids = [intern(transfer.sender) for transfer in ordered]
        recipient_ids = [intern(transfer.recipient) for transfer in ordered]
        timestamps = array("q", [transfer.timestamp for transfer in ordered])
        senders = array("q", sender_ids)
        recipients = array("q", recipient_ids)
        payment_flags = bytes(
            1 if transfer.has_payment else 0 for transfer in ordered
        )
        token_ids = set(sender_ids)
        token_ids.update(recipient_ids)
        columns = self.tokens.get(nft)
        if columns is not None:
            columns.transfers = ordered
            columns.timestamps = timestamps
            columns.senders = senders
            columns.recipients = recipients
            columns.payment_flags = payment_flags
            columns.account_ids = frozenset(token_ids)
            return columns
        columns = TokenColumns(
            nft=nft,
            transfers=ordered,
            timestamps=timestamps,
            senders=senders,
            recipients=recipients,
            payment_flags=payment_flags,
            account_ids=frozenset(token_ids),
        )
        self.tokens[nft] = columns
        return columns

    @classmethod
    def from_transfers(
        cls, transfers_by_nft: Mapping[NFTKey, Sequence[NFTTransfer]]
    ) -> "ColumnarTransferStore":
        """Build a store from a transfers-per-NFT mapping."""
        store = cls()
        for nft, transfers in transfers_by_nft.items():
            store.add_token(nft, transfers)
        return store

    @classmethod
    def from_dataset(cls, dataset) -> "ColumnarTransferStore":
        """Build a store from an :class:`~repro.ingest.dataset.NFTDataset`."""
        return cls.from_transfers(dataset.transfers_by_nft)

    # -- incremental growth ------------------------------------------------
    def append_token_transfers(
        self, nft: NFTKey, transfers: Sequence[NFTTransfer]
    ) -> Optional[TokenColumns]:
        """Append new transfers to one token, keeping row order intact.

        This is the streaming ingest path: when the new rows all sort
        after the token's current tail (the common case -- blocks arrive
        in order), the columns are extended in place; otherwise the token
        is re-columnarized from scratch, so the result is always
        identical to an :meth:`add_token` over the union.  An empty
        chunk never creates a token (None for an unknown ``nft``).
        """
        if not transfers:
            return self.tokens.get(nft)
        columns = self.tokens.get(nft)
        if columns is None:
            return self.add_token(nft, transfers)

        ordered = sorted(transfers, key=_row_sort_key)
        if columns.transfers and _row_sort_key(ordered[0]) < _row_sort_key(
            columns.transfers[-1]
        ):
            # Out-of-order arrival: rebuild the token's columns wholesale
            # (in place -- add_token rewrites the existing TokenColumns,
            # so column references held by callers stay live).
            self.rebuilt_tokens.add(nft)
            return self.add_token(nft, tuple(columns.transfers) + tuple(ordered))

        new_flags = bytearray(len(ordered))
        new_ids: set[int] = set()
        for row, transfer in enumerate(ordered):
            sender_id = self.intern(transfer.sender)
            recipient_id = self.intern(transfer.recipient)
            columns.timestamps.append(transfer.timestamp)
            columns.senders.append(sender_id)
            columns.recipients.append(recipient_id)
            if transfer.has_payment:
                new_flags[row] = 1
            new_ids.add(sender_id)
            new_ids.add(recipient_id)
        columns.transfers = columns.transfers + tuple(ordered)
        columns.payment_flags = columns.payment_flags + bytes(new_flags)
        columns.account_ids = columns.account_ids | new_ids
        return columns

    def extend(
        self, transfers_by_nft: Mapping[NFTKey, Sequence[NFTTransfer]]
    ) -> List[NFTKey]:
        """Append a batch of per-NFT transfers; returns the touched tokens."""
        touched: List[NFTKey] = []
        for nft, transfers in transfers_by_nft.items():
            if not transfers:
                continue
            self.append_token_transfers(nft, transfers)
            touched.append(nft)
        return touched

    # -- rollback ----------------------------------------------------------
    def truncate_token(self, nft: NFTKey, row_count: int) -> int:
        """Drop every row of a token past ``row_count``, in place.

        This is the reorg rollback fast path: streaming appends arrive in
        row order, so per-append row-count watermarks identify exactly
        the rows a rolled-back block contributed.  The existing
        :class:`TokenColumns` object is mutated (aliases stay live);
        truncating to zero rows removes the token entirely.  Returns the
        number of rows removed.  Tokens in :attr:`rebuilt_tokens` must be
        re-columnarized through :meth:`rebuild_token` instead -- their
        row order no longer matches append order.

        Interned accounts are never un-interned: ids are append-only and
        rows simply stop referencing them, which keeps every mask and id
        handed out earlier valid.
        """
        if nft in self.rebuilt_tokens:
            raise ValueError(
                f"{nft} went through the out-of-order rebuild fallback; "
                f"roll it back via rebuild_token, not truncate_token"
            )
        columns = self.tokens[nft]
        if row_count < 0 or row_count > columns.row_count:
            raise ValueError(
                f"cannot truncate {nft} to {row_count} rows "
                f"(has {columns.row_count})"
            )
        removed = columns.row_count - row_count
        if removed == 0:
            return 0
        if row_count == 0:
            self.remove_token(nft)
            return removed
        columns.transfers = columns.transfers[:row_count]
        del columns.timestamps[row_count:]
        del columns.senders[row_count:]
        del columns.recipients[row_count:]
        columns.payment_flags = columns.payment_flags[:row_count]
        columns.account_ids = frozenset(columns.senders) | frozenset(
            columns.recipients
        )
        return removed

    def rebuild_token(self, nft: NFTKey, transfers: Sequence[NFTTransfer]) -> Optional[TokenColumns]:
        """Re-columnarize one token from an authoritative transfer list.

        The rollback slow path, for tokens whose columns went through the
        out-of-order rebuild fallback: row positions of such tokens no
        longer encode append order, so the caller supplies the surviving
        transfers wholesale.  Rewrites the existing columns object in
        place (or removes the token if no transfers survive) and clears
        the token's rebuilt mark -- the fresh columns are canonical.
        """
        self.rebuilt_tokens.discard(nft)
        if not transfers:
            self.remove_token(nft)
            return None
        return self.add_token(nft, transfers)

    def remove_token(self, nft: NFTKey) -> None:
        """Forget a token entirely (all of its rows were rolled back)."""
        self.tokens.pop(nft, None)
        self.rebuilt_tokens.discard(nft)

    # -- queries -----------------------------------------------------------
    @property
    def token_count(self) -> int:
        """Number of NFTs in the store."""
        return len(self.tokens)

    @property
    def account_count(self) -> int:
        """Number of distinct interned accounts."""
        return len(self.accounts)

    @property
    def transfer_count(self) -> int:
        """Total rows across every token."""
        return sum(columns.row_count for columns in self.tokens.values())

    def account_id(self, address: str) -> int:
        """The id of an interned account (KeyError if unseen)."""
        return self._ids[address]

    def address_of(self, account_id: int) -> str:
        """The address behind an interned id."""
        return self.accounts[account_id]

    def addresses_of(self, account_ids: Iterable[int]) -> FrozenSet[str]:
        """The addresses behind a set of interned ids."""
        return frozenset(self.accounts[account_id] for account_id in account_ids)

    def ids_matching(self, predicate: Callable[[str], bool]) -> FrozenSet[int]:
        """Ids of every interned account satisfying a predicate.

        This is how refinement turns its account-level exclusion rules
        (service labels, bytecode checks) into integer masks: the
        predicate runs once per distinct account instead of once per
        graph node per stage.
        """
        return frozenset(
            account_id
            for account_id, address in enumerate(self.accounts)
            if predicate(address)
        )

    def nfts(self) -> List[NFTKey]:
        """Token keys in insertion (dataset) order."""
        return list(self.tokens)

    def __iter__(self) -> Iterator[TokenColumns]:
        return iter(self.tokens.values())

    def __len__(self) -> int:
        return len(self.tokens)
