"""Detection kernels: numpy/CSR refinement and compiled Tarjan SCC.

The hot loops of the detection path -- per-token SCC extraction and
mask refinement -- batched over flat CSR arrays with an optional C
kernel (see ``docs/architecture.md`` § Detection kernels).  Importing
this package requires numpy; the compiled Tarjan backend is optional
and degrades to a pure-Python walk (``REPRO_NO_CKERNEL=1`` forces the
fallback, :func:`kernel_available` reports what loaded).
"""

from repro.engine.kernels.context import CachingDetectionContext
from repro.engine.kernels.csr import batch_token_components
from repro.engine.kernels.refine import refine_token_states, refine_tokens_kernel
from repro.engine.kernels.tarjan import (
    active_backend,
    force_fallback,
    kernel_available,
    tarjan_csr,
)

__all__ = [
    "CachingDetectionContext",
    "active_backend",
    "batch_token_components",
    "force_fallback",
    "kernel_available",
    "refine_token_states",
    "refine_tokens_kernel",
    "tarjan_csr",
]
