"""Money-flow caching for the kernel tier's detector pass.

The confirmation detectors re-derive the same per-account data for
every component an account appears in: common-funder / common-exit
re-walk the account's full transaction list to extract money flows
(re-running the moves-an-NFT log scan each time), and zero-risk
re-filters transaction lists per activity window.  Wash-trading
accounts by construction appear in *many* components, so the kernel
tier wraps the shard's :class:`DetectionContext` in a caching layer.

The caching is exactly output-preserving:

* Flow lists are cached unfiltered (``before_ts``/``after_ts`` of
  ``None``) and filtered per call on ``flow.timestamp``.  The base
  implementation filters on ``tx.timestamp`` while iterating, and every
  flow of a transaction carries that transaction's timestamp, so
  post-filtering the full list keeps exactly the same flows in the same
  order.
* ``transactions_in_window`` slices each account's transaction list
  with a bisect over timestamps when the list is timestamp-monotone
  (chain order -- the common case), preserving iteration order, and
  falls back to the linear filter otherwise; the first-seen hash dedupe
  and final ``(block_number, hash)`` sort then behave identically.

The wrapper must only live as long as the underlying data stands still:
the batch executor builds one per shard run, and the streaming
scheduler wraps fresh on every tick (account transaction lists grow
between ticks).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.chain.transaction import Transaction
from repro.core.detectors.base import DetectionContext, MoneyFlow


class CachingDetectionContext(DetectionContext):
    """A :class:`DetectionContext` with per-account memoization."""

    def __init__(self, base: DetectionContext) -> None:
        super().__init__(
            dataset=base.dataset,
            labels=base.labels,
            is_contract=base.is_contract,
            config=base.config,
        )
        self._flow_cache: Dict[Tuple[str, str, bool], List[MoneyFlow]] = {}
        self._window_cache: Dict[str, Tuple[List[Transaction], List[int], bool]] = {}
        self._moves_nft_cache: Dict[str, bool] = {}

    def _tx_moves_an_nft(self, tx: Transaction) -> bool:
        """Memoized per transaction: the same transaction sits in both of
        its endpoints' histories, so the base log scan runs twice or more
        per tx; the answer is a pure function of the transaction."""
        cached = self._moves_nft_cache.get(tx.hash)
        if cached is None:
            cached = DetectionContext._tx_moves_an_nft(tx)
            self._moves_nft_cache[tx.hash] = cached
        return cached

    # -- money flows -------------------------------------------------------
    def _full_flows(
        self, direction: str, account: str, pure_transfers_only: bool
    ) -> List[MoneyFlow]:
        key = (direction, account, pure_transfers_only)
        flows = self._flow_cache.get(key)
        if flows is None:
            if direction == "in":
                flows = super().incoming_flows(account, None, pure_transfers_only)
            else:
                flows = super().outgoing_flows(account, None, pure_transfers_only)
            self._flow_cache[key] = flows
        return flows

    def incoming_flows(
        self, account: str, before_ts: Optional[int] = None, pure_transfers_only: bool = True
    ) -> List[MoneyFlow]:
        flows = self._full_flows("in", account, pure_transfers_only)
        if before_ts is None:
            return list(flows)
        return [flow for flow in flows if flow.timestamp < before_ts]

    def outgoing_flows(
        self, account: str, after_ts: Optional[int] = None, pure_transfers_only: bool = True
    ) -> List[MoneyFlow]:
        flows = self._full_flows("out", account, pure_transfers_only)
        if after_ts is None:
            return list(flows)
        return [flow for flow in flows if flow.timestamp > after_ts]

    # -- windowed transaction access ---------------------------------------
    def _window_entry(
        self, account: str
    ) -> Tuple[List[Transaction], List[int], bool]:
        entry = self._window_cache.get(account)
        if entry is None:
            transactions = self.transactions_of(account)
            timestamps = [tx.timestamp for tx in transactions]
            monotone = all(
                earlier <= later
                for earlier, later in zip(timestamps, timestamps[1:])
            )
            entry = (transactions, timestamps, monotone)
            self._window_cache[account] = entry
        return entry

    def _window_slice(
        self, account: str, start_ts: int, end_ts: int
    ) -> Sequence[Transaction]:
        transactions, timestamps, monotone = self._window_entry(account)
        if not monotone:
            return [
                tx for tx in transactions if start_ts <= tx.timestamp <= end_ts
            ]
        low = bisect_left(timestamps, start_ts)
        high = bisect_right(timestamps, end_ts)
        return transactions[low:high]

    def transactions_in_window(
        self, accounts: Iterable[str], start_ts: int, end_ts: int
    ) -> List[Transaction]:
        seen: Set[str] = set()
        collected: List[Transaction] = []
        for account in accounts:
            for tx in self._window_slice(account, start_ts, end_ts):
                if tx.hash in seen:
                    continue
                seen.add(tx.hash)
                collected.append(tx)
        collected.sort(key=lambda tx: (tx.block_number, tx.hash))
        return collected
