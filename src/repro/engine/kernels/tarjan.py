"""Tarjan SCC over flat CSR arrays, with an optional compiled backend.

:func:`tarjan_csr` labels every node of a CSR graph with its component
id, numbered in the classic Tarjan emission order (reverse topological
order of the condensation) -- exactly the component order
:func:`repro.core.scc.tarjan_scc_adjacency` produces, which is what the
parity proofs pin.  Two interchangeable backends:

* a pure-Python walk over the CSR arrays (always available), and
* the C kernel of :mod:`repro.engine.kernels._ckernel` when a compiler
  was around at first use (``REPRO_NO_CKERNEL=1`` disables it).

Both fill the same output arrays; ``tests/engine/test_kernels.py`` pins
them bit-identical.
"""

from __future__ import annotations

import ctypes
from contextlib import contextmanager
from typing import Iterator, Tuple

import numpy

from repro.engine.kernels import _ckernel

_force_fallback_depth = 0


@contextmanager
def force_fallback() -> Iterator[None]:
    """Run the pure-Python backend inside the block, compiler or not.

    Re-entrant; used by the parity tests and the scaling bench to
    measure both backends within a single process.
    """
    global _force_fallback_depth
    _force_fallback_depth += 1
    try:
        yield
    finally:
        _force_fallback_depth -= 1


def kernel_available() -> bool:
    """True when the compiled backend is loaded (or loadable)."""
    return _ckernel.load_kernel() is not None


def active_backend() -> str:
    """``"compiled"`` or ``"fallback"`` -- what :func:`tarjan_csr` will use."""
    if _force_fallback_depth == 0 and kernel_available():
        return "compiled"
    return "fallback"


def _as_int64_pointer(array: numpy.ndarray):
    return array.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))


def _tarjan_csr_python(
    indptr_list, indices_list, node_count: int, comp_of: numpy.ndarray
) -> int:
    """The fallback walk; mirrors the C kernel statement for statement."""
    num = [-1] * node_count
    low = [0] * node_count
    pos = [0] * node_count
    on_stack = [False] * node_count
    stack = []
    call = []
    counter = 0
    comp_count = 0
    for root in range(node_count):
        if num[root] != -1:
            continue
        call.append(root)
        num[root] = low[root] = counter
        counter += 1
        pos[root] = indptr_list[root]
        stack.append(root)
        on_stack[root] = True
        while call:
            node = call[-1]
            cursor = pos[node]
            if cursor < indptr_list[node + 1]:
                pos[node] = cursor + 1
                successor = indices_list[cursor]
                if num[successor] == -1:
                    num[successor] = low[successor] = counter
                    counter += 1
                    pos[successor] = indptr_list[successor]
                    stack.append(successor)
                    on_stack[successor] = True
                    call.append(successor)
                elif on_stack[successor] and num[successor] < low[node]:
                    low[node] = num[successor]
            else:
                call.pop()
                if call and low[node] < low[call[-1]]:
                    low[call[-1]] = low[node]
                if low[node] == num[node]:
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        comp_of[member] = comp_count
                        if member == node:
                            break
                    comp_count += 1
    return comp_count


def tarjan_csr(
    indptr: numpy.ndarray, indices: numpy.ndarray
) -> Tuple[numpy.ndarray, int]:
    """Label the nodes of a CSR graph with Tarjan component ids.

    ``indptr`` has ``node_count + 1`` entries; ``indices[indptr[u] :
    indptr[u + 1]]`` are the successors of ``u``.  Returns
    ``(comp_of, component_count)`` where ``comp_of[v]`` is the id of
    ``v``'s component and ids follow emission order.
    """
    node_count = len(indptr) - 1
    comp_of = numpy.empty(node_count, dtype=numpy.int64)
    if node_count == 0:
        return comp_of, 0
    kernel = None
    if _force_fallback_depth == 0:
        kernel = _ckernel.load_kernel()
    if kernel is not None:
        indptr = numpy.ascontiguousarray(indptr, dtype=numpy.int64)
        indices = numpy.ascontiguousarray(indices, dtype=numpy.int64)
        scratch = numpy.empty(6 * node_count, dtype=numpy.int64)
        count = kernel(
            node_count,
            _as_int64_pointer(indptr),
            _as_int64_pointer(indices),
            _as_int64_pointer(comp_of),
            _as_int64_pointer(scratch),
        )
        return comp_of, int(count)
    count = _tarjan_csr_python(
        indptr.tolist(), indices.tolist(), node_count, comp_of
    )
    return comp_of, count
