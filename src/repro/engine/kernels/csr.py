"""Batched CSR construction and per-token SCC extraction.

One call packs *every* token of a shard into a single flat CSR graph
and runs one Tarjan pass over it, instead of building a Python
adjacency dict per token.  Exact parity with the per-token path is the
design constraint; the packing is arranged so it holds structurally:

* Node keys are ``token_index * account_count + account_id`` -- tokens
  can never share a node, so the batch graph is the disjoint union of
  the per-token graphs.
* Node ids are assigned by *first appearance* in the interleaved
  ``(sender, recipient)`` row stream, the same order the per-token
  builder interns local ids in.  Rows are token-major, so node ids are
  token-major too, and Tarjan (which scans roots in id order) emits all
  of token ``i``'s components before any of token ``i + 1``'s: the
  global emission sequence is exactly the concatenation of the
  per-token emission sequences.
* Duplicate edges are deduplicated keeping the first occurrence, and
  successors are ordered by that first occurrence -- a duplicate
  successor only re-checks an already-visited node, so discovery and
  emission order are unchanged (the same argument the deduplicating
  ``token_components`` builder relies on).

``tests/engine/test_kernels.py`` pins ``batch_token_components`` against
``token_components`` and both Tarjan backends against each other and
networkx on randomized multigraphs.
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence

import numpy

from repro.engine.kernels.tarjan import tarjan_csr
from repro.engine.refine import TokenComponent
from repro.engine.store import TokenColumns

_EMPTY_COMPONENTS: tuple = ()


def _mask_array(excluded: FrozenSet[int]) -> numpy.ndarray:
    mask = numpy.fromiter(excluded, dtype=numpy.int64, count=len(excluded))
    mask.sort()
    return mask


def batch_token_components(
    tokens: Sequence[TokenColumns],
    excluded: FrozenSet[int],
    account_count: int,
) -> List[List[TokenComponent]]:
    """Kept SCCs of every token, under one exclusion mask, in one pass.

    Element ``i`` equals ``token_components(tokens[i], excluded)`` --
    same components, same order, same member ids and row indices.
    ``account_count`` is the store's interned-account count (every id in
    the columns is below it); it spaces the per-token node key ranges.
    """
    results: List[List[TokenComponent]] = [[] for _ in tokens]
    if not tokens:
        return results

    lengths = numpy.array([token.row_count for token in tokens], dtype=numpy.int64)
    total_rows = int(lengths.sum())
    if total_rows == 0:
        return results
    # Fuse the id columns with one frombuffer over joined column bytes
    # rather than a numpy view per token: ``bytes(array)`` is a plain C
    # memcpy, the join is one allocation, and -- unlike
    # ``TokenColumns.as_arrays`` views -- nothing pins the token buffers.
    senders = numpy.frombuffer(
        b"".join(bytes(token.senders) for token in tokens), dtype=numpy.int64
    )
    recipients = numpy.frombuffer(
        b"".join(bytes(token.recipients) for token in tokens), dtype=numpy.int64
    )
    row_token = numpy.repeat(
        numpy.arange(len(tokens), dtype=numpy.int64), lengths
    )
    row_starts = numpy.zeros(len(tokens), dtype=numpy.int64)
    numpy.cumsum(lengths[:-1], out=row_starts[1:])
    row_local = numpy.arange(total_rows, dtype=numpy.int64) - numpy.repeat(
        row_starts, lengths
    )

    if excluded:
        mask = _mask_array(excluded)
        keep = ~numpy.isin(senders, mask) & ~numpy.isin(recipients, mask)
        if not keep.all():
            senders = senders[keep]
            recipients = recipients[keep]
            row_token = row_token[keep]
            row_local = row_local[keep]
        if len(senders) == 0:
            return results

    spacing = max(int(account_count), 1)
    sender_keys = row_token * spacing + senders
    recipient_keys = row_token * spacing + recipients

    # First-appearance node numbering over the interleaved row stream.
    interleaved = numpy.empty(2 * len(sender_keys), dtype=numpy.int64)
    interleaved[0::2] = sender_keys
    interleaved[1::2] = recipient_keys
    unique_keys, first_index, inverse = numpy.unique(
        interleaved, return_index=True, return_inverse=True
    )
    appearance = numpy.argsort(first_index, kind="stable")
    rank = numpy.empty(len(unique_keys), dtype=numpy.int64)
    rank[appearance] = numpy.arange(len(unique_keys), dtype=numpy.int64)
    node_ids = rank[inverse]
    node_key = unique_keys[appearance]
    node_count = len(unique_keys)

    edge_u = node_ids[0::2]
    edge_v = node_ids[1::2]
    self_loop_nodes = edge_u[edge_u == edge_v]

    # Dedupe edges keeping the first occurrence; successor order within
    # each source node is first-occurrence order, matching the legacy
    # adjacency builder.
    edge_keys = edge_u * node_count + edge_v
    unique_edges, edge_first = numpy.unique(edge_keys, return_index=True)
    source = unique_edges // node_count
    edge_order = numpy.lexsort((edge_first, source))
    indices = (unique_edges % node_count)[edge_order]
    indptr = numpy.zeros(node_count + 1, dtype=numpy.int64)
    indptr[1:] = numpy.cumsum(numpy.bincount(source, minlength=node_count))

    comp_of, comp_count = tarjan_csr(indptr, indices)

    comp_sizes = numpy.bincount(comp_of, minlength=comp_count)
    comp_has_loop = numpy.zeros(comp_count, dtype=bool)
    comp_has_loop[comp_of[self_loop_nodes]] = True
    kept = (comp_sizes >= 2) | comp_has_loop

    # Surviving rows whose both endpoints share a kept component, grouped
    # by component id; stable sorts preserve row order inside each group.
    row_comp = comp_of[edge_u]
    in_component = (row_comp == comp_of[edge_v]) & kept[row_comp]
    grouped_rows = row_comp[in_component]
    grouped_local = row_local[in_component]
    row_order = numpy.argsort(grouped_rows, kind="stable")
    grouped_local = grouped_local[row_order]
    row_counts = numpy.bincount(grouped_rows, minlength=comp_count)
    row_offsets = numpy.zeros(comp_count + 1, dtype=numpy.int64)
    numpy.cumsum(row_counts, out=row_offsets[1:])

    # Nodes grouped by component, for member-id extraction.
    node_order = numpy.argsort(comp_of, kind="stable")
    node_offsets = numpy.zeros(comp_count + 1, dtype=numpy.int64)
    numpy.cumsum(comp_sizes, out=node_offsets[1:])
    member_accounts = node_key % spacing
    comp_token = node_key // spacing

    for comp in numpy.nonzero(kept)[0].tolist():
        rows = grouped_local[row_offsets[comp] : row_offsets[comp + 1]]
        if len(rows) == 0:
            continue
        members = node_order[node_offsets[comp] : node_offsets[comp + 1]]
        token_index = int(comp_token[members[0]])
        results[token_index].append(
            TokenComponent(
                member_ids=frozenset(member_accounts[members].tolist()),
                rows=tuple(rows.tolist()),
            )
        )
    return results
