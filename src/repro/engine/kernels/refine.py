"""Kernel-tier refinement: the four-stage funnel over batched CSR.

Drop-in counterparts of :func:`repro.engine.refine.refine_tokens` that
route every SCC computation through
:func:`repro.engine.kernels.csr.batch_token_components`: one batched
CSR + Tarjan pass per funnel stage for the whole token slice, instead
of a Python graph walk per token per stage.  Stage semantics (the
conditional per-token recompute rules, the zero-volume filter, the
stage statistics) are byte-for-byte those of the interpreted path --
``tests/engine/test_kernel_parity.py`` pins the outputs equal.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.core.activity import CandidateComponent
from repro.engine.kernels.csr import batch_token_components
from repro.engine.refine import (
    STAGE_NAMES,
    ShardRefinement,
    StageAccumulator,
    TokenComponent,
)
from repro.engine.store import TokenColumns

_EMPTY_MASK: FrozenSet[int] = frozenset()

#: The component lists of one surviving token after each funnel stage.
StagedComponents = Tuple[
    List[TokenComponent],
    List[TokenComponent],
    List[TokenComponent],
    List[TokenComponent],
]


def _staged_components(
    tokens: Sequence[TokenColumns],
    service_mask: FrozenSet[int],
    contract_mask: FrozenSet[int],
    combined_mask: FrozenSet[int],
    skip_zero_volume_removal: bool,
    account_count: int,
) -> List[Optional[StagedComponents]]:
    """Run the funnel stages batched; per-token stage component lists.

    ``None`` marks a token with no stage-1 component: removing nodes
    never creates a cycle, so such tokens leave the funnel entirely and
    contribute to no stage -- the same early-out the interpreted path
    takes.
    """
    stage1 = batch_token_components(tokens, _EMPTY_MASK, account_count)
    alive = [index for index, components in enumerate(stage1) if components]
    current = {index: stage1[index] for index in alive}

    if service_mask:
        targets = [
            index for index in alive if tokens[index].touched_by(service_mask)
        ]
        if targets:
            recomputed = batch_token_components(
                [tokens[index] for index in targets], service_mask, account_count
            )
            for index, components in zip(targets, recomputed):
                current[index] = components
    stage2 = dict(current)

    if contract_mask:
        targets = [
            index
            for index in alive
            if current[index] and tokens[index].touched_by(contract_mask)
        ]
        if targets:
            recomputed = batch_token_components(
                [tokens[index] for index in targets], combined_mask, account_count
            )
            for index, components in zip(targets, recomputed):
                current[index] = components
    stage3 = dict(current)

    results: List[Optional[StagedComponents]] = [None] * len(tokens)
    for index in alive:
        components = stage3[index]
        if components and not skip_zero_volume_removal:
            flags = tokens[index].payment_flags
            components = [
                component
                for component in components
                if any(flags[row] for row in component.rows)
            ]
        results[index] = (stage1[index], stage2[index], stage3[index], components)
    return results


def _masks(
    service_ids: FrozenSet[int],
    contract_ids: FrozenSet[int],
    skip_service_removal: bool,
    skip_contract_removal: bool,
) -> Tuple[FrozenSet[int], FrozenSet[int], FrozenSet[int]]:
    service_mask = _EMPTY_MASK if skip_service_removal else service_ids
    contract_mask = _EMPTY_MASK if skip_contract_removal else contract_ids
    return service_mask, contract_mask, service_mask | contract_mask


def _candidates_of(
    accounts: Sequence[str],
    columns: TokenColumns,
    components: Iterable[TokenComponent],
) -> List[CandidateComponent]:
    return [
        CandidateComponent(
            nft=columns.nft,
            accounts=frozenset(accounts[member] for member in component.member_ids),
            transfers=tuple(columns.transfers[row] for row in component.rows),
        )
        for component in components
    ]


def refine_tokens_kernel(
    accounts: Sequence[str],
    tokens: Iterable[TokenColumns],
    service_ids: FrozenSet[int],
    contract_ids: FrozenSet[int],
    skip_service_removal: bool = False,
    skip_contract_removal: bool = False,
    skip_zero_volume_removal: bool = False,
) -> ShardRefinement:
    """Kernel-backed equivalent of :func:`repro.engine.refine.refine_tokens`."""
    tokens = list(tokens)
    service_mask, contract_mask, combined_mask = _masks(
        service_ids, contract_ids, skip_service_removal, skip_contract_removal
    )
    staged = _staged_components(
        tokens,
        service_mask,
        contract_mask,
        combined_mask,
        skip_zero_volume_removal,
        len(accounts),
    )
    stages = [StageAccumulator(name=name) for name in STAGE_NAMES]
    candidates: List[CandidateComponent] = []
    for columns, entry in zip(tokens, staged):
        if entry is None:
            continue
        for accumulator, components in zip(stages, entry):
            accumulator.add(components)
        candidates.extend(_candidates_of(accounts, columns, entry[3]))
    return ShardRefinement(candidates=candidates, stages=stages)


def refine_token_states(
    accounts: Sequence[str],
    tokens: Sequence[TokenColumns],
    service_ids: FrozenSet[int],
    contract_ids: FrozenSet[int],
    skip_service_removal: bool = False,
    skip_contract_removal: bool = False,
    skip_zero_volume_removal: bool = False,
) -> List[ShardRefinement]:
    """Per-token refinement results from one batched pass.

    Element ``i`` equals ``refine_tokens(accounts, [tokens[i]], ...)``
    (and ``refine_tokens_kernel`` over the single token).  This is the
    streaming scheduler's entry point: a tick's dirty tokens are
    refined together but keep separate per-token state.
    """
    tokens = list(tokens)
    service_mask, contract_mask, combined_mask = _masks(
        service_ids, contract_ids, skip_service_removal, skip_contract_removal
    )
    staged = _staged_components(
        tokens,
        service_mask,
        contract_mask,
        combined_mask,
        skip_zero_volume_removal,
        len(accounts),
    )
    results: List[ShardRefinement] = []
    for columns, entry in zip(tokens, staged):
        stages = [StageAccumulator(name=name) for name in STAGE_NAMES]
        candidates: List[CandidateComponent] = []
        if entry is not None:
            for accumulator, components in zip(stages, entry):
                accumulator.add(components)
            candidates = _candidates_of(accounts, columns, entry[3])
        results.append(ShardRefinement(candidates=candidates, stages=stages))
    return results
