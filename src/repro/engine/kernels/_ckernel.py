"""Optional compiled Tarjan kernel.

A small C implementation of the iterative Tarjan SCC over CSR arrays,
compiled on first use with whatever C compiler the host has (``cc``,
``gcc`` or ``clang``) and loaded through ctypes.  Compiled libraries are
cached next to this module under ``_build/``, keyed by a hash of the C
source, so each source revision compiles exactly once per machine.

Everything degrades silently to the pure-Python fallback in
:mod:`repro.engine.kernels.tarjan`: no compiler on PATH, a failed
compile, a failed load, or ``REPRO_NO_CKERNEL=1`` in the environment all
make :func:`load_kernel` return ``None``.  The outcome is cached for the
lifetime of the process -- the environment switch is a process-level
decision; tests that need both paths in one process use
:func:`repro.engine.kernels.tarjan.force_fallback` instead.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

#: Set to any non-empty value to disable the compiled kernel entirely.
ENV_DISABLE = "REPRO_NO_CKERNEL"

_SOURCE = r"""
#include <stdint.h>

/* Iterative Tarjan SCC over a CSR graph (indptr/indices), int64
 * throughout.  comp_of[v] receives the component id of v; components
 * are numbered in emission order, i.e. reverse topological order of
 * the condensation -- exactly the order tarjan_scc_adjacency emits.
 * scratch must hold 6*n int64 slots.  Returns the component count. */
int64_t repro_tarjan_csr(int64_t n,
                         const int64_t *indptr,
                         const int64_t *indices,
                         int64_t *comp_of,
                         int64_t *scratch)
{
    int64_t *num = scratch;
    int64_t *low = scratch + n;
    int64_t *pos = scratch + 2 * n;
    int64_t *stack = scratch + 3 * n;
    int64_t *on_stack = scratch + 4 * n;
    int64_t *call = scratch + 5 * n;
    int64_t counter = 0, comp_count = 0, sp = 0;
    int64_t i, root;
    for (i = 0; i < n; i++) {
        num[i] = -1;
        on_stack[i] = 0;
    }
    for (root = 0; root < n; root++) {
        int64_t csp;
        if (num[root] != -1) continue;
        csp = 0;
        call[csp++] = root;
        num[root] = low[root] = counter++;
        pos[root] = indptr[root];
        stack[sp++] = root;
        on_stack[root] = 1;
        while (csp > 0) {
            int64_t v = call[csp - 1];
            if (pos[v] < indptr[v + 1]) {
                int64_t w = indices[pos[v]++];
                if (num[w] == -1) {
                    num[w] = low[w] = counter++;
                    pos[w] = indptr[w];
                    stack[sp++] = w;
                    on_stack[w] = 1;
                    call[csp++] = w;
                } else if (on_stack[w] && num[w] < low[v]) {
                    low[v] = num[w];
                }
            } else {
                csp--;
                if (csp > 0 && low[v] < low[call[csp - 1]])
                    low[call[csp - 1]] = low[v];
                if (low[v] == num[v]) {
                    int64_t w;
                    do {
                        w = stack[--sp];
                        on_stack[w] = 0;
                        comp_of[w] = comp_count;
                    } while (w != v);
                    comp_count++;
                }
            }
        }
    }
    return comp_count;
}
"""

_kernel: Optional[ctypes._CFuncPtr] = None  # type: ignore[name-defined]
_attempted = False


def _build_dir() -> Path:
    return Path(__file__).resolve().parent / "_build"


def source_digest() -> str:
    """Hash of the embedded C source (the compile-cache key)."""
    return hashlib.sha256(_SOURCE.encode("utf-8")).hexdigest()[:16]


def _compile_and_load():
    digest = source_digest()
    build = _build_dir()
    lib_path = build / f"tarjan_{digest}.so"
    if not lib_path.exists():
        compiler = (
            shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
        )
        if compiler is None:
            return None
        build.mkdir(parents=True, exist_ok=True)
        source_path = build / f"tarjan_{digest}.c"
        source_path.write_text(_SOURCE)
        # Compile to a unique temp name and move into place atomically,
        # so concurrent processes racing on a cold cache never load a
        # half-written library.
        fd, tmp_name = tempfile.mkstemp(dir=build, suffix=".so")
        os.close(fd)
        try:
            compiled = subprocess.run(
                [compiler, "-O3", "-shared", "-fPIC", "-o", tmp_name, str(source_path)],
                capture_output=True,
                timeout=120,
            )
            if compiled.returncode != 0:
                return None
            os.replace(tmp_name, lib_path)
        finally:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
    library = ctypes.CDLL(str(lib_path))
    kernel = library.repro_tarjan_csr
    kernel.restype = ctypes.c_int64
    kernel.argtypes = [
        ctypes.c_int64,
        ctypes.POINTER(ctypes.c_int64),
        ctypes.POINTER(ctypes.c_int64),
        ctypes.POINTER(ctypes.c_int64),
        ctypes.POINTER(ctypes.c_int64),
    ]
    return kernel


def load_kernel():
    """The compiled Tarjan entry point, or ``None`` when unavailable."""
    global _kernel, _attempted
    if _attempted:
        return _kernel
    _attempted = True
    if os.environ.get(ENV_DISABLE):
        return None
    try:
        _kernel = _compile_and_load()
    except Exception:
        _kernel = None
    return _kernel
