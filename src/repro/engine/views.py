"""Read-only views over the columnar engine's mutable state.

The streaming stack mutates the :class:`~repro.engine.store.ColumnarTransferStore`
in place; anything that wants to hand store facts across a thread
boundary (the serving layer publishes them inside immutable versions)
must copy what it needs at a well-defined instant instead of holding the
live object.  These views are those copies: tiny, frozen, and safe to
share with readers that outlive the tick that captured them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.chain.types import NFTKey
from repro.engine.store import ColumnarTransferStore


@dataclass(frozen=True)
class StoreStats:
    """Aggregate size of a store at one instant."""

    transfer_count: int
    token_count: int
    account_count: int

    @classmethod
    def capture(cls, store: ColumnarTransferStore) -> "StoreStats":
        """Snapshot the store's sizes (O(tokens), no rows copied)."""
        return cls(
            transfer_count=store.transfer_count,
            token_count=store.token_count,
            account_count=store.account_count,
        )


def tokens_per_collection(token_order: Iterable[NFTKey]) -> Dict[str, int]:
    """Token counts grouped by contract, from a captured token ordering."""
    counts: Dict[str, int] = {}
    for nft in token_order:
        counts[nft.contract] = counts.get(nft.contract, 0) + 1
    return counts
