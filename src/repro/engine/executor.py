"""Sharded execution of the columnar detection engine.

The executor partitions the store's tokens into contiguous shards and
runs refinement plus the four per-component confirmation techniques
independently per shard, either serially (the deterministic fallback and
the default) or on a ``ProcessPoolExecutor``.  Shard results are merged
in shard order, so the final candidate and activity lists line up with a
serial run regardless of worker count; the repeated-SCC rule needs the
global pool of confirmed account sets and therefore always runs once in
the parent, after the merge -- exactly where the legacy pipeline applies
it.

Everything a worker needs travels in a :class:`SharedPayload` handed to
the pool initializer: the interned account table, the exclusion masks,
the label registry, the detection config and the per-account transaction
index.  Callables that may not pickle (``is_contract`` is usually a
bound method of a live world) are reduced to frozen address sets before
any fork.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.chain.types import NFTKey
from repro.core.activity import (
    CandidateComponent,
    DetectionEvidence,
    DetectionMethod,
    WashTradingActivity,
)
from repro.core.detectors.base import DetectionConfig, DetectionContext
from repro.core.detectors.repeated_scc import confirm_repeated_components
from repro.core.refine import RefinementResult
from repro.engine.refine import STAGE_NAMES, StageAccumulator, refine_tokens
from repro.engine.store import ColumnarTransferStore, TokenColumns


class AccountSetPredicate:
    """A picklable account predicate: membership in a frozen address set.

    Stands in for live callables (``world.is_contract`` and friends) when
    shard tasks cross a process boundary.
    """

    def __init__(self, members: Iterable[str]) -> None:
        self.members = frozenset(members)

    def __call__(self, address: str) -> bool:
        return address in self.members


class TransactionView:
    """The minimal dataset surface detectors touch: ``transactions_of``."""

    def __init__(self, account_transactions: Dict[str, list]) -> None:
        self.account_transactions = account_transactions

    def transactions_of(self, account: str) -> list:
        """All standard transactions collected for an account."""
        return self.account_transactions.get(account, [])


@dataclass
class SharedPayload:
    """Read-only state shared by every shard worker.

    ``contract_addresses`` deliberately covers only interned accounts
    (transfer endpoints): it backs the worker-side ``is_contract`` of
    the :class:`DetectionContext`, which no current detector consults.
    A future detector needing bytecode checks on arbitrary counterparty
    addresses must widen this set rather than rely on it.
    """

    accounts: List[str]
    service_ids: FrozenSet[int]
    contract_ids: FrozenSet[int]
    contract_addresses: FrozenSet[str]
    labels: object
    config: DetectionConfig
    enabled_methods: FrozenSet[DetectionMethod]
    account_transactions: Dict[str, list]
    skip_service_removal: bool = False
    skip_contract_removal: bool = False
    skip_zero_volume_removal: bool = False
    #: Route refinement through the numpy/CSR kernels of
    #: :mod:`repro.engine.kernels` and cache detector money flows
    #: (the ``engine="kernel"`` tier).
    use_kernels: bool = False


@dataclass
class ShardResult:
    """Everything one shard produces, mergeable in shard order."""

    candidates: List[CandidateComponent]
    activities: List[WashTradingActivity]
    unconfirmed: List[CandidateComponent]
    stages: List[StageAccumulator]


def partition_tokens(nfts: Sequence[NFTKey], shard_count: int) -> List[List[NFTKey]]:
    """Split token keys into at most ``shard_count`` contiguous chunks.

    Contiguity in store order is what makes the merged results identical
    to a serial run: concatenating the shards restores the original
    token order.
    """
    if not nfts:
        return []
    shard_count = max(1, min(shard_count, len(nfts)))
    base, extra = divmod(len(nfts), shard_count)
    shards: List[List[NFTKey]] = []
    start = 0
    for position in range(shard_count):
        size = base + (1 if position < extra else 0)
        shards.append(list(nfts[start : start + size]))
        start += size
    return shards


def _run_shard(tokens: Sequence[TokenColumns], payload: SharedPayload) -> ShardResult:
    """Refine one shard's tokens and run the per-component detectors."""
    if payload.use_kernels:
        from repro.engine.kernels import refine_tokens_kernel

        refine = refine_tokens_kernel
    else:
        refine = refine_tokens
    refinement = refine(
        payload.accounts,
        tokens,
        service_ids=payload.service_ids,
        contract_ids=payload.contract_ids,
        skip_service_removal=payload.skip_service_removal,
        skip_contract_removal=payload.skip_contract_removal,
        skip_zero_volume_removal=payload.skip_zero_volume_removal,
    )
    from repro.core.detectors.pipeline import build_detectors

    detectors = build_detectors(payload.enabled_methods)
    context = DetectionContext(
        dataset=TransactionView(payload.account_transactions),
        labels=payload.labels,
        is_contract=AccountSetPredicate(payload.contract_addresses),
        config=payload.config,
    )
    if payload.use_kernels:
        from repro.engine.kernels.context import CachingDetectionContext

        context = CachingDetectionContext(context)
    activities: List[WashTradingActivity] = []
    unconfirmed: List[CandidateComponent] = []
    for component in refinement.candidates:
        evidence: List[DetectionEvidence] = []
        for detector in detectors:
            found = detector.detect(component, context)
            if found is not None:
                evidence.append(found)
        if evidence:
            activities.append(
                WashTradingActivity(component=component, evidence=evidence)
            )
        else:
            unconfirmed.append(component)
    return ShardResult(
        candidates=refinement.candidates,
        activities=activities,
        unconfirmed=unconfirmed,
        stages=refinement.stages,
    )


def run_token_state_shard(
    tokens: Sequence[TokenColumns], payload: SharedPayload
) -> List[Tuple[List[StageAccumulator], List[CandidateComponent], List[List[DetectionEvidence]]]]:
    """One *scheduler* shard: per-token refinement plus detector evidence.

    Unlike :func:`_run_shard` (which merges a whole shard into one
    result), the streaming scheduler keeps per-token state, so element
    ``i`` is ``tokens[i]``'s ``(stages, candidates, evidence)`` triple --
    exactly what ``DirtyTokenScheduler._detect_state`` computes serially
    for that token.  Batching is output-invariant in both refinement
    tiers, so concatenating shard results in shard order is positionally
    identical to a serial pass over the same tokens.
    """
    tokens = list(tokens)
    if payload.use_kernels:
        from repro.engine.kernels import refine_token_states

        refinements = refine_token_states(
            payload.accounts,
            tokens,
            service_ids=payload.service_ids,
            contract_ids=payload.contract_ids,
            skip_service_removal=payload.skip_service_removal,
            skip_contract_removal=payload.skip_contract_removal,
            skip_zero_volume_removal=payload.skip_zero_volume_removal,
        )
    else:
        refinements = [
            refine_tokens(
                payload.accounts,
                [columns],
                service_ids=payload.service_ids,
                contract_ids=payload.contract_ids,
                skip_service_removal=payload.skip_service_removal,
                skip_contract_removal=payload.skip_contract_removal,
                skip_zero_volume_removal=payload.skip_zero_volume_removal,
            )
            for columns in tokens
        ]
    from repro.core.detectors.pipeline import build_detectors

    detectors = build_detectors(payload.enabled_methods)
    context = DetectionContext(
        dataset=TransactionView(payload.account_transactions),
        labels=payload.labels,
        is_contract=AccountSetPredicate(payload.contract_addresses),
        config=payload.config,
    )
    if payload.use_kernels:
        from repro.engine.kernels.context import CachingDetectionContext

        context = CachingDetectionContext(context)
    results = []
    for refinement in refinements:
        evidence_lists: List[List[DetectionEvidence]] = []
        for component in refinement.candidates:
            evidence: List[DetectionEvidence] = []
            for detector in detectors:
                found = detector.detect(component, context)
                if found is not None:
                    evidence.append(found)
            evidence_lists.append(evidence)
        results.append((refinement.stages, refinement.candidates, evidence_lists))
    return results


def _run_token_states_in_worker(
    task: Tuple[Sequence[TokenColumns], SharedPayload]
):
    tokens, payload = task
    return run_token_state_shard(tokens, payload)


class SchedulerPool:
    """A persistent process pool for per-tick scheduler fan-out.

    The batch executor builds a fresh pool per run because a run happens
    once; the streaming scheduler ticks thousands of times, so workers
    are forked lazily on first use and reused for the monitor's
    lifetime.  The account table and transaction index grow between
    ticks, so every tick ships its own :class:`SharedPayload` with each
    shard task instead of relying on initializer-time state.

    A pool that fails once (pickling, broken worker, interpreter
    without working multiprocessing) is closed and marked ``failed``;
    every later tick then takes the deterministic serial path without
    re-warning.
    """

    def __init__(self, workers: int) -> None:
        self.workers = max(2, int(workers))
        self.failed = False
        self._pool: Optional[ProcessPoolExecutor] = None

    def map_shards(self, shard_tokens, payload: SharedPayload):
        """Per-shard token-state rows, or ``None`` to request serial."""
        if self.failed:
            return None
        try:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            return list(
                self._pool.map(
                    _run_token_states_in_worker,
                    [(tokens, payload) for tokens in shard_tokens],
                )
            )
        except Exception as error:  # pool or pickling failure -> serial
            warnings.warn(
                f"scheduler process pool failed ({error!r}); "
                "falling back to serial tick execution",
                RuntimeWarning,
                stacklevel=2,
            )
            self.failed = True
            self.close()
            return None

    def close(self) -> None:
        """Shut the workers down; the next tick runs serially."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)


#: Worker-process state, populated once by the pool initializer.
_WORKER_PAYLOAD: List[SharedPayload] = []


def _init_worker(payload: SharedPayload) -> None:
    _WORKER_PAYLOAD.clear()
    _WORKER_PAYLOAD.append(payload)


def _run_shard_in_worker(tokens: Sequence[TokenColumns]) -> ShardResult:
    return _run_shard(tokens, _WORKER_PAYLOAD[0])


def run_columnar_pipeline(
    dataset,
    labels,
    is_contract: Callable[[str], bool],
    config: Optional[DetectionConfig] = None,
    enabled_methods: Optional[Iterable[DetectionMethod]] = None,
    workers: int = 0,
    shards: Optional[int] = None,
    skip_service_removal: bool = False,
    skip_contract_removal: bool = False,
    skip_zero_volume_removal: bool = False,
    store: Optional[ColumnarTransferStore] = None,
    use_kernels: bool = False,
) -> Tuple[RefinementResult, List[WashTradingActivity], List[CandidateComponent]]:
    """Run the full engine pipeline and return the merged pieces.

    Returns ``(refinement, activities, unconfirmed)``; the caller (the
    ``WashTradingPipeline`` engine branch) wraps them into the regular
    :class:`PipelineResult`.  ``workers <= 1`` runs the deterministic
    serial path; larger values fan shards out to a process pool and fall
    back to serial execution if the pool cannot be used (e.g. payload
    pickling fails on an exotic dataset).
    """
    if store is None:
        store = dataset.columnar_store()
    methods = (
        frozenset(enabled_methods)
        if enabled_methods is not None
        else frozenset(DetectionMethod.paper_methods())
    )
    # Skipped stages never pay the per-account predicate cost (a bytecode
    # or label check per interned account on real deployments).
    service_ids = (
        frozenset()
        if skip_service_removal
        else store.ids_matching(labels.is_graph_excluded_service)
    )
    contract_ids = (
        frozenset() if skip_contract_removal else store.ids_matching(is_contract)
    )
    payload = SharedPayload(
        accounts=store.accounts,
        service_ids=service_ids,
        contract_ids=contract_ids,
        contract_addresses=store.addresses_of(contract_ids),
        labels=labels,
        config=config or DetectionConfig(),
        enabled_methods=methods,
        account_transactions=dataset.account_transactions,
        skip_service_removal=skip_service_removal,
        skip_contract_removal=skip_contract_removal,
        skip_zero_volume_removal=skip_zero_volume_removal,
        use_kernels=use_kernels,
    )

    shard_count = shards if shards is not None else (workers * 4 if workers > 1 else 1)
    shard_keys = partition_tokens(store.nfts(), shard_count)
    shard_tokens = [
        [store.tokens[nft] for nft in keys] for keys in shard_keys
    ]

    results: Optional[List[ShardResult]] = None
    if workers > 1 and len(shard_tokens) > 1:
        try:
            with ProcessPoolExecutor(
                max_workers=workers, initializer=_init_worker, initargs=(payload,)
            ) as pool:
                results = list(pool.map(_run_shard_in_worker, shard_tokens))
        except Exception as error:  # pool or pickling failure -> serial fallback
            warnings.warn(
                f"columnar engine process pool failed ({error!r}); "
                "falling back to serial shard execution",
                RuntimeWarning,
                stacklevel=2,
            )
            results = None
    if results is None:
        results = [_run_shard(tokens, payload) for tokens in shard_tokens]

    merged_stages = [StageAccumulator(name=name) for name in STAGE_NAMES]
    candidates: List[CandidateComponent] = []
    activities: List[WashTradingActivity] = []
    unconfirmed: List[CandidateComponent] = []
    for result in results:
        for merged, stage in zip(merged_stages, result.stages):
            merged.merge(stage)
        candidates.extend(result.candidates)
        activities.extend(result.activities)
        unconfirmed.extend(result.unconfirmed)

    if DetectionMethod.REPEATED_SCC in methods:
        repeated, unconfirmed = confirm_repeated_components(unconfirmed, activities)
        activities.extend(repeated)

    refinement = RefinementResult(
        candidates=candidates,
        stages=[accumulator.to_stage() for accumulator in merged_stages],
    )
    return refinement, activities, unconfirmed
