"""Mask-based candidate search and refinement over columnar storage.

This is the engine counterpart of :class:`repro.core.refine.RefinementFunnel`.
The legacy funnel rebuilds every per-NFT networkx graph at each stage
(``without_nodes`` + full SCC recompute); here each refinement stage is
an *exclusion mask* -- a frozen set of interned account ids -- and a
stage only recomputes a token's components when the mask actually
touches one of the token's accounts.  Tokens with no candidate component
at the first stage are dropped immediately: removing nodes from a graph
can never create a new cycle, so they can never re-enter the funnel.

The funnel produces exactly the same :class:`CandidateComponent` objects
and per-stage statistics as the legacy path; ``tests/engine`` holds the
parity proofs.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from itertools import chain
from typing import FrozenSet, Iterable, List, NamedTuple, Sequence, Set, Tuple

from repro.core.activity import CandidateComponent
from repro.core.refine import FunnelStage, RefinementFunnel
from repro.core.scc import kept_components_adjacency
from repro.engine.store import TokenColumns

#: Stage names, shared with the legacy funnel so reports stay identical.
STAGE_NAMES: Tuple[str, str, str, str] = (
    RefinementFunnel.STAGE_CANDIDATES,
    RefinementFunnel.STAGE_SERVICES_REMOVED,
    RefinementFunnel.STAGE_CONTRACTS_REMOVED,
    RefinementFunnel.STAGE_NONZERO_VOLUME,
)

_EMPTY_MASK: FrozenSet[int] = frozenset()


class TokenComponent(NamedTuple):
    """One kept SCC of one token: interned member ids plus row indices."""

    member_ids: FrozenSet[int]
    rows: Tuple[int, ...]


def _sorted_union(left: array, right: array) -> array:
    """Union of two sorted distinct-id arrays as a sorted distinct array.

    ``sorted`` over the concatenation is effectively linear here --
    timsort gallops across the two pre-sorted runs -- so folding shard
    statistics together never hashes an account id.  The inputs are
    treated as immutable and may be returned directly.
    """
    if not left:
        return right
    if not right:
        return left
    fused = sorted(chain(left, right))
    out = array("q")
    previous = None
    for value in fused:
        if value != previous:
            out.append(value)
            previous = value
    return out


@dataclass
class StageAccumulator:
    """Mergeable per-stage funnel statistics.

    Unlike :class:`FunnelStage` this keeps the raw account ids, so
    statistics computed independently per shard can be merged without
    double-counting accounts shared between shards.  Ids live in a
    sorted, distinct ``array("q")``: :meth:`add` buffers one token's
    member ids in a small scratch set, and :meth:`merge` /
    :meth:`to_stage` fold the buffer in with a sorted-array union, so
    cross-shard merges are linear array fusions instead of per-shard
    hash-set churn.
    """

    name: str
    nft_count: int = 0
    component_count: int = 0
    _sorted_ids: array = field(default_factory=lambda: array("q"))
    _fresh_ids: Set[int] = field(default_factory=set)

    def add(self, components: Sequence[TokenComponent]) -> None:
        """Record one token's surviving components at this stage."""
        if not components:
            return
        self.nft_count += 1
        self.component_count += len(components)
        for component in components:
            self._fresh_ids.update(component.member_ids)

    def _normalized(self) -> array:
        """The distinct ids seen so far, as one sorted array."""
        if self._fresh_ids:
            self._sorted_ids = _sorted_union(
                self._sorted_ids, array("q", sorted(self._fresh_ids))
            )
            self._fresh_ids = set()
        return self._sorted_ids

    @property
    def account_ids(self) -> Set[int]:
        """Materialized view of the distinct account ids recorded."""
        return set(self._normalized())

    def merge(self, other: "StageAccumulator") -> None:
        """Fold another shard's statistics into this one."""
        self.nft_count += other.nft_count
        self.component_count += other.component_count
        self._sorted_ids = _sorted_union(self._normalized(), other._normalized())

    def to_stage(self) -> FunnelStage:
        """Freeze into the report-facing statistics record."""
        return FunnelStage(
            name=self.name,
            nft_count=self.nft_count,
            component_count=self.component_count,
            account_count=len(self._normalized()),
        )


def token_components(
    columns: TokenColumns, excluded: FrozenSet[int]
) -> List[TokenComponent]:
    """Kept SCCs of one token over the rows surviving an exclusion mask.

    A row survives when neither endpoint is excluded; components follow
    the paper's rule (>= 2 nodes, or a single node with a self-loop) and
    each carries the surviving rows whose both endpoints it contains.
    """
    senders = columns.senders
    recipients = columns.recipients
    local_ids: dict[int, int] = {}
    nodes: List[int] = []
    adjacency: List[List[int]] = []
    self_loop: List[bool] = []
    surviving_rows: List[int] = []
    # Multigraph edges are deduplicated here, at build time, keeping the
    # first occurrence: repeated successors only make every Tarjan walk
    # re-check an already-visited node, and first-occurrence order
    # preserves the walk's discovery (and thus emission) order exactly.
    seen_edges: Set[Tuple[int, int]] = set()

    for row in range(len(senders)):
        sender = senders[row]
        recipient = recipients[row]
        if sender in excluded or recipient in excluded:
            continue
        surviving_rows.append(row)
        local_sender = local_ids.get(sender)
        if local_sender is None:
            local_sender = len(nodes)
            local_ids[sender] = local_sender
            nodes.append(sender)
            adjacency.append([])
            self_loop.append(False)
        local_recipient = local_ids.get(recipient)
        if local_recipient is None:
            local_recipient = len(nodes)
            local_ids[recipient] = local_recipient
            nodes.append(recipient)
            adjacency.append([])
            self_loop.append(False)
        edge = (local_sender, local_recipient)
        if edge not in seen_edges:
            seen_edges.add(edge)
            adjacency[local_sender].append(local_recipient)
        if local_sender == local_recipient:
            self_loop[local_sender] = True

    if not nodes:
        return []
    kept = kept_components_adjacency(len(nodes), adjacency, self_loop)
    if not kept:
        return []

    component_of = [-1] * len(nodes)
    for position, members in enumerate(kept):
        for member in members:
            component_of[member] = position
    rows_of: List[List[int]] = [[] for _ in kept]
    for row in surviving_rows:
        local_sender = local_ids[senders[row]]
        local_recipient = local_ids[recipients[row]]
        position = component_of[local_sender]
        if position != -1 and position == component_of[local_recipient]:
            rows_of[position].append(row)

    components: List[TokenComponent] = []
    for position, members in enumerate(kept):
        rows = rows_of[position]
        if not rows:
            continue
        components.append(
            TokenComponent(
                member_ids=frozenset(nodes[member] for member in members),
                rows=tuple(rows),
            )
        )
    return components


@dataclass
class ShardRefinement:
    """Refinement output of one shard: candidates plus stage statistics."""

    candidates: List[CandidateComponent]
    stages: List[StageAccumulator]


def refine_tokens(
    accounts: Sequence[str],
    tokens: Iterable[TokenColumns],
    service_ids: FrozenSet[int],
    contract_ids: FrozenSet[int],
    skip_service_removal: bool = False,
    skip_contract_removal: bool = False,
    skip_zero_volume_removal: bool = False,
) -> ShardRefinement:
    """Run the four funnel stages over a slice of the store's tokens.

    ``accounts`` is the store's id -> address table; ``service_ids`` and
    ``contract_ids`` are the precomputed exclusion masks of stages two
    and three.  Candidates come out in token order, matching the order
    the legacy funnel flattens its per-NFT component dictionary in.
    """
    stages = [StageAccumulator(name=name) for name in STAGE_NAMES]
    candidates: List[CandidateComponent] = []
    # The per-stage masks are loop-invariant; build them once.
    service_mask = _EMPTY_MASK if skip_service_removal else service_ids
    contract_mask = _EMPTY_MASK if skip_contract_removal else contract_ids
    combined_mask = service_mask | contract_mask

    for columns in tokens:
        components = token_components(columns, _EMPTY_MASK)
        if not components:
            continue
        stages[0].add(components)

        if service_mask and columns.touched_by(service_mask):
            components = token_components(columns, service_mask)
        stages[1].add(components)

        if components and contract_mask and columns.touched_by(contract_mask):
            components = token_components(columns, combined_mask)
        stages[2].add(components)

        if components and not skip_zero_volume_removal:
            flags = columns.payment_flags
            components = [
                component
                for component in components
                if any(flags[row] for row in component.rows)
            ]
        stages[3].add(components)

        for component in components:
            candidates.append(
                CandidateComponent(
                    nft=columns.nft,
                    accounts=frozenset(
                        accounts[member] for member in component.member_ids
                    ),
                    transfers=tuple(
                        columns.transfers[row] for row in component.rows
                    ),
                )
            )

    return ShardRefinement(candidates=candidates, stages=stages)
