"""Streaming monitor subsystem (paper Sec. IX as a live service).

The batch pipeline answers "how much wash trading happened?" after the
fact; this package answers it *while it happens*.  Three pieces:

* :mod:`repro.stream.cursor` -- :class:`DatasetCursor`, incremental
  Sec. III ingest that follows the chain head block-by-block and appends
  into a mutable columnar store.
* :mod:`repro.stream.scheduler` -- :class:`DirtyTokenScheduler`,
  re-refines and re-detects only the tokens each tick touched while
  keeping the cross-token repeated-SCC state incrementally correct.
* :mod:`repro.stream.monitor` -- :class:`StreamingMonitor`, the service
  facade: subscriber callbacks, typed :class:`Alert` events and per-tick
  :class:`MonitorSnapshot` statistics.

Feeding a whole chain through the monitor yields exactly the batch
pipeline's result (``tests/stream`` pins the parity).
"""

from repro.stream.alerts import Alert, AlertKind, MonitorSnapshot
from repro.stream.cursor import CursorTick, DatasetCursor
from repro.stream.monitor import StreamingMonitor
from repro.stream.scheduler import DirtyTokenScheduler, TickReport

__all__ = [
    "Alert",
    "AlertKind",
    "CursorTick",
    "DatasetCursor",
    "DirtyTokenScheduler",
    "MonitorSnapshot",
    "StreamingMonitor",
    "TickReport",
]
