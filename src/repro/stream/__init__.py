"""Streaming monitor subsystem (paper Sec. IX as a live service).

The batch pipeline answers "how much wash trading happened?" after the
fact; this package answers it *while it happens*.  Three pieces:

* :mod:`repro.stream.cursor` -- :class:`DatasetCursor`, incremental
  Sec. III ingest that follows the chain head block-by-block and appends
  into a mutable columnar store.
* :mod:`repro.stream.scheduler` -- :class:`DirtyTokenScheduler`,
  re-refines and re-detects only the tokens each tick touched while
  keeping the cross-token repeated-SCC state incrementally correct.
* :mod:`repro.stream.monitor` -- :class:`StreamingMonitor`, the service
  facade: subscriber callbacks, typed :class:`Alert` events and per-tick
  :class:`MonitorSnapshot` statistics.

Feeding a whole chain through the monitor yields exactly the batch
pipeline's result (``tests/stream`` pins the parity), and the stack is
reorg-safe end to end: the cursor journals each ingested block, rolls
back to the fork point when the head diverges (or regresses), and the
scheduler retracts confirmations for rolled-back transfers -- published
to subscribers as ``REORG_DETECTED`` / ``ACTIVITY_RETRACTED`` alerts.
A reorg deeper than the journal raises :class:`ReorgTooDeepError`.
"""

from repro.stream.alerts import Alert, AlertKind, MonitorSnapshot
from repro.stream.cursor import (
    DEFAULT_MAX_REORG_DEPTH,
    BlockJournalEntry,
    CursorTick,
    DatasetCursor,
    ReorgTooDeepError,
)
from repro.stream.monitor import StreamingMonitor, SubscriberError
from repro.stream.scheduler import DirtyTokenScheduler, TickReport

__all__ = [
    "Alert",
    "AlertKind",
    "BlockJournalEntry",
    "CursorTick",
    "DEFAULT_MAX_REORG_DEPTH",
    "DatasetCursor",
    "DirtyTokenScheduler",
    "MonitorSnapshot",
    "ReorgTooDeepError",
    "StreamingMonitor",
    "SubscriberError",
    "TickReport",
]
