"""The streaming monitor service: a live wash trading watchdog.

:class:`StreamingMonitor` glues the incremental ingest cursor to the
dirty-token scheduler and exposes the result as a service: callers (or a
driving loop) feed it chain positions via :meth:`advance`, subscribers
receive typed :class:`~repro.stream.alerts.Alert` events the moment an
activity is confirmed, and every tick yields a
:class:`~repro.stream.alerts.MonitorSnapshot` with the monitor's
up-to-date statistics.  After following the whole chain,
:meth:`result` returns the exact :class:`PipelineResult` a batch
``WashTradingPipeline(engine="columnar")`` run would have produced.

The monitor is reorg-aware: when the cursor detects that the head
diverged (or regressed), the rollback's tokens are re-detected, the
withdrawn activities are published as ``ACTIVITY_RETRACTED`` alerts
behind a ``REORG_DETECTED`` marker, and the parity guarantee holds
against the *final canonical chain* -- see
:mod:`repro.stream.alerts` for the revision contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Mapping, Optional, Set, Union

from repro.chain.node import EthereumNode
from repro.core.activity import DetectionMethod
from repro.core.detectors.base import DetectionConfig, DetectionContext
from repro.core.detectors.pipeline import PipelineResult
from repro.engine.executor import TransactionView
from repro.obs.bounded import DEFAULT_ERROR_RETENTION, BoundedLog
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.obs.tracing import mint_trace
from repro.stream.alerts import Alert, AlertKind, MonitorSnapshot
from repro.stream.cursor import DEFAULT_MAX_REORG_DEPTH, CursorTick, DatasetCursor
from repro.stream.scheduler import DirtyTokenScheduler, TickReport

AlertCallback = Callable[[Alert], None]
SnapshotCallback = Callable[[MonitorSnapshot], None]


@dataclass(frozen=True)
class SubscriberError:
    """One subscriber callback failure, isolated from the tick.

    A raising subscriber must never abort the monitor tick or starve the
    subscribers after it: the tick's state transition is already
    committed when callbacks run, so the failure is *theirs*, not the
    monitor's.  The error is recorded here (and handed to the monitor's
    ``on_subscriber_error`` hook, if any) instead of propagating.
    """

    callback: Callable
    #: The alert or snapshot being delivered when the callback raised.
    event: Union[Alert, MonitorSnapshot]
    error: BaseException


class StreamingMonitor:
    """Follows the chain head and keeps detection continuously current."""

    def __init__(
        self,
        node: EthereumNode,
        marketplace_addresses: Mapping[str, str],
        labels,
        is_contract: Callable[[str], bool],
        config: Optional[DetectionConfig] = None,
        enabled_methods: Optional[Iterable[DetectionMethod]] = None,
        watchlist: Optional[Iterable[str]] = None,
        enforce_compliance: bool = True,
        start_block: int = 0,
        max_reorg_depth: int = DEFAULT_MAX_REORG_DEPTH,
        retain_scan_matches: bool = True,
        on_subscriber_error: Optional[Callable[[SubscriberError], None]] = None,
        use_kernels: Optional[bool] = None,
        registry: Optional[MetricsRegistry] = None,
        workers: int = 0,
    ) -> None:
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.node = node
        self.cursor = DatasetCursor(
            node,
            marketplace_addresses,
            enforce_compliance=enforce_compliance,
            start_block=start_block,
            max_reorg_depth=max_reorg_depth,
            retain_scan_matches=retain_scan_matches,
            registry=self.registry,
        )
        self.scheduler = DirtyTokenScheduler(
            self.cursor.store,
            labels=labels,
            is_contract=is_contract,
            config=config,
            enabled_methods=enabled_methods,
            use_kernels=use_kernels,
            registry=self.registry,
            workers=workers,
        )
        #: The detectors read the cursor's live account-transaction dict.
        self.context = DetectionContext(
            dataset=TransactionView(self.cursor.account_transactions),
            labels=labels,
            is_contract=is_contract,
            config=config,
        )
        self.watchlist: Set[str] = set(watchlist or ())
        self.tick_count = 0
        self.alerts: List[Alert] = []
        #: Recent subscriber failures, in delivery order (see
        #: SubscriberError).  Bounded: only the last
        #: DEFAULT_ERROR_RETENTION records are retained for the CLI
        #: report; ``subscriber_errors.total`` counts every failure ever.
        self.subscriber_errors: BoundedLog = BoundedLog(DEFAULT_ERROR_RETENTION)
        self._on_subscriber_error = on_subscriber_error
        self._alert_subscribers: List[AlertCallback] = []
        self._snapshot_subscribers: List[SnapshotCallback] = []
        #: Trace id of the most recent tick ("" before the first).
        self.current_trace = ""
        #: Operator alerts queued for the next tick's stream position
        #: (kind, slo, budget_used, detail) -- see publish_operator_alert.
        self._pending_operator: List[tuple] = []
        self._slo_engine = None

        self._metric_ticks = self.registry.counter(
            "monitor_ticks_total", "Completed monitor ticks."
        )
        self._metric_alerts = self.registry.counter(
            "monitor_alerts_total", "Alerts published, labeled by kind.",
            labels=("kind",),
        )
        # Pre-create every kind's child so snapshots always show the
        # full alert taxonomy, zeros included.
        for kind in AlertKind:
            self._metric_alerts.labels(kind=kind.value)
        self._metric_subscriber_errors = self.registry.counter(
            "monitor_subscriber_errors_total",
            "Subscriber callbacks that raised during delivery.",
        )
        self._metric_subscribers = self.registry.gauge(
            "monitor_subscribers", "Registered alert + snapshot subscribers."
        )

    @classmethod
    def for_world(cls, world, **kwargs) -> "StreamingMonitor":
        """Convenience constructor over a simulated world's handles."""
        return cls(
            node=world.node,
            marketplace_addresses=world.marketplace_addresses,
            labels=world.labels,
            is_contract=world.is_contract,
            **kwargs,
        )

    # -- subscriptions -----------------------------------------------------
    def subscribe(self, callback: AlertCallback) -> AlertCallback:
        """Register an alert callback; returns it (decorator-friendly)."""
        self._alert_subscribers.append(callback)
        self._metric_subscribers.set(
            len(self._alert_subscribers) + len(self._snapshot_subscribers)
        )
        return callback

    def subscribe_snapshots(self, callback: SnapshotCallback) -> SnapshotCallback:
        """Register a per-tick snapshot callback."""
        self._snapshot_subscribers.append(callback)
        self._metric_subscribers.set(
            len(self._alert_subscribers) + len(self._snapshot_subscribers)
        )
        return callback

    def watch(self, *accounts: str) -> None:
        """Add accounts to the watchlist (takes effect next tick)."""
        self.watchlist.update(accounts)

    # -- state -------------------------------------------------------------
    @property
    def processed_block(self) -> int:
        """Highest chain block the monitor has ingested (-1 initially)."""
        return self.cursor.processed_block

    @property
    def next_seq(self) -> int:
        """Sequence number the next published alert will carry."""
        return len(self.alerts)

    def predict_trace(self) -> str:
        """The trace id the *next* tick will mint.

        Trace ids are a pure function of (tick counter, cursor
        position), so a driving loop can compute the id before calling
        :meth:`advance` -- that is how the block-seen latency mark lands
        on the right ledger entry.
        """
        return mint_trace(self.tick_count + 1, self.cursor.next_block)

    def attach_slo(self, engine) -> None:
        """Evaluate ``engine`` (see :mod:`repro.obs.slo`) every tick;
        breaches become SLO_BREACH operator alerts on the stream."""
        self._slo_engine = engine

    def publish_operator_alert(
        self,
        kind: AlertKind,
        slo: str = "",
        budget_used: float = 0.0,
        detail: str = "",
    ) -> None:
        """Queue an operator event for the current/next tick's stream.

        Operator alerts ride the ordinary append-only alert bus (gapless
        seqs, replayable over the wire) but are appended *after* the
        tick's detection alerts, so detection ordering is untouched.
        """
        self._pending_operator.append((kind, slo, budget_used, detail))

    @property
    def flagged_nfts(self):
        """NFTs currently carrying at least one confirmed activity."""
        return self.scheduler.flagged_nfts

    def result(self) -> PipelineResult:
        """The batch-identical pipeline result as of the processed block."""
        return self.scheduler.result()

    def close(self) -> None:
        """Release held resources (the scheduler's worker pool, if any).

        Idempotent; a closed monitor keeps answering queries and even
        keeps ticking -- later ticks simply run on the serial path.
        """
        self.scheduler.close()

    # -- driving -----------------------------------------------------------
    def advance(self, to_block: Optional[int] = None) -> MonitorSnapshot:
        """Ingest blocks up to ``to_block`` (default: head) and re-detect.

        If the cursor had to roll back a reorg first, the rolled-back
        tokens (including tokens that vanished from the store entirely)
        lead the dirty set, so the scheduler retracts their confirmed
        activities before the canonical branch's confirmations are
        diffed in.
        """
        # The trace id is minted unconditionally and deterministically
        # (registry-independent): alerts carry it, and the obs-on/off
        # serving surface must stay byte-identical.
        trace = mint_trace(self.tick_count + 1, self.cursor.next_block)
        self.current_trace = trace
        self.registry.latency.mark(trace, "tick_start")
        with self.registry.trace_context(trace):
            with self.registry.span("tick") as tick_span:
                tick = self.cursor.advance(to_block)
                dirty: List = list(tick.rolled_back_nfts)
                rolled_back = set(tick.rolled_back_nfts)
                dirty.extend(
                    nft for nft in tick.touched_nfts if nft not in rolled_back
                )
                if tick.touched_accounts:
                    covered = rolled_back | set(tick.touched_nfts)
                    extra = (
                        self.cursor.tokens_touching(tick.touched_accounts) - covered
                    )
                    dirty.extend(sorted(extra, key=self.scheduler.order_of))
                report = self.scheduler.process(dirty, self.context)

                self.tick_count += 1
                alerts = self._alerts_for(tick, report, trace)
                if self._slo_engine is not None:
                    for breach in self._evaluate_slo():
                        self.publish_operator_alert(
                            AlertKind.SLO_BREACH,
                            slo=breach.objective.name,
                            budget_used=breach.budget_used,
                            detail=breach.detail,
                        )
                if self._pending_operator:
                    alerts.extend(
                        self._operator_alerts(trace, len(self.alerts) + len(alerts))
                    )
                tick_span.annotate(
                    dirty=report.dirty_token_count, alerts=len(alerts)
                )
            snapshot = self._snapshot_for(tick, report, alerts, trace)
            self.alerts.extend(alerts)
            self._metric_ticks.inc()
            for alert in alerts:
                self._metric_alerts.labels(kind=alert.kind.value).inc()
            with self.registry.span("fanout", alerts=len(alerts)):
                for alert in alerts:
                    for callback in self._alert_subscribers:
                        self._deliver(callback, alert)
                for callback in self._snapshot_subscribers:
                    self._deliver(callback, snapshot)
        return snapshot

    def _snapshot_for(self, tick, report, alerts, trace) -> MonitorSnapshot:
        return MonitorSnapshot(
            tick=self.tick_count,
            from_block=tick.from_block,
            to_block=tick.to_block,
            new_transfer_count=tick.new_transfer_count,
            touched_token_count=len(tick.touched_nfts),
            dirty_token_count=report.dirty_token_count,
            newly_confirmed_count=len(report.newly_confirmed),
            retracted_count=report.retracted_count,
            total_transfer_count=self.cursor.store.transfer_count,
            total_token_count=self.cursor.store.token_count,
            confirmed_activity_count=self.scheduler.confirmed_activity_count,
            flagged_nft_count=self.scheduler.flagged_nft_count,
            reorg_depth=tick.reorg_depth,
            rolled_back_transfer_count=tick.rolled_back_transfer_count,
            alerts=tuple(alerts),
            dirty_nfts=report.dirty_nfts,
            trace=trace,
        )

    def _evaluate_slo(self):
        """Run the attached SLO engine; a raising engine cannot fail a
        tick (operator tooling must never abort detection)."""
        try:
            return self._slo_engine.evaluate()
        except Exception:  # noqa: BLE001 -- isolation is the point
            return []

    def _operator_alerts(self, trace: str, base_seq: int) -> List[Alert]:
        """Drain queued operator alerts onto the stream at ``base_seq``.

        Separate from _alerts_for on purpose: a quiet tick (no
        confirmations, retractions or reorg) still publishes its pending
        operator events.
        """
        block = min(self.cursor.processed_block, self.node.block_number)
        timestamp = self.node.get_block(block).timestamp if block >= 0 else 0
        alerts: List[Alert] = []
        for kind, slo, budget_used, detail in self._pending_operator:
            alerts.append(
                Alert(
                    kind=kind,
                    block=block,
                    timestamp=timestamp,
                    seq=base_seq + len(alerts),
                    trace=trace,
                    slo=slo,
                    budget_used=budget_used,
                    detail=detail,
                )
            )
        self._pending_operator.clear()
        return alerts

    def _deliver(self, callback, event) -> None:
        """Deliver one event to one subscriber, isolating failures.

        The tick is already committed when subscribers run; a raising
        callback is recorded (and reported through the
        ``on_subscriber_error`` hook) without aborting the tick or
        skipping the subscribers after it.
        """
        try:
            callback(event)
        except Exception as error:  # noqa: BLE001 -- isolation is the point
            record = SubscriberError(callback=callback, event=event, error=error)
            self.subscriber_errors.append(record)
            self._metric_subscriber_errors.inc()
            handler = self._on_subscriber_error
            if handler is not None:
                try:
                    handler(record)
                except Exception:  # a broken error handler cannot break ticks
                    pass

    def run(
        self, to_block: Optional[int] = None, step_blocks: int = 1
    ) -> List[MonitorSnapshot]:
        """Follow the chain from the cursor to ``to_block`` in fixed steps.

        Replays history tick by tick -- the harness used by the examples,
        the benchmark and the parity tests.  Returns every snapshot.

        The head and target are re-read every iteration: a reorg rolling
        the cursor back mid-run simply re-enters the loop and re-ingests
        the canonical branch.  If the loop has nothing to scan at all, a
        single explicit tick still runs -- the head may have diverged or
        regressed *at or below* the cursor, and only a tick performs the
        divergence check (a caught-up monitor on an untouched chain just
        gets one empty snapshot).
        """
        if step_blocks < 1:
            raise ValueError("step_blocks must be >= 1")
        snapshots: List[MonitorSnapshot] = []
        while True:
            # Clamp to the current head: the cursor cannot advance past
            # mined blocks, so an over-the-head target would otherwise
            # loop on no-op ticks.
            head = self.node.block_number
            target = head if to_block is None else min(to_block, head)
            if self.cursor.next_block > target:
                break
            upper = min(self.cursor.next_block + step_blocks - 1, target)
            snapshots.append(self.advance(upper))
        if not snapshots:
            snapshots.append(self.advance(to_block))
        return snapshots

    # -- internals ---------------------------------------------------------
    def _alerts_for(
        self, tick: CursorTick, report: TickReport, trace: str = ""
    ) -> List[Alert]:
        """Turn one tick's state diff into the published alert stream.

        Order within a tick: the REORG_DETECTED marker first (so
        subscribers can attribute the burst), then every retraction,
        then the confirmations with their NFT_FLAGGED / WATCHLIST_HIT
        companions -- see :mod:`repro.stream.alerts` for the
        retraction contract.
        """
        if not (report.newly_confirmed or report.retracted or tick.saw_reorg):
            return []
        # Clamp to the head: a cursor parked above a regressed chain
        # (future start_block) reports a processed_block with no block
        # behind it.
        block = min(self.cursor.processed_block, self.node.block_number)
        timestamp = self.node.get_block(block).timestamp if block >= 0 else 0
        # Sequence numbers are gapless and equal each alert's position in
        # the append-only self.alerts stream (the serve-layer replay key).
        base_seq = len(self.alerts)
        alerts: List[Alert] = []
        if tick.saw_reorg:
            alerts.append(
                Alert(
                    kind=AlertKind.REORG_DETECTED,
                    block=block,
                    timestamp=timestamp,
                    reorg_depth=tick.reorg_depth,
                    fork_block=tick.fork_block,
                    seq=base_seq + len(alerts),
                    trace=trace,
                )
            )
        for activity in report.retracted:
            alerts.append(
                Alert(
                    kind=AlertKind.ACTIVITY_RETRACTED,
                    block=block,
                    timestamp=timestamp,
                    nft=activity.nft,
                    activity=activity,
                    seq=base_seq + len(alerts),
                    trace=trace,
                )
            )
        newly_flagged = set(report.newly_flagged)
        flag_raised: Set = set()
        for activity in report.newly_confirmed:
            alerts.append(
                Alert(
                    kind=AlertKind.ACTIVITY_CONFIRMED,
                    block=block,
                    timestamp=timestamp,
                    nft=activity.nft,
                    activity=activity,
                    seq=base_seq + len(alerts),
                    trace=trace,
                )
            )
            if activity.nft in newly_flagged and activity.nft not in flag_raised:
                flag_raised.add(activity.nft)
                alerts.append(
                    Alert(
                        kind=AlertKind.NFT_FLAGGED,
                        block=block,
                        timestamp=timestamp,
                        nft=activity.nft,
                        activity=activity,
                        seq=base_seq + len(alerts),
                        trace=trace,
                    )
                )
            watched = frozenset(activity.accounts & self.watchlist)
            if watched:
                alerts.append(
                    Alert(
                        kind=AlertKind.WATCHLIST_HIT,
                        block=block,
                        timestamp=timestamp,
                        nft=activity.nft,
                        activity=activity,
                        watched_accounts=watched,
                        seq=base_seq + len(alerts),
                        trace=trace,
                    )
                )
        return alerts
