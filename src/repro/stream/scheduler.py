"""Dirty-token re-detection over a growing columnar store.

The batch engine refines and confirms every token on every run.  The
scheduler instead keeps one :class:`TokenState` per token (its funnel
stage statistics, refined candidates and per-candidate detector
evidence) and recomputes only the tokens a tick marked *dirty*: tokens
with new transfers, plus tokens containing an account whose collected
transaction list changed (the detectors read those lists, so their
verdicts may move even without a new transfer of the token).

The global repeated-SCC rule (Sec. IV-C v) is maintained incrementally:
a multiset of base-confirmed account sets is updated as dirty tokens are
reprocessed, and an inverted index from account set to the tokens
holding an unconfirmed candidate with that set pinpoints exactly which
other tokens flip when a set enters or leaves the confirmed pool.

:meth:`DirtyTokenScheduler.result` assembles a
:class:`~repro.core.detectors.pipeline.PipelineResult` that is
*identical* -- same candidate order, same activities, same funnel
statistics -- to a batch ``WashTradingPipeline(engine="columnar")`` run
over the same data (pinned by ``tests/stream``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.chain.types import NFTKey
from repro.core.activity import (
    CandidateComponent,
    DetectionEvidence,
    DetectionMethod,
    WashTradingActivity,
)
from repro.core.detectors.base import DetectionConfig, DetectionContext
from repro.core.detectors.pipeline import PipelineResult, build_detectors
from repro.core.refine import RefinementResult
from repro.engine.executor import (
    SchedulerPool,
    SharedPayload,
    partition_tokens,
)
from repro.engine.refine import STAGE_NAMES, StageAccumulator, refine_tokens
from repro.engine.store import ColumnarTransferStore
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry

#: Key identifying one confirmed activity across recomputations.
ActivityKey = Tuple[Tuple[str, ...], Tuple[str, ...]]


@dataclass
class TokenState:
    """Everything the scheduler remembers about one token."""

    #: Per-token funnel statistics (mergeable shard accumulators).
    stages: List[StageAccumulator]
    #: Refined candidates, in engine order.
    candidates: List[CandidateComponent]
    #: Per-candidate detector evidence; an empty list = base-unconfirmed.
    evidence: List[List[DetectionEvidence]]


@dataclass
class TickReport:
    """Detection-state changes caused by one scheduler pass."""

    #: Tokens actually reprocessed (dirty + repeated-SCC flips).
    dirty_token_count: int = 0
    #: The same tokens by key, in deterministic (first-seen) order --
    #: the precise invalidation set for downstream result caches.
    dirty_nfts: Tuple[NFTKey, ...] = ()
    #: Activities confirmed this tick, in deterministic token order.
    newly_confirmed: List[WashTradingActivity] = field(default_factory=list)
    #: NFTs that gained their first confirmed activity this tick.
    newly_flagged: List[NFTKey] = field(default_factory=list)
    #: Previously confirmed activities that no longer hold, in the same
    #: deterministic token order.  An activity lands here when its
    #: component dissolved (account lists changed, repeated-SCC pool
    #: flipped off) or when a chain reorg rolled its transfers back.
    retracted: List[WashTradingActivity] = field(default_factory=list)

    @property
    def retracted_count(self) -> int:
        """Number of confirmed activities withdrawn this tick."""
        return len(self.retracted)


def _repeated_evidence(component: CandidateComponent) -> DetectionEvidence:
    """The evidence record ``confirm_repeated_components`` would attach."""
    return DetectionEvidence(
        method=DetectionMethod.REPEATED_SCC,
        details={"matched_accounts": sorted(component.accounts)},
    )


def _activity_key(component: CandidateComponent) -> ActivityKey:
    return (
        tuple(sorted(component.accounts)),
        tuple(sorted(transfer.tx_hash for transfer in component.transfers)),
    )


class DirtyTokenScheduler:
    """Incrementally maintained detection state over a live store."""

    def __init__(
        self,
        store: ColumnarTransferStore,
        labels,
        is_contract: Callable[[str], bool],
        config: Optional[DetectionConfig] = None,
        enabled_methods: Optional[Iterable[DetectionMethod]] = None,
        skip_service_removal: bool = False,
        skip_contract_removal: bool = False,
        skip_zero_volume_removal: bool = False,
        use_kernels: Optional[bool] = None,
        registry: Optional[MetricsRegistry] = None,
        workers: int = 0,
    ) -> None:
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.store = store
        self.labels = labels
        self.is_contract = is_contract
        self.config = config or DetectionConfig()
        self.methods = (
            frozenset(enabled_methods)
            if enabled_methods is not None
            else frozenset(DetectionMethod.paper_methods())
        )
        self.detectors = build_detectors(self.methods)
        self.skip_service_removal = skip_service_removal
        self.skip_contract_removal = skip_contract_removal
        self.skip_zero_volume_removal = skip_zero_volume_removal
        # None = auto: batch each tick's dirty tokens through the
        # numpy/CSR kernels when numpy is importable (kernel output is
        # pinned identical to the interpreted path, so this is purely a
        # speed decision).
        if use_kernels is None:
            try:
                import repro.engine.kernels  # noqa: F401

                use_kernels = True
            except ImportError:
                use_kernels = False
        self.use_kernels = use_kernels
        self._repeat_enabled = DetectionMethod.REPEATED_SCC in self.methods
        #: ``workers > 1`` fans each tick's refine+detect out to the
        #: persistent scheduler process pool (:class:`SchedulerPool`);
        #: per-shard results are concatenated in shard order, so the
        #: installed states -- and therefore every downstream diff,
        #: alert and served answer -- are bit-identical to the serial
        #: path.  The pool is created lazily and survives across ticks.
        self.workers = workers
        self._pool: Optional[SchedulerPool] = None

        #: Exclusion masks, grown as new accounts are interned.
        self._service_ids: Set[int] = set()
        self._contract_ids: Set[int] = set()
        self._classified_accounts = 0
        self._service_mask: FrozenSet[int] = frozenset()
        self._contract_mask: FrozenSet[int] = frozenset()

        self.states: Dict[NFTKey, TokenState] = {}
        #: First-seen position of each token; mirrors store order.  A
        #: monotone serial (never reused) so positions stay unique even
        #: after reorg-vanished tokens are forgotten.
        self._token_order: Dict[NFTKey, int] = {}
        self._order_serial = 0
        #: Multiset of account sets of base-confirmed activities.
        self._confirmed_pool: Counter = Counter()
        #: Account set -> tokens holding a base-unconfirmed candidate
        #: with exactly that set (repeated-SCC flip propagation).
        self._unconfirmed_index: Dict[FrozenSet[str], Set[NFTKey]] = {}
        #: Currently confirmed activities per token, keyed for diffing.
        self._confirmed: Dict[NFTKey, Dict[ActivityKey, WashTradingActivity]] = {}
        self.confirmed_activity_count = 0

        self._metric_dirty = self.registry.counter(
            "scheduler_dirty_tokens_total",
            "Tokens reprocessed across all ticks (dirty + repeated-SCC flips).",
        )
        self._metric_confirmations = self.registry.counter(
            "scheduler_confirmations_total",
            "Activities newly confirmed across all ticks.",
        )
        self._metric_retractions = self.registry.counter(
            "scheduler_retractions_total",
            "Confirmed activities retracted across all ticks.",
        )
        self._metric_tracked = self.registry.gauge(
            "scheduler_tracked_tokens", "Tokens with detection state held."
        )
        self._metric_confirmed = self.registry.gauge(
            "scheduler_confirmed_activities",
            "Currently confirmed activities across all tokens.",
        )
        self.registry.gauge(
            "scheduler_backend_info",
            "Detection backend in use (1 = active), labeled by backend.",
            labels=("backend",),
        ).labels(backend=self.backend_name).set(1)

    # -- queries -----------------------------------------------------------
    @property
    def backend_name(self) -> str:
        """Which refinement tier ticks run on: ``kernel-compiled``,
        ``kernel-fallback``, or ``interpreted``."""
        if not self.use_kernels:
            return "interpreted"
        from repro.engine.kernels.tarjan import active_backend

        return f"kernel-{active_backend()}"

    @property
    def flagged_nfts(self) -> Set[NFTKey]:
        """NFTs with at least one currently confirmed activity."""
        return {nft for nft, entries in self._confirmed.items() if entries}

    @property
    def flagged_nft_count(self) -> int:
        return sum(1 for entries in self._confirmed.values() if entries)

    def order_of(self, nft: NFTKey) -> int:
        """First-seen position of a known token (mirrors store order)."""
        return self._token_order[nft]

    def confirmed_activities(
        self, nft: NFTKey
    ) -> Dict[ActivityKey, WashTradingActivity]:
        """The token's currently confirmed activities, keyed by identity.

        The read-model hook of the serving layer: after a tick, the
        entries of every dirty token are exactly current -- including
        activities whose *evidence* evolved without the identity
        changing, which the alert stream deliberately does not
        re-announce.  Returns a copy; mutating it never touches
        scheduler state.
        """
        return dict(self._confirmed.get(nft, ()))

    # -- tick processing ---------------------------------------------------
    def process(
        self, dirty_tokens: Iterable[NFTKey], context: DetectionContext
    ) -> TickReport:
        """Re-refine and re-detect the dirty tokens; diff the outcome.

        Dirty tokens no longer present in the store -- every one of
        their transfers was rolled back by a chain reorg -- are *fully
        retired*: their contribution to the repeated-SCC pool is undone,
        their confirmed activities are retracted, and the scheduler
        forgets them entirely, so a later canonical re-appearance is
        processed like a brand-new token.
        """
        live: List[NFTKey] = []
        vanished: List[NFTKey] = []
        seen: Set[NFTKey] = set()
        for nft in dirty_tokens:
            if nft in seen:
                continue
            seen.add(nft)
            if nft in self.store.tokens:
                live.append(nft)
            elif nft in self.states:
                vanished.append(nft)
        report = TickReport()
        if not live and not vanished:
            return report
        self._refresh_masks()

        # The sharded backend computes refine+detect per token in worker
        # processes (both land inside the "refine" span there); the pool
        # deltas -- retire/install against the repeated-SCC state -- are
        # always merged serially at the tick barrier below, which is
        # what keeps the cross-token flip propagation exact.
        fanned_states: Optional[List[TokenState]] = None
        with self.registry.span("refine", tokens=len(live)):
            if live and self.workers > 1 and len(live) > 1:
                fanned_states = self._fan_out_states(live, context)
            if fanned_states is None:
                refinements = self._refine_live(live) if live else []
        if fanned_states is None and live and self.use_kernels:
            # Fresh per-tick wrap: account transaction lists grow between
            # ticks, so the cache must never outlive the tick.
            from repro.engine.kernels import CachingDetectionContext

            context = CachingDetectionContext(context)

        flipped_sets: Set[FrozenSet[str]] = set()
        with self.registry.span("detect", tokens=len(live)):
            for nft in vanished:
                self._retire_state(nft, self.states.pop(nft), flipped_sets)
            for index, nft in enumerate(live):
                if nft not in self._token_order:
                    self._token_order[nft] = self._order_serial
                    self._order_serial += 1
                old = self.states.get(nft)
                if old is not None:
                    self._retire_state(nft, old, flipped_sets)
                if fanned_states is not None:
                    state = fanned_states[index]
                else:
                    state = self._detect_state(refinements[index], context)
                self._install_state(nft, state, flipped_sets)

        with self.registry.span("diff"):
            affected = set(live) | set(vanished)
            if self._repeat_enabled:
                for account_set in flipped_sets:
                    affected |= self._unconfirmed_index.get(account_set, set())
            ordered_affected = sorted(affected, key=self._token_order.__getitem__)
            report.dirty_token_count = len(ordered_affected)
            report.dirty_nfts = tuple(ordered_affected)

            for nft in ordered_affected:
                entries = self._confirmed_entries(nft)
                previous = self._confirmed.get(nft, {})
                for key, activity in entries.items():
                    if key not in previous:
                        report.newly_confirmed.append(activity)
                for key, activity in previous.items():
                    if key not in entries:
                        report.retracted.append(activity)
                if entries and not previous:
                    report.newly_flagged.append(nft)
                self.confirmed_activity_count += len(entries) - len(previous)
                if entries:
                    self._confirmed[nft] = entries
                else:
                    self._confirmed.pop(nft, None)
            for nft in vanished:
                self._token_order.pop(nft, None)

        self._metric_dirty.inc(report.dirty_token_count)
        self._metric_confirmations.inc(len(report.newly_confirmed))
        self._metric_retractions.inc(len(report.retracted))
        self._metric_tracked.set(len(self.states))
        self._metric_confirmed.set(self.confirmed_activity_count)
        return report

    # -- final assembly ----------------------------------------------------
    def result(self) -> PipelineResult:
        """The batch-identical pipeline result of the current state.

        Candidates come out in store (first-seen) order; activities list
        the base-confirmed components first and the repeated-SCC
        confirmations after them, each group in candidate order --
        exactly how the columnar executor merges its shards and then
        applies ``confirm_repeated_components``.
        """
        merged = [StageAccumulator(name=name) for name in STAGE_NAMES]
        candidates: List[CandidateComponent] = []
        base_confirmed: List[WashTradingActivity] = []
        repeated: List[WashTradingActivity] = []
        unconfirmed: List[CandidateComponent] = []
        for nft in self.store.tokens:
            state = self.states.get(nft)
            if state is None:
                continue
            for accumulator, stage in zip(merged, state.stages):
                accumulator.merge(stage)
            for component, evidence in zip(state.candidates, state.evidence):
                candidates.append(component)
                if evidence:
                    base_confirmed.append(
                        WashTradingActivity(
                            component=component, evidence=list(evidence)
                        )
                    )
                elif (
                    self._repeat_enabled
                    and self._confirmed_pool[component.accounts] > 0
                ):
                    repeated.append(
                        WashTradingActivity(
                            component=component,
                            evidence=[_repeated_evidence(component)],
                        )
                    )
                else:
                    unconfirmed.append(component)
        refinement = RefinementResult(
            candidates=candidates,
            stages=[accumulator.to_stage() for accumulator in merged],
        )
        return PipelineResult(
            refinement=refinement,
            activities=base_confirmed + repeated,
            unconfirmed=unconfirmed,
        )

    # -- internals ---------------------------------------------------------
    def _refresh_masks(self) -> None:
        """Classify accounts interned since the last tick into the masks."""
        accounts = self.store.accounts
        if self._classified_accounts == len(accounts):
            return
        for account_id in range(self._classified_accounts, len(accounts)):
            address = accounts[account_id]
            if not self.skip_service_removal and self.labels.is_graph_excluded_service(
                address
            ):
                self._service_ids.add(account_id)
            if not self.skip_contract_removal and self.is_contract(address):
                self._contract_ids.add(account_id)
        self._classified_accounts = len(accounts)
        self._service_mask = frozenset(self._service_ids)
        self._contract_mask = frozenset(self._contract_ids)

    def _refine_live(self, live: List[NFTKey]):
        """Refine the tick's live dirty tokens, one result per token.

        The kernel path batches every dirty token of the tick into a
        single CSR pass; the interpreted path refines token by token.
        Both return per-token results in ``live`` order with identical
        content.
        """
        if self.use_kernels:
            from repro.engine.kernels import refine_token_states

            return refine_token_states(
                self.store.accounts,
                [self.store.tokens[nft] for nft in live],
                service_ids=self._service_mask,
                contract_ids=self._contract_mask,
                skip_service_removal=self.skip_service_removal,
                skip_contract_removal=self.skip_contract_removal,
                skip_zero_volume_removal=self.skip_zero_volume_removal,
            )
        return [
            refine_tokens(
                self.store.accounts,
                [self.store.tokens[nft]],
                service_ids=self._service_mask,
                contract_ids=self._contract_mask,
                skip_service_removal=self.skip_service_removal,
                skip_contract_removal=self.skip_contract_removal,
                skip_zero_volume_removal=self.skip_zero_volume_removal,
            )
            for nft in live
        ]

    def _fan_out_states(
        self, live: List[NFTKey], context: DetectionContext
    ) -> Optional[List[TokenState]]:
        """Per-token states from the process-pool backend, in ``live`` order.

        Ships the tick's dirty tokens to the persistent scheduler pool
        in contiguous shards; the per-shard ``(stages, candidates,
        evidence)`` rows concatenate in shard order, so the returned
        list is positionally identical to the serial refine+detect
        path.  The payload's transaction index is restricted to the
        accounts appearing in the shipped tokens -- detector reads are
        bounded by candidate component members, which are always token
        transfer endpoints.  Returns ``None`` when the pool is unusable
        so the caller falls back serially.
        """
        pool = self._pool
        if pool is None:
            pool = self._pool = SchedulerPool(self.workers)
        if pool.failed:
            return None
        columns = [self.store.tokens[nft] for nft in live]
        account_ids: Set[int] = set()
        for column in columns:
            account_ids.update(column.account_ids)
        accounts = self.store.accounts
        transactions: Dict[str, list] = {}
        for account_id in account_ids:
            address = accounts[account_id]
            collected = context.dataset.transactions_of(address)
            if collected:
                transactions[address] = collected
        payload = SharedPayload(
            accounts=accounts,
            service_ids=self._service_mask,
            contract_ids=self._contract_mask,
            contract_addresses=self.store.addresses_of(
                self._contract_mask.intersection(account_ids)
            ),
            labels=self.labels,
            config=self.config,
            enabled_methods=self.methods,
            account_transactions=transactions,
            skip_service_removal=self.skip_service_removal,
            skip_contract_removal=self.skip_contract_removal,
            skip_zero_volume_removal=self.skip_zero_volume_removal,
            use_kernels=self.use_kernels,
        )
        rows = pool.map_shards(partition_tokens(columns, self.workers), payload)
        if rows is None:
            return None
        states: List[TokenState] = []
        for shard_rows in rows:
            for stages, candidates, evidence in shard_rows:
                states.append(
                    TokenState(stages=stages, candidates=candidates, evidence=evidence)
                )
        return states

    def close(self) -> None:
        """Release the worker pool, if any; serial processing still works."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    def _detect_state(self, refinement, context: DetectionContext) -> TokenState:
        """Run the per-component detectors over one token's refinement."""
        evidence_lists: List[List[DetectionEvidence]] = []
        for component in refinement.candidates:
            evidence: List[DetectionEvidence] = []
            for detector in self.detectors:
                found = detector.detect(component, context)
                if found is not None:
                    evidence.append(found)
            evidence_lists.append(evidence)
        return TokenState(
            stages=refinement.stages,
            candidates=refinement.candidates,
            evidence=evidence_lists,
        )

    def _retire_state(
        self, nft: NFTKey, state: TokenState, flipped_sets: Set[FrozenSet[str]]
    ) -> None:
        """Undo a token's contribution to the cross-token repeated state."""
        for component, evidence in zip(state.candidates, state.evidence):
            accounts = component.accounts
            if evidence:
                self._confirmed_pool[accounts] -= 1
                if self._confirmed_pool[accounts] <= 0:
                    del self._confirmed_pool[accounts]
                    flipped_sets.add(accounts)
            else:
                holders = self._unconfirmed_index.get(accounts)
                if holders is not None:
                    holders.discard(nft)
                    if not holders:
                        del self._unconfirmed_index[accounts]

    def _install_state(
        self, nft: NFTKey, state: TokenState, flipped_sets: Set[FrozenSet[str]]
    ) -> None:
        """Record a token's fresh contribution to the repeated state."""
        self.states[nft] = state
        for component, evidence in zip(state.candidates, state.evidence):
            accounts = component.accounts
            if evidence:
                if self._confirmed_pool[accounts] == 0:
                    flipped_sets.add(accounts)
                self._confirmed_pool[accounts] += 1
            else:
                self._unconfirmed_index.setdefault(accounts, set()).add(nft)

    def _confirmed_entries(
        self, nft: NFTKey
    ) -> Dict[ActivityKey, WashTradingActivity]:
        """The token's currently confirmed activities, keyed for diffing."""
        state = self.states.get(nft)
        entries: Dict[ActivityKey, WashTradingActivity] = {}
        if state is None:
            return entries
        for component, evidence in zip(state.candidates, state.evidence):
            if evidence:
                entries[_activity_key(component)] = WashTradingActivity(
                    component=component, evidence=list(evidence)
                )
            elif (
                self._repeat_enabled
                and self._confirmed_pool[component.accounts] > 0
            ):
                entries[_activity_key(component)] = WashTradingActivity(
                    component=component,
                    evidence=[_repeated_evidence(component)],
                )
        return entries
