"""Typed events emitted by the streaming monitor.

Every tick the monitor compares its detection state before and after the
new blocks and publishes the difference as :class:`Alert` objects --
the marketplace-facing surface of Sec. IX ("can marketplaces prevent
wash trading activities?"): a venue subscribing to these events can warn
buyers on the NFT page, or withhold reward tokens, the moment an
activity is confirmed instead of in a post-hoc study.

Alert-retraction semantics
--------------------------

A live chain head reorganizes, and detection state over a live head is
therefore *revisable*: the monitor publishes revisions as first-class
events rather than silently rewriting history.  The contract
subscribers can rely on:

* ``ACTIVITY_CONFIRMED`` means "confirmed *on the canonical chain as of
  this block*".  It is not final.
* If the confirming transfers are later rolled back by a reorg -- or
  the component dissolves for any other reason (its account set grew,
  the repeated-SCC pool flipped off) -- the monitor emits exactly one
  ``ACTIVITY_RETRACTED`` carrying the previously announced activity.
  A venue that froze rewards on the confirmation can release them on
  the retraction.
* A reorg tick opens with a single ``REORG_DETECTED`` alert (depth and
  fork block attached) *before* any retraction/confirmation it caused,
  so subscribers can correlate the revision burst with its cause.
* An activity that is re-established by the replacement branch is
  announced again with a fresh ``ACTIVITY_CONFIRMED`` -- confirm /
  retract / confirm sequences are possible and each transition is
  explicit.
* ``NFT_FLAGGED`` fires when an NFT gains its first *currently
  confirmed* activity; after a retraction empties the NFT, a later
  re-confirmation flags it again.

Alerts that were already delivered are never rewritten or deleted:
``monitor.alerts`` is an append-only stream, and the current truth is
always the confirmations minus the retractions.

Alert sequence numbers
----------------------

Every alert carries a monitor-assigned ``seq``: a gapless counter equal
to the alert's position in ``monitor.alerts``.  Sequence numbers are the
replay contract of the serving layer (:mod:`repro.serve`): a consumer
that remembers the last ``seq`` it processed can ask for everything
after it and is guaranteed to see every ``ACTIVITY_RETRACTED`` revision
it missed, in publication order -- late joiners catch up without
re-reading the whole stream.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.chain.types import NFTKey
from repro.core.activity import WashTradingActivity


class AlertKind(str, enum.Enum):
    """The event types the monitor publishes."""

    #: A wash trading activity was confirmed for the first time.
    ACTIVITY_CONFIRMED = "activity-confirmed"
    #: An NFT gained its first confirmed activity (page-level warning).
    NFT_FLAGGED = "nft-flagged"
    #: A newly confirmed activity involves a watchlisted account.
    WATCHLIST_HIT = "watchlist-hit"
    #: The chain reorganized under the monitor; previously ingested
    #: blocks were rolled back to the fork point.
    REORG_DETECTED = "reorg-detected"
    #: A previously confirmed activity no longer holds (its transfers
    #: were reorged away, or its component dissolved) and is withdrawn.
    ACTIVITY_RETRACTED = "activity-retracted"
    #: Operator event: a service-level objective exhausted its error
    #: budget (see :mod:`repro.obs.slo`).  Not a detection -- carried on
    #: the same bus so venues and operators share one delivery channel.
    SLO_BREACH = "slo-breach"


@dataclass(frozen=True)
class Alert:
    """One monitor event, tied to the chain position that triggered it."""

    kind: AlertKind
    #: Head block of the tick that raised the alert.
    block: int
    #: Timestamp of that head block (0 when the chain has no blocks yet).
    timestamp: int
    #: The NFT concerned (None only for REORG_DETECTED, which is a
    #: chain-level event).
    nft: Optional[NFTKey] = None
    #: The activity behind the alert: the confirming activity for
    #: ACTIVITY_CONFIRMED and WATCHLIST_HIT, the first activity for
    #: NFT_FLAGGED, the *withdrawn* activity for ACTIVITY_RETRACTED,
    #: and None for REORG_DETECTED.
    activity: Optional[WashTradingActivity] = None
    #: Watchlisted accounts involved (only set for WATCHLIST_HIT).
    watched_accounts: FrozenSet[str] = frozenset()
    #: Blocks rolled back (only set for REORG_DETECTED).
    reorg_depth: int = 0
    #: Deepest block that survived the rollback (REORG_DETECTED only;
    #: -1 when the monitor's entire ingested history diverged).
    fork_block: int = -1
    #: Gapless publication counter assigned by the monitor -- equal to
    #: this alert's index in ``monitor.alerts``.  The replay cursor key
    #: of the serving layer (-1 only for alerts built outside a monitor).
    seq: int = -1
    #: Trace id of the monitor tick that raised the alert ("" for alerts
    #: built outside a monitor).  Deterministic per tick -- links the
    #: alert to the tick's ingest spans and latency-ledger marks.
    trace: str = ""
    #: Name of the breached objective (SLO_BREACH only).
    slo: str = ""
    #: Error-budget consumption at breach time, 1.0 = exhausted
    #: (SLO_BREACH only).
    budget_used: float = 0.0
    #: Human-readable operator detail (SLO_BREACH only).
    detail: str = ""

    @property
    def accounts(self) -> FrozenSet[str]:
        """The colluding accounts behind the alert (empty for reorgs)."""
        return self.activity.accounts if self.activity is not None else frozenset()

    @property
    def latency_blocks(self) -> int:
        """Blocks between the last wash trade and the alert being raised.

        The venue-side detection lag: 0 means the activity was flagged in
        the very block that completed it.  Only meaningful for
        confirmation-style alerts; 0 for REORG_DETECTED, and possibly
        negative for ACTIVITY_RETRACTED (the retracted activity's
        transfers may sit above the post-rollback head).
        """
        if self.activity is None:
            return 0
        last_trade_block = max(
            transfer.block_number for transfer in self.activity.component.transfers
        )
        return self.block - last_trade_block


@dataclass(frozen=True)
class MonitorSnapshot:
    """Per-tick statistics of the monitor's state."""

    #: Monotone tick counter (first processed tick is 1).
    tick: int
    #: Inclusive block range this tick ingested (from > to for empty
    #: ticks; after a rollback, from_block restarts at the fork + 1, so
    #: it may precede the previous snapshot's to_block).
    from_block: int
    to_block: int
    #: ERC-721 transfer events appended this tick.
    new_transfer_count: int
    #: Tokens receiving new transfers this tick.
    touched_token_count: int
    #: Tokens re-refined this tick (touched + account-activity dirty).
    dirty_token_count: int
    #: Confirmed activities gained / lost this tick.
    newly_confirmed_count: int
    retracted_count: int
    #: Totals after the tick.
    total_transfer_count: int
    total_token_count: int
    confirmed_activity_count: int
    flagged_nft_count: int
    #: Blocks rolled back by a reorg before this tick's scan (0: none).
    reorg_depth: int = 0
    #: Transfers the rollback removed (re-ingested canonical rows count
    #: toward new_transfer_count as usual).
    rolled_back_transfer_count: int = 0
    #: Alerts raised this tick.
    alerts: Tuple[Alert, ...] = field(default_factory=tuple)
    #: Exactly the tokens the scheduler reprocessed this tick (touched,
    #: rolled back, or flipped by the repeated-SCC pool), in
    #: deterministic token order.  ``len(dirty_nfts) ==
    #: dirty_token_count``; the serving layer keys its aggregate-cache
    #: invalidation on this set.
    dirty_nfts: Tuple[NFTKey, ...] = field(default_factory=tuple)
    #: The tick's deterministic trace id -- shared by every alert the
    #: tick raised and by the tick's spans ("" for snapshots built
    #: outside a monitor).
    trace: str = ""

    @property
    def is_empty(self) -> bool:
        """True when the tick changed nothing: no new transfers, no
        re-detection and no rollback."""
        return (
            self.new_transfer_count == 0
            and self.dirty_token_count == 0
            and self.reorg_depth == 0
        )
