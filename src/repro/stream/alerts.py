"""Typed events emitted by the streaming monitor.

Every tick the monitor compares its detection state before and after the
new blocks and publishes the difference as :class:`Alert` objects --
the marketplace-facing surface of Sec. IX ("can marketplaces prevent
wash trading activities?"): a venue subscribing to these events can warn
buyers on the NFT page, or withhold reward tokens, the moment an
activity is confirmed instead of in a post-hoc study.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.chain.types import NFTKey
from repro.core.activity import WashTradingActivity


class AlertKind(str, enum.Enum):
    """The three event types the monitor publishes."""

    #: A wash trading activity was confirmed for the first time.
    ACTIVITY_CONFIRMED = "activity-confirmed"
    #: An NFT gained its first confirmed activity (page-level warning).
    NFT_FLAGGED = "nft-flagged"
    #: A newly confirmed activity involves a watchlisted account.
    WATCHLIST_HIT = "watchlist-hit"


@dataclass(frozen=True)
class Alert:
    """One monitor event, tied to the chain position that triggered it."""

    kind: AlertKind
    #: Head block of the tick that raised the alert.
    block: int
    #: Timestamp of that head block (0 when the chain has no blocks yet).
    timestamp: int
    nft: NFTKey
    #: The confirming activity (ACTIVITY_CONFIRMED and WATCHLIST_HIT carry
    #: the activity that fired; NFT_FLAGGED carries the first activity).
    activity: WashTradingActivity
    #: Watchlisted accounts involved (only set for WATCHLIST_HIT).
    watched_accounts: FrozenSet[str] = frozenset()

    @property
    def accounts(self) -> FrozenSet[str]:
        """The colluding accounts behind the alert."""
        return self.activity.accounts

    @property
    def latency_blocks(self) -> int:
        """Blocks between the last wash trade and the alert being raised.

        The venue-side detection lag: 0 means the activity was flagged in
        the very block that completed it.
        """
        last_trade_block = max(
            transfer.block_number for transfer in self.activity.component.transfers
        )
        return self.block - last_trade_block


@dataclass(frozen=True)
class MonitorSnapshot:
    """Per-tick statistics of the monitor's state."""

    #: Monotone tick counter (first processed tick is 1).
    tick: int
    #: Inclusive block range this tick ingested (from > to for empty ticks).
    from_block: int
    to_block: int
    #: ERC-721 transfer events appended this tick.
    new_transfer_count: int
    #: Tokens receiving new transfers this tick.
    touched_token_count: int
    #: Tokens re-refined this tick (touched + account-activity dirty).
    dirty_token_count: int
    #: Confirmed activities gained / lost this tick.
    newly_confirmed_count: int
    retracted_count: int
    #: Totals after the tick.
    total_transfer_count: int
    total_token_count: int
    confirmed_activity_count: int
    flagged_nft_count: int
    #: Alerts raised this tick.
    alerts: Tuple[Alert, ...] = field(default_factory=tuple)

    @property
    def is_empty(self) -> bool:
        """True when the tick ingested no new blocks or transfers."""
        return self.new_transfer_count == 0 and self.dirty_token_count == 0
