"""Incremental dataset construction: following the chain head.

:func:`~repro.ingest.dataset.build_dataset` materializes the whole
Sec. III dataset in one pass.  :class:`DatasetCursor` produces the same
state *incrementally*: each :meth:`advance` scans only the blocks mined
since the previous call, appends the new transfers to a mutable
:class:`~repro.engine.store.ColumnarTransferStore`, keeps the per-account
transaction lists up to date, and reports which tokens and accounts were
touched -- the input of the dirty-token scheduler.

Invariant: after advancing to block ``B``, the cursor's transfers, store
and account transactions are exactly what ``build_dataset(node,
to_block=B)`` would produce (the stream/batch parity tests pin this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.chain.index import transaction_parties
from repro.chain.node import EthereumNode
from repro.chain.transaction import Transaction
from repro.chain.types import NFTKey, NULL_ADDRESS
from repro.engine.store import ColumnarTransferStore
from repro.ingest.compliance import ComplianceReport, check_erc721_compliance
from repro.ingest.dataset import NFTDataset, transfer_from_log
from repro.ingest.marketplace_attribution import build_reverse_index
from repro.ingest.records import NFTTransfer
from repro.ingest.transfer_scan import TransferScanResult, scan_erc721_transfer_logs


@dataclass(frozen=True)
class CursorTick:
    """What one :meth:`DatasetCursor.advance` call ingested."""

    #: Inclusive block range scanned (``from_block > to_block`` when the
    #: tick was a no-op: nothing new, or a request behind the cursor).
    from_block: int
    to_block: int
    #: ERC-721-shaped events seen, before the compliance filter.
    event_count: int = 0
    #: Transfers retained after the compliance filter.
    new_transfer_count: int = 0
    #: Tokens that received new transfers, in first-touch (scan) order.
    touched_nfts: Tuple[NFTKey, ...] = ()
    #: Accounts whose collected transaction list changed this tick.
    touched_accounts: FrozenSet[str] = frozenset()
    #: Accounts that became involved (first transfer endpoint) this tick.
    new_account_count: int = 0

    @property
    def is_noop(self) -> bool:
        """True when the tick scanned no blocks at all."""
        return self.to_block < self.from_block


class DatasetCursor:
    """Appends freshly mined blocks to a growing dataset.

    The cursor owns the mutable counterparts of everything
    ``build_dataset`` returns: ``transfers_by_nft``, the compliance
    report, the accumulated scan result, ``account_transactions`` and the
    columnar ``store`` the detection engine reads.  Requests to advance
    to a block at or behind the cursor are no-ops, so feeding the same
    head twice (an empty tick) or a stale/out-of-order target is safe.
    """

    def __init__(
        self,
        node: EthereumNode,
        marketplace_addresses: Mapping[str, str],
        enforce_compliance: bool = True,
        start_block: int = 0,
    ) -> None:
        self.node = node
        self.marketplace_addresses = dict(marketplace_addresses)
        self.enforce_compliance = enforce_compliance
        self._venue_by_address = build_reverse_index(marketplace_addresses)
        #: Next block to ingest; everything below has been processed.
        self.next_block = max(start_block, 0)
        self.transfers_by_nft: Dict[NFTKey, List[NFTTransfer]] = {}
        self.account_transactions: Dict[str, List[Transaction]] = {}
        self.compliance = ComplianceReport()
        self.scan = TransferScanResult()
        self.store = ColumnarTransferStore()
        self._probed_contracts: Set[str] = set()
        #: Involved account -> tokens it appears in (dirty propagation).
        self._tokens_by_account: Dict[str, Set[NFTKey]] = {}

    # -- queries -----------------------------------------------------------
    @property
    def processed_block(self) -> int:
        """Highest block already ingested (-1 before the first tick)."""
        return self.next_block - 1

    @property
    def transfer_count(self) -> int:
        """Transfers retained so far."""
        return sum(len(transfers) for transfers in self.transfers_by_nft.values())

    def tokens_touching(self, accounts: Iterable[str]) -> Set[NFTKey]:
        """Every known token one of ``accounts`` ever appeared in."""
        touching: Set[NFTKey] = set()
        for account in accounts:
            touching |= self._tokens_by_account.get(account, set())
        return touching

    def as_dataset(self) -> NFTDataset:
        """A live :class:`NFTDataset` view over the cursor's state.

        The view shares the cursor's dictionaries (it grows with further
        ticks) and carries the already-built columnar store, so batch
        consumers -- tables, figures, a one-off ``WashTradingPipeline``
        run -- work on streamed data without any copying.
        """
        dataset = NFTDataset(
            transfers_by_nft=self.transfers_by_nft,
            compliance=self.compliance,
            scan=self.scan,
            account_transactions=self.account_transactions,
            marketplace_addresses=dict(self.marketplace_addresses),
        )
        dataset._columnar_store = self.store
        return dataset

    # -- ingest ------------------------------------------------------------
    def advance(self, to_block: Optional[int] = None) -> CursorTick:
        """Ingest every block up to ``to_block`` (default: current head)."""
        head = self.node.block_number
        stop = head if to_block is None else min(to_block, head)
        from_block = self.next_block
        if stop < from_block:
            return CursorTick(from_block=from_block, to_block=from_block - 1)

        tick_scan = scan_erc721_transfer_logs(
            self.node, from_block=from_block, to_block=stop
        )
        self.scan.matches.extend(tick_scan.matches)
        self.scan.emitting_contracts |= tick_scan.emitting_contracts
        self._probe_new_contracts(tick_scan.emitting_contracts)

        new_by_nft: Dict[NFTKey, List[NFTTransfer]] = {}
        for tx, log in tick_scan.matches:
            if self.enforce_compliance and not self.compliance.is_compliant(
                log.address
            ):
                continue
            transfer = transfer_from_log(tx, log, self._venue_by_address)
            new_by_nft.setdefault(transfer.nft, []).append(transfer)

        new_accounts = self._new_involved_accounts(new_by_nft)
        appended = self._append_block_transactions(from_block, stop, new_accounts)
        self._collect_new_account_histories(new_accounts, stop)

        new_transfer_count = 0
        for nft, chunk in new_by_nft.items():
            chunk.sort(key=lambda item: (item.block_number, item.tx_hash))
            self.transfers_by_nft.setdefault(nft, []).extend(chunk)
            self.store.append_token_transfers(nft, chunk)
            new_transfer_count += len(chunk)
            for transfer in chunk:
                for endpoint in (transfer.sender, transfer.recipient):
                    self._tokens_by_account.setdefault(endpoint, set()).add(nft)

        # Committed only once the whole tick ingested cleanly: a raise
        # above leaves the cursor retryable instead of silently skipping
        # the blocks of a half-processed tick.
        self.next_block = stop + 1
        return CursorTick(
            from_block=from_block,
            to_block=stop,
            event_count=tick_scan.event_count,
            new_transfer_count=new_transfer_count,
            touched_nfts=tuple(new_by_nft),
            touched_accounts=frozenset(appended) | frozenset(new_accounts),
            new_account_count=len(new_accounts),
        )

    # -- internals ---------------------------------------------------------
    def _probe_new_contracts(self, emitting: Set[str]) -> None:
        """ERC-165-probe contracts seen for the first time this tick."""
        unseen = sorted(emitting - self._probed_contracts)
        if not unseen:
            return
        probe = check_erc721_compliance(self.node, unseen)
        self.compliance.compliant |= probe.compliant
        self.compliance.non_compliant |= probe.non_compliant
        self._probed_contracts.update(unseen)

    def _new_involved_accounts(
        self, new_by_nft: Dict[NFTKey, List[NFTTransfer]]
    ) -> List[str]:
        """Endpoints of the tick's transfers not yet followed, scan order."""
        new_accounts: List[str] = []
        seen: Set[str] = set()
        for chunk in new_by_nft.values():
            for transfer in chunk:
                for endpoint in (transfer.sender, transfer.recipient):
                    if (
                        endpoint != NULL_ADDRESS
                        and endpoint not in seen
                        and endpoint not in self.account_transactions
                    ):
                        seen.add(endpoint)
                        new_accounts.append(endpoint)
        return new_accounts

    def _append_block_transactions(
        self, from_block: int, to_block: int, new_accounts: List[str]
    ) -> List[str]:
        """Attribute the tick's transactions to already-followed accounts.

        Accounts becoming involved this very tick are skipped -- their
        full (clamped) history is fetched separately and already covers
        these blocks.  Returns the accounts whose lists grew.
        """
        skip = set(new_accounts)
        pending: Dict[str, List[Transaction]] = {}
        for block in self.node.iter_blocks(from_block, to_block):
            for tx in block.transactions:
                for party in transaction_parties(tx):
                    if party in skip or party not in self.account_transactions:
                        continue
                    pending.setdefault(party, []).append(tx)
        for account, transactions in pending.items():
            transactions.sort(key=lambda tx: (tx.block_number, tx.hash))
            self.account_transactions[account].extend(transactions)
        return list(pending)

    def _collect_new_account_histories(
        self, new_accounts: List[str], to_block: int
    ) -> None:
        """Fetch the full history of newly involved accounts, clamped.

        The clamp to ``to_block`` is what makes intermediate cursor
        states equal to a batch build over the same prefix: the node
        holds the whole simulated chain, but a monitor following the
        head must not see transactions from blocks it has not reached.
        """
        for account in new_accounts:
            transactions = [
                tx
                for tx in self.node.get_transactions_of(account)
                if tx.block_number <= to_block
            ]
            transactions.sort(key=lambda tx: (tx.block_number, tx.hash))
            self.account_transactions[account] = transactions
