"""Incremental dataset construction: following a *reorganizing* chain head.

:func:`~repro.ingest.dataset.build_dataset` materializes the whole
Sec. III dataset in one pass.  :class:`DatasetCursor` produces the same
state *incrementally*: each :meth:`advance` scans only the blocks mined
since the previous call, appends the new transfers to a mutable
:class:`~repro.engine.store.ColumnarTransferStore`, keeps the per-account
transaction lists up to date, and reports which tokens and accounts were
touched -- the input of the dirty-token scheduler.

Two properties distinguish the cursor from a naive follower:

* **Tick atomicity.**  Every node read of a tick's *ingest* happens
  before any cursor state is mutated; the commit itself is pure
  in-memory appends.  A node failure mid-tick therefore leaves the
  cursor retryable -- no half-ingested blocks, no double ingestion.
  The one mutation preceding the staged reads is a reorg rollback,
  which is itself applied atomically (in-memory only) and whose report
  is *durable*: if the rest of the tick fails afterwards, the rolled
  back tokens and accounts are carried over and delivered by the first
  tick that completes, so a retry never loses the dirty set.

* **Reorg safety.**  A live head reorganizes.  The cursor keeps a
  bounded per-block journal (block hash, scan-match span, appended rows
  per token, newly probed contracts, newly involved accounts and
  account-to-token links) for the most recent ``max_reorg_depth``
  blocks.  At the start of every tick it compares its journaled tail
  hash against the node; on divergence it walks the journal back to the
  fork point and rolls back everything past it -- scan matches, the
  compliance report, transfer lists, store columns (row-count
  watermarks; re-columnarization only for tokens that went through the
  out-of-order rebuild fallback), account histories and the
  account-to-token index -- then re-ingests the canonical branch.  A
  divergence reaching below the journaled window raises
  :class:`ReorgTooDeepError`.  Note the window is measured from the
  highest head the cursor has committed: rolling a block back deletes
  its journal entry (its contributions were undone), so successive
  head regressions *consume* the window until freshly ingested blocks
  rebuild it -- budget headroom accordingly.

Invariant: after advancing to block ``B`` of the *current canonical
chain* -- through any sequence of advances and rollbacks -- the cursor's
transfers, store and account transactions are exactly what
``build_dataset(node, to_block=B)`` would produce (the stream/batch
parity tests, including the randomized reorg replays, pin this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.chain.index import transaction_parties
from repro.chain.node import EthereumNode
from repro.chain.transaction import Transaction
from repro.chain.types import NFTKey, NULL_ADDRESS
from repro.engine.store import ColumnarTransferStore
from repro.ingest.compliance import ComplianceReport, check_erc721_compliance
from repro.ingest.dataset import NFTDataset, transfer_from_log
from repro.ingest.marketplace_attribution import build_reverse_index
from repro.ingest.records import NFTTransfer
from repro.ingest.transfer_scan import TransferScanResult, scan_erc721_transfer_logs
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry

#: How many processed blocks the rollback journal retains by default.
#: Real-chain reorgs are almost always shallow (a handful of blocks);
#: post-merge Ethereum finalizes in ~2 epochs (64 slots), which this
#: default matches.
DEFAULT_MAX_REORG_DEPTH = 64


class ReorgTooDeepError(RuntimeError):
    """The chain diverged below the cursor's journaled window.

    The cursor can only roll back blocks it still holds journal entries
    for; a divergence below the journal floor (or a head regression with
    no journal coverage) cannot be repaired in place.  The floor sits up
    to ``max_reorg_depth`` blocks under the *highest* head the cursor
    has committed -- rollbacks delete the entries of the blocks they
    undo, so repeated head regressions shrink the remaining window until
    new blocks are ingested.  The caller must rebuild from scratch -- or
    run with a larger ``max_reorg_depth``.
    """

    def __init__(self, processed_block: int, head: int, journal_floor: int) -> None:
        super().__init__(
            f"chain diverged below the journaled window (cursor at block "
            f"{processed_block}, head {head}, journal floor {journal_floor}); "
            f"rebuild from scratch or raise max_reorg_depth"
        )
        self.processed_block = processed_block
        self.head = head
        self.journal_floor = journal_floor


@dataclass
class BlockJournalEntry:
    """Everything one ingested block contributed to the cursor's state.

    The rollback unit: undoing a block means removing exactly these
    contributions, newest block first, down to the fork point.
    """

    number: int
    #: Chained block hash at ingest time; a later mismatch against the
    #: node reveals that this block was reorganized away -- or, for the
    #: journal tail, that a still-open head block gained transactions.
    hash: str
    #: The block's timestamp and transaction hashes at ingest time,
    #: distinguishing benign head-block growth (same timestamp, old
    #: transactions an exact prefix of the new ones) from a real reorg.
    block_timestamp: int = 0
    tx_hashes: Tuple[str, ...] = ()
    #: Scan matches appended for this block (matches are block-ordered,
    #: so a rollback removes the summed tail span).
    match_count: int = 0
    #: Contracts that emitted their first ERC-721-shaped event in this
    #: block (and were therefore ERC-165-probed because of it).
    new_contracts: Tuple[str, ...] = ()
    #: Rows this block appended per token (store/transfer watermarks).
    token_row_counts: Dict[NFTKey, int] = field(default_factory=dict)
    #: Accounts first involved (as a transfer endpoint) in this block.
    new_accounts: Tuple[str, ...] = ()
    #: (account, token) links first created by this block's transfers.
    new_links: Tuple[Tuple[str, NFTKey], ...] = ()
    #: Accounts whose collected transaction list holds a transaction of
    #: this block (rollback trims exactly these tails, instead of
    #: scanning every followed account).
    tx_accounts: Tuple[str, ...] = ()


@dataclass(frozen=True)
class _RollbackResult:
    """What a journal rollback undid (folded into the CursorTick)."""

    depth: int = 0
    fork_block: int = -1
    transfer_count: int = 0
    #: Tokens that lost rows (still present) or vanished entirely.
    nfts: Tuple[NFTKey, ...] = ()
    accounts: FrozenSet[str] = frozenset()
    #: Highest block the cursor had covered before the rollback -- the
    #: tick re-ingests at least up to here (clamped to the head).
    recover_to: int = -1

    def merge(self, other: "_RollbackResult") -> "_RollbackResult":
        """Fold a later rollback into this one (reported as a single
        revision once a tick finally completes)."""
        seen = set(self.nfts)
        if self.depth == 0:
            fork = other.fork_block
        elif other.depth == 0:
            fork = self.fork_block
        else:
            fork = min(self.fork_block, other.fork_block)
        return _RollbackResult(
            depth=self.depth + other.depth,
            fork_block=fork,
            transfer_count=self.transfer_count + other.transfer_count,
            nfts=self.nfts + tuple(n for n in other.nfts if n not in seen),
            accounts=self.accounts | other.accounts,
            recover_to=max(self.recover_to, other.recover_to),
        )


_NO_ROLLBACK = _RollbackResult()


@dataclass(frozen=True)
class CursorTick:
    """What one :meth:`DatasetCursor.advance` call ingested."""

    #: Inclusive block range scanned (``from_block > to_block`` when the
    #: tick scanned nothing: no new blocks, or a request behind the
    #: cursor).
    from_block: int
    to_block: int
    #: ERC-721-shaped events seen, before the compliance filter.
    event_count: int = 0
    #: Transfers retained after the compliance filter.
    new_transfer_count: int = 0
    #: Tokens that received new transfers, in first-touch (scan) order.
    touched_nfts: Tuple[NFTKey, ...] = ()
    #: Accounts whose collected transaction list changed this tick
    #: (including lists truncated by a rollback).
    touched_accounts: FrozenSet[str] = frozenset()
    #: Accounts that became involved (first transfer endpoint) this tick.
    new_account_count: int = 0
    #: Blocks rolled back before scanning (0 when no reorg was seen).
    reorg_depth: int = 0
    #: Deepest block that survived the rollback (-1 without a reorg, or
    #: when the entire journaled history diverged).
    fork_block: int = -1
    #: Transfers removed by the rollback (the canonical replacements, if
    #: any, are counted by ``new_transfer_count`` like any other rows).
    #: Can be non-zero with ``reorg_depth == 0``: an open head block that
    #: merely gained transactions is re-ingested wholesale, which is
    #: forward growth, not a reorg.
    rolled_back_transfer_count: int = 0
    #: Tokens the rollback touched -- truncated or removed outright.
    #: Removed tokens are no longer in the store; the scheduler retracts
    #: their confirmed activities when they are marked dirty.
    rolled_back_nfts: Tuple[NFTKey, ...] = ()

    @property
    def is_noop(self) -> bool:
        """True when the tick neither scanned a block nor rolled one back."""
        return self.to_block < self.from_block and self.reorg_depth == 0

    @property
    def saw_reorg(self) -> bool:
        """True when this tick had to undo previously ingested blocks."""
        return self.reorg_depth > 0


class _CursorMetrics:
    """The cursor's instruments, registered once at construction.

    All recording happens at tick granularity (one update per completed
    :meth:`DatasetCursor.advance`), never inside per-row loops, so the
    instrumented cursor does identical work per transfer as the bare
    one -- parity neutrality by construction.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.blocks = registry.counter(
            "cursor_blocks_ingested_total", "Blocks ingested across all ticks."
        )
        self.transfers = registry.counter(
            "cursor_transfers_ingested_total",
            "Compliant NFT transfers committed to the store.",
        )
        self.events = registry.counter(
            "cursor_events_scanned_total",
            "Raw Transfer log events scanned (pre-compliance filter).",
        )
        self.reorgs = registry.counter(
            "cursor_reorgs_total", "Chain reorganizations repaired in place."
        )
        self.rolled_back_blocks = registry.counter(
            "cursor_rolled_back_blocks_total",
            "Blocks undone by reorg rollbacks.",
        )
        self.rolled_back_transfers = registry.counter(
            "cursor_rolled_back_transfers_total",
            "Transfers removed by reorg rollbacks.",
        )
        self.reorg_depth = registry.histogram(
            "cursor_reorg_depth_blocks", "Depth of each repaired reorg."
        )
        self.journal_blocks = registry.gauge(
            "cursor_journal_blocks", "Blocks currently held in the rollback journal."
        )
        self.processed_block = registry.gauge(
            "cursor_processed_block", "Highest block ingested so far."
        )

    def record_tick(self, cursor: "DatasetCursor", tick: "CursorTick") -> None:
        if tick.to_block >= tick.from_block:
            self.blocks.inc(tick.to_block - tick.from_block + 1)
        self.transfers.inc(tick.new_transfer_count)
        self.events.inc(tick.event_count)
        if tick.saw_reorg:
            self.reorgs.inc()
            self.reorg_depth.observe(tick.reorg_depth)
            self.rolled_back_blocks.inc(tick.reorg_depth)
            self.rolled_back_transfers.inc(tick.rolled_back_transfer_count)
        self.journal_blocks.set(len(cursor._journal))
        self.processed_block.set(cursor.processed_block)


class DatasetCursor:
    """Appends freshly mined blocks to a growing dataset, reorg-safely.

    The cursor owns the mutable counterparts of everything
    ``build_dataset`` returns: ``transfers_by_nft``, the compliance
    report, the accumulated scan result, ``account_transactions`` and the
    columnar ``store`` the detection engine reads.  Requests to advance
    to a block at or behind the cursor are no-ops, so feeding the same
    head twice (an empty tick) or a stale/out-of-order target is safe --
    but a *head that itself moved backwards* is treated as the reorg it
    is: the cursor rolls back to the surviving prefix (or raises
    :class:`ReorgTooDeepError` if it cannot) instead of silently
    skipping.
    """

    def __init__(
        self,
        node: EthereumNode,
        marketplace_addresses: Mapping[str, str],
        enforce_compliance: bool = True,
        start_block: int = 0,
        max_reorg_depth: int = DEFAULT_MAX_REORG_DEPTH,
        retain_scan_matches: bool = True,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.registry = registry if registry is not None else NULL_REGISTRY
        self._metrics = _CursorMetrics(self.registry)
        self.node = node
        self.marketplace_addresses = dict(marketplace_addresses)
        self.enforce_compliance = enforce_compliance
        self.max_reorg_depth = max(max_reorg_depth, 0)
        #: Bounded-memory mode: when False, raw (transaction, log) scan
        #: matches are dropped as soon as their blocks fall out of the
        #: rollback journal -- they exist only for batch-view parity of
        #: :meth:`as_dataset`, and everything detection reads (store,
        #: transfer lists, account histories) is retained in full.  The
        #: retained match list then stays O(journal), not O(chain);
        #: ``scan.event_count`` remains exact via ``scan.pruned_count``.
        self.retain_scan_matches = retain_scan_matches
        self._venue_by_address = build_reverse_index(marketplace_addresses)
        #: Next block to ingest; everything below has been processed.
        self.next_block = max(start_block, 0)
        self._start_block = self.next_block
        self.transfers_by_nft: Dict[NFTKey, List[NFTTransfer]] = {}
        self.account_transactions: Dict[str, List[Transaction]] = {}
        self.compliance = ComplianceReport()
        self.scan = TransferScanResult()
        self.store = ColumnarTransferStore()
        self._probed_contracts: Set[str] = set()
        #: Involved account -> tokens it appears in (dirty propagation).
        self._tokens_by_account: Dict[str, Set[NFTKey]] = {}
        #: Per-block undo journal, oldest first, contiguous, bounded to
        #: the last ``max_reorg_depth`` processed blocks.
        self._journal: List[BlockJournalEntry] = []
        #: Rollbacks applied but not yet reported through a completed
        #: tick.  A rollback mutates the cursor immediately; if the rest
        #: of the tick then fails on a node read, the retried tick finds
        #: the journal consistent and would otherwise lose the dirty set
        #: -- so the report survives here until a tick returns it.
        self._pending_rollback: Optional[_RollbackResult] = None

    # -- queries -----------------------------------------------------------
    @property
    def processed_block(self) -> int:
        """Highest block already ingested (-1 before the first tick)."""
        return self.next_block - 1

    @property
    def transfer_count(self) -> int:
        """Transfers retained so far."""
        return sum(len(transfers) for transfers in self.transfers_by_nft.values())

    @property
    def journal_floor(self) -> int:
        """Oldest block the cursor can still roll back to the front of."""
        return self._journal[0].number if self._journal else self.next_block

    def tokens_touching(self, accounts: Iterable[str]) -> Set[NFTKey]:
        """Every known token one of ``accounts`` ever appeared in."""
        touching: Set[NFTKey] = set()
        for account in accounts:
            touching |= self._tokens_by_account.get(account, set())
        return touching

    def as_dataset(self) -> NFTDataset:
        """A live :class:`NFTDataset` view over the cursor's state.

        The view shares the cursor's dictionaries (it grows with further
        ticks) and carries the already-built columnar store, so batch
        consumers -- tables, figures, a one-off ``WashTradingPipeline``
        run -- work on streamed data without any copying.
        """
        dataset = NFTDataset(
            transfers_by_nft=self.transfers_by_nft,
            compliance=self.compliance,
            scan=self.scan,
            account_transactions=self.account_transactions,
            marketplace_addresses=dict(self.marketplace_addresses),
        )
        dataset._columnar_store = self.store
        return dataset

    # -- ingest ------------------------------------------------------------
    def advance(self, to_block: Optional[int] = None) -> CursorTick:
        """Ingest every block up to ``to_block`` -- see :meth:`_advance`.

        This wrapper only instruments: the whole tick runs under an
        ``ingest`` span and the completed tick's counts are recorded at
        tick granularity, covering both return paths of the
        implementation (rollback-only and full-ingest ticks).
        """
        with self.registry.span("ingest") as span:
            tick = self._advance(to_block)
            span.annotate(
                blocks=max(0, tick.to_block - tick.from_block + 1),
                transfers=tick.new_transfer_count,
                reorg_depth=tick.reorg_depth,
            )
        self._metrics.record_tick(self, tick)
        return tick

    def _advance(self, to_block: Optional[int] = None) -> CursorTick:
        """Ingest every block up to ``to_block`` (default: current head).

        Before scanning, the journaled tail is checked against the
        node's current block hashes; a divergence (including a head that
        regressed below the cursor) rolls the cursor back to the fork
        point first, then the canonical branch is ingested like any
        other new blocks.  The tick itself is atomic: every node read
        happens before the first cursor mutation, so an exception mid-
        tick leaves the cursor unchanged and the call retryable.
        """
        head = self.node.block_number
        fresh = self._detect_divergence_and_rollback(head)
        if fresh is not _NO_ROLLBACK:
            self._pending_rollback = (
                self._pending_rollback.merge(fresh)
                if self._pending_rollback is not None
                else fresh
            )
        rollback = (
            self._pending_rollback
            if self._pending_rollback is not None
            else _NO_ROLLBACK
        )
        from_block = self.next_block
        stop = head if to_block is None else min(to_block, head)
        if rollback is not _NO_ROLLBACK:
            # A stale target must not suppress re-ingesting what the
            # rollback removed: recover at least the previously covered
            # range (clamped to the head), so a tick never ends with
            # *less* canonical history than it could have.
            stop = max(stop, min(rollback.recover_to, head))
        if stop < from_block:
            self._pending_rollback = None
            return CursorTick(
                from_block=from_block,
                to_block=from_block - 1,
                touched_accounts=rollback.accounts,
                reorg_depth=rollback.depth,
                fork_block=rollback.fork_block,
                rolled_back_transfer_count=rollback.transfer_count,
                rolled_back_nfts=rollback.nfts,
            )

        # ---- stage: every node read, no cursor mutation -----------------
        tick_scan = scan_erc721_transfer_logs(
            self.node, from_block=from_block, to_block=stop
        )
        unseen = sorted(tick_scan.emitting_contracts - self._probed_contracts)
        probe = (
            check_erc721_compliance(self.node, unseen)
            if unseen
            else ComplianceReport()
        )
        # Staged membership view; copy only when the probe added anything
        # (reads happen before the commit merges the probe in).
        compliant_view = (
            self.compliance.compliant | probe.compliant
            if probe.compliant
            else self.compliance.compliant
        )

        new_by_nft: Dict[NFTKey, List[NFTTransfer]] = {}
        for tx, log in tick_scan.matches:
            if self.enforce_compliance and log.address not in compliant_view:
                continue
            transfer = transfer_from_log(tx, log, self._venue_by_address)
            new_by_nft.setdefault(transfer.nft, []).append(transfer)
        for chunk in new_by_nft.values():
            chunk.sort(key=lambda item: (item.block_number, item.tx_hash))

        new_accounts = self._new_involved_accounts(new_by_nft)
        pending = self._stage_block_transactions(from_block, stop, new_accounts)
        new_histories = self._stage_new_account_histories(new_accounts, stop)
        journal_entries = self._stage_journal(
            from_block, stop, tick_scan, unseen, new_by_nft, new_accounts,
            pending, new_histories,
        )

        # ---- commit: pure in-memory appends, all or nothing -------------
        self.scan.matches.extend(tick_scan.matches)
        self.scan.emitting_contracts |= tick_scan.emitting_contracts
        self.compliance.compliant |= probe.compliant
        self.compliance.non_compliant |= probe.non_compliant
        self._probed_contracts.update(unseen)

        new_transfer_count = 0
        for nft, chunk in new_by_nft.items():
            self.transfers_by_nft.setdefault(nft, []).extend(chunk)
            self.store.append_token_transfers(nft, chunk)
            new_transfer_count += len(chunk)
            for transfer in chunk:
                for endpoint in (transfer.sender, transfer.recipient):
                    self._tokens_by_account.setdefault(endpoint, set()).add(nft)

        for account, transactions in pending.items():
            self.account_transactions[account].extend(transactions)
        for account, transactions in new_histories.items():
            self.account_transactions[account] = transactions

        self._journal.extend(journal_entries)
        # One entry beyond the configured depth: repairing a depth-d
        # reorg needs the fork block (d+1 back) still verifiable.
        retain = self.max_reorg_depth + 1
        if len(self._journal) > retain:
            del self._journal[: len(self._journal) - retain]
        if not self.retain_scan_matches:
            self._prune_scan_matches()
        self.next_block = stop + 1
        self._pending_rollback = None

        return CursorTick(
            from_block=from_block,
            to_block=stop,
            event_count=tick_scan.event_count,
            new_transfer_count=new_transfer_count,
            touched_nfts=tuple(new_by_nft),
            touched_accounts=(
                frozenset(pending) | frozenset(new_accounts) | rollback.accounts
            ),
            new_account_count=len(new_accounts),
            reorg_depth=rollback.depth,
            fork_block=rollback.fork_block,
            rolled_back_transfer_count=rollback.transfer_count,
            rolled_back_nfts=rollback.nfts,
        )

    def _prune_scan_matches(self) -> None:
        """Drop scan matches whose blocks left the rollback journal.

        Matches are block-ordered across ticks and rollbacks only ever
        remove journaled tails, so everything before the journaled span
        is permanent -- a rollback can never need it again.  Keeping the
        list trimmed to the journal's own match span bounds the raw
        match retention at O(journal) regardless of chain length.
        """
        retained = sum(entry.match_count for entry in self._journal)
        drop = len(self.scan.matches) - retained
        if drop > 0:
            del self.scan.matches[:drop]
            self.scan.pruned_count += drop

    # -- reorg handling ----------------------------------------------------
    def _detect_divergence_and_rollback(self, head: int) -> _RollbackResult:
        """Compare the journaled tail against the node; roll back if needed.

        Walks the journal newest-first looking for the deepest block that
        is still canonical (same hash, still mined).  Everything past it
        is undone.  A divergence running below the journal -- or a head
        regression with no journal coverage at all -- cannot be repaired
        and raises :class:`ReorgTooDeepError`.
        """
        if not self._journal:
            # Nothing ingested yet (e.g. a start_block still in the
            # future) leaves nothing to diverge from; but a regressed
            # head over ingested-yet-unjournaled history is beyond
            # repair.
            if head < self.processed_block and self.next_block > self._start_block:
                raise ReorgTooDeepError(self.processed_block, head, self.next_block)
            return _NO_ROLLBACK
        fork: Optional[int] = None
        for entry in reversed(self._journal):
            if entry.number <= head and self.node.get_block_hash(entry.number) == entry.hash:
                fork = entry.number
                break
        if fork == self.processed_block:
            return _NO_ROLLBACK
        tail = self._journal[-1]
        if (
            tail.number <= head
            and (fork == tail.number - 1 or (fork is None and len(self._journal) == 1))
            and self._head_block_merely_grew(tail)
        ):
            # Not a reorg: the tail was journaled while it was still the
            # open head block, and it has since gained transactions (the
            # chain appends to the head block while its timestamp is
            # current).  Re-ingest the whole block, but report no reorg
            # -- every previously seen row comes straight back, so
            # subscribers see only the genuinely new confirmations.
            grown = self._rollback_to(tail.number - 1)
            return _RollbackResult(
                depth=0,
                fork_block=-1,
                transfer_count=grown.transfer_count,
                nfts=grown.nfts,
                accounts=grown.accounts,
                recover_to=grown.recover_to,
            )
        if fork is None:
            if self._journal[0].number == self._start_block:
                # The journal still reaches back to the cursor's very
                # first block: the whole ingested history diverged, and a
                # full reset *is* a rollback to just before the start.
                fork = self._start_block - 1
            else:
                raise ReorgTooDeepError(
                    self.processed_block, head, self._journal[0].number
                )
        return self._rollback_to(fork)

    def _head_block_merely_grew(self, entry: BlockJournalEntry) -> bool:
        """True when a journaled block only gained transactions since.

        Same block number, same timestamp, and every transaction known at
        ingest time still present, in order, as a prefix -- the signature
        of an open head block that kept accepting transactions, which is
        ordinary forward growth rather than a reorganisation.
        """
        block = self.node.get_block(entry.number)
        if block.timestamp != entry.block_timestamp:
            return False
        current = block.transaction_hashes
        known = entry.tx_hashes
        return len(current) >= len(known) and tuple(current[: len(known)]) == known

    def _rollback_to(self, fork: int) -> _RollbackResult:
        """Undo every journaled block past ``fork``, newest first."""
        previous_processed = self.processed_block
        keep = 0
        while keep < len(self._journal) and self._journal[keep].number <= fork:
            keep += 1
        removed_entries = self._journal[keep:]

        # Scan matches are block-ordered across ticks: drop the tail span.
        removed_matches = sum(entry.match_count for entry in removed_entries)
        if removed_matches:
            del self.scan.matches[-removed_matches:]

        # Contracts first seen in a rolled-back block: un-probe them so a
        # canonical re-appearance probes (and journals) them afresh.
        for entry in removed_entries:
            for contract in entry.new_contracts:
                self.scan.emitting_contracts.discard(contract)
                self.compliance.compliant.discard(contract)
                self.compliance.non_compliant.discard(contract)
                self._probed_contracts.discard(contract)

        # Token rows, by per-block watermark counts.
        removed_rows: Dict[NFTKey, int] = {}
        for entry in removed_entries:
            for nft, count in entry.token_row_counts.items():
                removed_rows[nft] = removed_rows.get(nft, 0) + count
        rolled_back_nfts: List[NFTKey] = []
        rolled_back_transfers = 0
        for nft, count in removed_rows.items():
            transfers = self.transfers_by_nft[nft]
            kept_rows = len(transfers) - count
            rolled_back_transfers += count
            rolled_back_nfts.append(nft)
            if kept_rows <= 0:
                del self.transfers_by_nft[nft]
                self.store.remove_token(nft)
                continue
            del transfers[kept_rows:]
            if nft in self.store.rebuilt_tokens:
                # Out-of-order fallback reshuffled this token's rows:
                # watermark truncation no longer lines up, so rebuild
                # from the authoritative (already truncated) list.
                self.store.rebuild_token(nft, transfers)
            else:
                self.store.truncate_token(nft, kept_rows)

        # Account-to-token links created by rolled-back blocks.
        for entry in removed_entries:
            for account, nft in entry.new_links:
                tokens = self._tokens_by_account.get(account)
                if tokens is not None:
                    tokens.discard(nft)
                    if not tokens:
                        del self._tokens_by_account[account]

        # Accounts first involved in a rolled-back block vanish whole --
        # a batch build over the canonical prefix never saw them.
        for entry in removed_entries:
            for account in entry.new_accounts:
                self.account_transactions.pop(account, None)
                self._tokens_by_account.pop(account, None)

        # Surviving accounts lose every transaction past the fork.  The
        # journal names exactly the accounts holding transactions of the
        # removed blocks, and the lists are (block, hash)-sorted, so the
        # orphaned suffix pops off each named tail -- the rollback cost
        # tracks the reorg's footprint, not the account population.
        candidates: Set[str] = set()
        for entry in removed_entries:
            candidates.update(entry.tx_accounts)
        affected_accounts: Set[str] = set()
        for account in candidates:
            transactions = self.account_transactions.get(account)
            if transactions is None:
                continue  # deleted above: first involved past the fork
            trimmed = False
            while transactions and transactions[-1].block_number > fork:
                transactions.pop()
                trimmed = True
            if trimmed:
                affected_accounts.add(account)

        del self._journal[keep:]
        self.next_block = fork + 1
        return _RollbackResult(
            depth=previous_processed - fork,
            fork_block=fork,
            transfer_count=rolled_back_transfers,
            nfts=tuple(rolled_back_nfts),
            accounts=frozenset(affected_accounts),
            recover_to=previous_processed,
        )

    # -- staging internals -------------------------------------------------
    def _stage_journal(
        self,
        from_block: int,
        to_block: int,
        tick_scan: TransferScanResult,
        unseen: List[str],
        new_by_nft: Dict[NFTKey, List[NFTTransfer]],
        new_accounts: List[str],
        pending: Dict[str, List[Transaction]],
        new_histories: Dict[str, List[Transaction]],
    ) -> List[BlockJournalEntry]:
        """Attribute the staged tick to per-block rollback entries.

        Only the blocks that can still be rolled back after this tick
        commits are journaled: a tick wider than the retention window
        (the initial catch-up over a long chain) journals just its tail,
        because a rollback can never reach below the window's floor --
        everything under it is permanent the moment it commits.
        Contributions attributed to a sub-floor block (a contract's or
        account's first appearance, a token row) are likewise permanent
        and simply skip the journal.
        """
        floor = max(from_block, to_block - self.max_reorg_depth)
        entries = {
            block.number: BlockJournalEntry(
                number=block.number,
                hash=self.node.get_block_hash(block.number),
                block_timestamp=block.timestamp,
                tx_hashes=tuple(block.transaction_hashes),
            )
            for block in self.node.iter_blocks(floor, to_block)
        }

        for tx, _log in tick_scan.matches:
            if tx.block_number >= floor:
                entries[tx.block_number].match_count += 1

        first_emitted: Dict[str, int] = {}
        unseen_set = set(unseen)
        for tx, log in tick_scan.matches:
            if log.address in unseen_set and log.address not in first_emitted:
                first_emitted[log.address] = tx.block_number
        contracts_by_block: Dict[int, List[str]] = {}
        for contract, number in first_emitted.items():
            if number >= floor:
                contracts_by_block.setdefault(number, []).append(contract)
        for number, contracts in contracts_by_block.items():
            entries[number].new_contracts = tuple(sorted(contracts))

        new_account_set = set(new_accounts)
        first_involved: Dict[str, int] = {}
        first_linked: Dict[Tuple[str, NFTKey], int] = {}
        for nft, chunk in new_by_nft.items():
            known_links = self._tokens_by_account
            for transfer in chunk:
                if transfer.block_number >= floor:
                    entry = entries[transfer.block_number]
                    entry.token_row_counts[nft] = (
                        entry.token_row_counts.get(nft, 0) + 1
                    )
                for endpoint in (transfer.sender, transfer.recipient):
                    if endpoint in new_account_set:
                        seen_at = first_involved.get(endpoint)
                        if seen_at is None or transfer.block_number < seen_at:
                            first_involved[endpoint] = transfer.block_number
                    if nft not in known_links.get(endpoint, ()):  # a new link
                        link = (endpoint, nft)
                        seen_at = first_linked.get(link)
                        if seen_at is None or transfer.block_number < seen_at:
                            first_linked[link] = transfer.block_number

        accounts_by_block: Dict[int, List[str]] = {}
        for account, number in first_involved.items():
            if number >= floor:
                accounts_by_block.setdefault(number, []).append(account)
        for number, accounts in accounts_by_block.items():
            entries[number].new_accounts = tuple(sorted(accounts))

        links_by_block: Dict[int, List[Tuple[str, NFTKey]]] = {}
        for link, number in first_linked.items():
            if number >= floor:
                links_by_block.setdefault(number, []).append(link)
        for number, links in links_by_block.items():
            entries[number].new_links = tuple(sorted(links))

        # Which accounts hold a transaction of each journaled block: the
        # tick's per-block appends, plus the full (clamped) histories of
        # accounts involved for the first time -- a kept account's
        # pre-involvement history can never be trimmed (its first
        # transfer would have to be rolled back first, deleting the
        # account outright), so sub-floor history blocks are safe to
        # skip.
        tx_accounts_by_block: Dict[int, Set[str]] = {}
        for staged in (pending, new_histories):
            for account, transactions in staged.items():
                for tx in transactions:
                    if tx.block_number >= floor:
                        tx_accounts_by_block.setdefault(
                            tx.block_number, set()
                        ).add(account)
        for number, accounts in tx_accounts_by_block.items():
            entries[number].tx_accounts = tuple(sorted(accounts))

        return [entries[number] for number in range(floor, to_block + 1)]

    def _new_involved_accounts(
        self, new_by_nft: Dict[NFTKey, List[NFTTransfer]]
    ) -> List[str]:
        """Endpoints of the tick's transfers not yet followed, scan order."""
        new_accounts: List[str] = []
        seen: Set[str] = set()
        for chunk in new_by_nft.values():
            for transfer in chunk:
                for endpoint in (transfer.sender, transfer.recipient):
                    if (
                        endpoint != NULL_ADDRESS
                        and endpoint not in seen
                        and endpoint not in self.account_transactions
                    ):
                        seen.add(endpoint)
                        new_accounts.append(endpoint)
        return new_accounts

    def _stage_block_transactions(
        self, from_block: int, to_block: int, new_accounts: List[str]
    ) -> Dict[str, List[Transaction]]:
        """Attribute the tick's transactions to already-followed accounts.

        Accounts becoming involved this very tick are skipped -- their
        full (clamped) history is fetched separately and already covers
        these blocks.  Pure staging: returns the per-account sorted
        append lists without touching cursor state.
        """
        skip = set(new_accounts)
        pending: Dict[str, List[Transaction]] = {}
        for block in self.node.iter_blocks(from_block, to_block):
            for tx in block.transactions:
                for party in transaction_parties(tx):
                    if party in skip or party not in self.account_transactions:
                        continue
                    pending.setdefault(party, []).append(tx)
        for transactions in pending.values():
            transactions.sort(key=lambda tx: (tx.block_number, tx.hash))
        return pending

    def _stage_new_account_histories(
        self, new_accounts: List[str], to_block: int
    ) -> Dict[str, List[Transaction]]:
        """Fetch the full history of newly involved accounts, clamped.

        The clamp to ``to_block`` is what makes intermediate cursor
        states equal to a batch build over the same prefix: the node
        holds the whole simulated chain, but a monitor following the
        head must not see transactions from blocks it has not reached.
        """
        histories: Dict[str, List[Transaction]] = {}
        for account in new_accounts:
            transactions = [
                tx
                for tx in self.node.get_transactions_of(account)
                if tx.block_number <= to_block
            ]
            transactions.sort(key=lambda tx: (tx.block_number, tx.hash))
            histories[account] = transactions
        return histories
