"""Adversarial chain reorganisations.

The builder produces a finished canonical chain; this module *revises*
one, the way a live Ethereum head does: the last ``depth`` blocks are
orphaned and re-mined into a replacement branch in which each orphaned
transaction is either kept in place, delayed into a later block, or
dropped entirely -- and the branch may be shorter than the orphaned one,
regressing the head.  Dropping the transactions that completed a wash
cycle is exactly the adversarial case the streaming stack must survive:
a confirmed activity whose evidence vanishes mid-sequence has to be
retracted, and re-confirmed only if the canonical branch re-establishes
it.

:class:`ReorgStorm` drives a :class:`~repro.stream.StreamingMonitor`
over a world while injecting randomized reorgs between ticks -- the
harness behind the reorg parity tests and the rollback-recovery
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.chain.block import Block
from repro.chain.chain import Chain


@dataclass(frozen=True)
class ReorgSummary:
    """What one applied reorganisation did to the chain."""

    depth: int
    fork_block: int
    orphaned_tx_count: int
    dropped_tx_count: int
    delayed_tx_count: int
    replacement_block_count: int
    new_head: int


def build_replacement_blocks(
    orphaned: Sequence[Block],
    rng,
    drop_probability: float = 0.25,
    delay_probability: float = 0.25,
    shorten: int = 0,
) -> Tuple[List[Block], int, int]:
    """Re-mine orphaned blocks into an adversarial replacement branch.

    The replacement keeps the orphaned blocks' numbers and timestamps
    (minus the last ``shorten`` slots, which regresses the head); every
    orphaned transaction is independently dropped with
    ``drop_probability``, delayed one or two slots with
    ``delay_probability``, or kept in its original slot -- and a
    transaction whose slot was cut by ``shorten`` is always dropped (the
    shortened branch simply never mined it).  Transactions landing in a
    different slot are re-stamped with that block's number and timestamp
    (their hash -- their identity -- is preserved, as on a real chain).
    Returns ``(blocks, dropped_count, delayed_count)``.  ``rng`` needs
    ``random()`` and ``randint(a, b)`` -- both ``random.Random`` and the
    simulation's DeterministicRNG qualify.
    """
    slots = [(block.number, block.timestamp) for block in orphaned]
    if shorten > 0:
        slots = slots[: max(len(slots) - shorten, 0)]
    blocks = [Block(number=number, timestamp=timestamp) for number, timestamp in slots]
    dropped = 0
    delayed = 0
    for index, source in enumerate(orphaned):
        for tx in source.transactions:
            if index >= len(blocks):
                dropped += 1  # its slot was cut off the branch
                continue
            roll = rng.random()
            if roll < drop_probability:
                dropped += 1
                continue
            slot = index
            if (
                roll < drop_probability + delay_probability
                and slot < len(blocks) - 1
            ):
                slot = min(slot + rng.randint(1, 2), len(blocks) - 1)
                delayed += 1
            target = blocks[slot]
            if tx.block_number != target.number or tx.timestamp != target.timestamp:
                tx = replace(
                    tx, block_number=target.number, timestamp=target.timestamp
                )
            target.transactions.append(tx)
    return blocks, dropped, delayed


def apply_random_reorg(
    chain: Chain,
    depth: int,
    rng,
    drop_probability: float = 0.25,
    delay_probability: float = 0.25,
    shorten: int = 0,
) -> ReorgSummary:
    """Orphan the chain's last ``depth`` blocks and install a random branch."""
    depth = min(depth, len(chain.blocks))
    orphaned_view = chain.blocks[-depth:]
    replacement, dropped, delayed = build_replacement_blocks(
        orphaned_view,
        rng,
        drop_probability=drop_probability,
        delay_probability=delay_probability,
        shorten=shorten,
    )
    orphaned = chain.reorg(depth, replacement)
    return ReorgSummary(
        depth=depth,
        fork_block=orphaned[0].number - 1,
        orphaned_tx_count=sum(len(block) for block in orphaned),
        dropped_tx_count=dropped,
        delayed_tx_count=delayed,
        replacement_block_count=len(replacement),
        new_head=chain.head_block_number,
    )


class ReorgStorm:
    """Follow a world's chain while adversarially reorganizing it.

    Between monitor ticks of randomized width, the storm reorganizes the
    chain tail with probability ``reorg_probability`` -- dropping and
    delaying transactions mid-wash-sequence, occasionally shrinking the
    head outright (a regression the cursor must treat as the reorg it
    is).  Leave generous headroom between ``max_depth`` and the
    monitor's ``max_reorg_depth`` (the parity tests use 13 vs 64): the
    journal window is anchored to the highest committed head, so
    back-to-back shortening reorgs can reach below it and (correctly)
    raise :class:`~repro.stream.ReorgTooDeepError` even at depths under
    the configured maximum.

    After the storm, the chain is whatever canonical history the last
    reorg left behind, and the monitor has followed every revision; a
    batch pipeline run over that final chain is the parity reference.
    """

    def __init__(
        self,
        world,
        rng,
        reorg_probability: float = 0.35,
        max_depth: int = 12,
        drop_probability: float = 0.3,
        delay_probability: float = 0.25,
        max_shorten: int = 2,
        step_range: Tuple[int, int] = (5, 120),
        max_ticks: Optional[int] = None,
    ) -> None:
        self.world = world
        self.rng = rng
        self.reorg_probability = reorg_probability
        self.max_depth = max_depth
        self.drop_probability = drop_probability
        self.delay_probability = delay_probability
        self.max_shorten = max_shorten
        self.step_range = step_range
        self.max_ticks = max_ticks

    def run(self, monitor) -> List[ReorgSummary]:
        """Drive ``monitor`` to the (reorganizing) head; return the reorgs."""
        chain = self.world.chain
        node = self.world.node
        limit = (
            self.max_ticks
            if self.max_ticks is not None
            else 10 * (node.block_number + 2) + 100
        )
        summaries: List[ReorgSummary] = []
        for _ in range(limit):
            head = node.block_number
            if monitor.processed_block >= head:
                break
            target = min(
                head, monitor.processed_block + self.rng.randint(*self.step_range)
            )
            monitor.advance(target)
            if self.rng.random() < self.reorg_probability and chain.blocks:
                depth = self.rng.randint(1, min(self.max_depth, len(chain.blocks)))
                shorten = self.rng.randint(0, min(self.max_shorten, depth))
                summaries.append(
                    apply_random_reorg(
                        chain,
                        depth,
                        self.rng,
                        drop_probability=self.drop_probability,
                        delay_probability=self.delay_probability,
                        shorten=shorten,
                    )
                )
        else:
            raise RuntimeError(
                f"reorg storm did not converge within {limit} ticks"
            )
        # Settle: the loop exits as soon as the monitor touches the head,
        # which may still be a just-reorged one -- one final advance
        # rolls back / re-ingests whatever the last revision changed.
        monitor.advance()
        return summaries
