"""The assembled synthetic world."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.chain.chain import Chain
from repro.chain.node import EthereumNode
from repro.contracts.erc721 import ERC721Collection
from repro.contracts.registry import ContractRegistry
from repro.core.profitability.context import MarketContext
from repro.marketplaces.venues import DeployedMarketplaces
from repro.services.exchanges import CentralizedExchange
from repro.services.labels import LabelRegistry
from repro.services.oracle import PriceOracle
from repro.simulation.config import SimulationConfig
from repro.simulation.ground_truth import GroundTruth


@dataclass
class DeployedCollection:
    """One deployed NFT collection and its metadata."""

    name: str
    address: str
    contract: ERC721Collection
    creation_day: int
    is_wash_target: bool = False


@dataclass
class World:
    """Every handle a pipeline run or an analysis needs, in one object."""

    config: SimulationConfig
    chain: Chain
    node: EthereumNode
    labels: LabelRegistry
    registry: ContractRegistry
    oracle: PriceOracle
    marketplaces: DeployedMarketplaces
    exchanges: List[CentralizedExchange]
    collections: List[DeployedCollection]
    ground_truth: GroundTruth = field(default_factory=GroundTruth)
    #: Addresses of auxiliary DeFi deployments (pools, vaults, lenders).
    defi_addresses: Dict[str, str] = field(default_factory=dict)

    # -- convenience views -----------------------------------------------------
    @property
    def marketplace_addresses(self) -> Dict[str, str]:
        """Venue name -> marketplace contract address."""
        return self.marketplaces.addresses_by_name

    def is_contract(self, address: str) -> bool:
        """Bytecode check used by the refinement step."""
        return self.chain.state.is_contract(address)

    def collection_by_address(self, address: str) -> Optional[DeployedCollection]:
        """Look up a deployed collection by contract address."""
        for collection in self.collections:
            if collection.address == address:
                return collection
        return None

    def collection_creation_timestamps(self) -> Dict[str, int]:
        """Collection contract address -> creation timestamp."""
        return {
            collection.address: collection.contract.creation_timestamp
            for collection in self.collections
        }

    def collection_names(self) -> Dict[str, str]:
        """Collection contract address -> human-readable name."""
        return {collection.address: collection.name for collection in self.collections}

    def market_context(self) -> MarketContext:
        """The metadata bundle the profitability analysis needs."""
        treasuries = {
            name: venue.treasury_address
            for name, venue in self.marketplaces.venues.items()
        }
        symbols = {
            venue_name: token.token_symbol
            for venue_name, token in self.marketplaces.reward_tokens.items()
        }
        return MarketContext(
            marketplace_addresses=self.marketplace_addresses,
            treasury_addresses=treasuries,
            distributor_addresses=dict(self.marketplaces.distributor_addresses),
            reward_token_addresses=dict(self.marketplaces.reward_token_addresses),
            reward_token_symbols=symbols,
            oracle=self.oracle,
        )
