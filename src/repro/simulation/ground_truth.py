"""Ground-truth bookkeeping for planted activities.

Every scenario the generator executes registers what it did: which
accounts colluded, on which NFT, on which venue, with which intent.
Ground truth is what lets tests measure detector precision/recall and
what the ablation benchmarks score against -- the paper has no ground
truth (nobody does for the real chain), which is exactly why it combines
several confirmation techniques.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.chain.types import NFTKey


#: Planted activity kinds.
KIND_REWARD_FARM = "reward-farm"
KIND_RESALE_PUMP = "resale-pump"
KIND_SMALL_WASH = "small-wash"
KIND_SELF_TRADE = "self-trade"
KIND_RARITY_GAME = "rarity-game"
KIND_P2P_WASH = "p2p-wash"
KIND_ZERO_VOLUME = "zero-volume-shuffle"
KIND_SERVICE_NOISE = "service-noise"
KIND_CONTRACT_NOISE = "contract-noise"

#: Kinds that the pipeline is expected to confirm (true positives).
DETECTABLE_KINDS = frozenset(
    {
        KIND_REWARD_FARM,
        KIND_RESALE_PUMP,
        KIND_SMALL_WASH,
        KIND_SELF_TRADE,
        KIND_RARITY_GAME,
        KIND_P2P_WASH,
    }
)

#: Kinds that must be filtered out by refinement (planted negatives).
FILTERED_KINDS = frozenset({KIND_ZERO_VOLUME, KIND_SERVICE_NOISE, KIND_CONTRACT_NOISE})


@dataclass(frozen=True)
class PlannedActivity:
    """One planted scenario instance."""

    kind: str
    nft: NFTKey
    accounts: FrozenSet[str]
    venue: Optional[str]
    start_day: int
    end_day: int
    planned_volume_wei: int = 0
    funder: Optional[str] = None
    exit_account: Optional[str] = None
    expected_detectable: bool = True
    metadata: Dict[str, object] = field(default_factory=dict)

    def __hash__(self) -> int:  # metadata dict is excluded from identity
        return hash((self.kind, self.nft, self.accounts, self.start_day))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PlannedActivity):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.nft == other.nft
            and self.accounts == other.accounts
            and self.start_day == other.start_day
        )


@dataclass
class GroundTruth:
    """All planted activities of one world."""

    activities: List[PlannedActivity] = field(default_factory=list)

    def record(self, activity: PlannedActivity) -> None:
        """Register a planted activity."""
        self.activities.append(activity)

    # -- views -----------------------------------------------------------------
    def detectable(self) -> List[PlannedActivity]:
        """Planted activities the pipeline should confirm."""
        return [item for item in self.activities if item.expected_detectable]

    def planted_negatives(self) -> List[PlannedActivity]:
        """Planted structures that refinement should filter out."""
        return [item for item in self.activities if not item.expected_detectable]

    def of_kind(self, kind: str) -> List[PlannedActivity]:
        """Planted activities of one kind."""
        return [item for item in self.activities if item.kind == kind]

    def on_venue(self, venue: str) -> List[PlannedActivity]:
        """Planted activities on one venue."""
        return [item for item in self.activities if item.venue == venue]

    def washed_nfts(self) -> Set[NFTKey]:
        """NFTs targeted by detectable planted activities."""
        return {item.nft for item in self.detectable()}

    def colluding_accounts(self) -> Set[str]:
        """Accounts participating in detectable planted activities."""
        return {
            account for item in self.detectable() for account in item.accounts
        }

    # -- scoring against a pipeline run ----------------------------------------------
    def match_against(
        self, detected_nfts: Iterable[NFTKey]
    ) -> "GroundTruthScore":
        """Score a set of detected NFTs against the planted ground truth."""
        detected = set(detected_nfts)
        expected = self.washed_nfts()
        negatives = {item.nft for item in self.planted_negatives()}
        true_positives = detected & expected
        false_negatives = expected - detected
        leaked_negatives = detected & negatives
        return GroundTruthScore(
            expected=len(expected),
            detected=len(detected),
            true_positives=len(true_positives),
            false_negatives=len(false_negatives),
            leaked_planted_negatives=len(leaked_negatives),
        )


@dataclass(frozen=True)
class GroundTruthScore:
    """Recall-style score of a pipeline run against planted activities."""

    expected: int
    detected: int
    true_positives: int
    false_negatives: int
    leaked_planted_negatives: int

    @property
    def recall(self) -> float:
        """Share of planted detectable NFTs that the pipeline confirmed."""
        if self.expected == 0:
            return 0.0
        return self.true_positives / self.expected
