"""Simulation parameters.

The default configuration is calibrated so a pipeline run over the
generated world reproduces the *shape* of the paper's findings at a
laptop-friendly scale (a few thousand NFTs rather than 34 million):

* LooksRare hosts few but enormous reward-farming operations, so it
  dominates wash *volume* while OpenSea dominates wash *operation count*.
* Foundation's 15% fee keeps wash trading away from it entirely.
* Around 60% of activities are two-account round trips, ~20% use three
  accounts, and a small share are self-trades.
* Most activities are short (many within a day, most within ten days)
  and start close to the creation of the targeted collection.
* A minority of "professional" accounts participates in a majority of
  activities (serial wash traders).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass
class WashMix:
    """How many activities of each kind to plant."""

    looksrare_reward_farms: int = 36
    rarible_reward_farms: int = 12
    opensea_resale_pumps: int = 60
    opensea_small_washes: int = 70
    superrare_washes: int = 4
    decentraland_washes: int = 3
    self_trades: int = 16
    rarity_games: int = 5
    zero_volume_shuffles: int = 25
    offmarket_p2p_washes: int = 18

    @property
    def total_planted(self) -> int:
        """Planted activities that should survive refinement."""
        return (
            self.looksrare_reward_farms
            + self.rarible_reward_farms
            + self.opensea_resale_pumps
            + self.opensea_small_washes
            + self.superrare_washes
            + self.decentraland_washes
            + self.self_trades
            + self.rarity_games
            + self.offmarket_p2p_washes
        )


@dataclass
class SimulationConfig:
    """Every knob of the synthetic world."""

    seed: int = 42
    #: Length of the simulated trading history, in days.
    duration_days: int = 150
    #: Day (relative to the simulation start) on which marketplaces and
    #: their reward programs go live.
    marketplace_launch_day: int = 0

    # -- population -----------------------------------------------------------
    legit_collections: int = 24
    wash_target_collections: int = 12
    nfts_per_collection: Tuple[int, int] = (20, 60)
    legit_traders: int = 220
    legit_sales_per_day: int = 40
    #: Fraction of legitimate sales happening on each venue.
    venue_popularity: Dict[str, float] = field(
        default_factory=lambda: {
            "OpenSea": 0.62,
            "LooksRare": 0.10,
            "Rarible": 0.08,
            "SuperRare": 0.07,
            "Foundation": 0.07,
            "Decentraland": 0.06,
        }
    )
    #: Price range (ETH) of legitimate sales (log-uniform).
    legit_price_range_eth: Tuple[float, float] = (0.02, 12.0)
    #: Venue-specific price multipliers for legitimate sales.  LooksRare
    #: specialises in expensive NFTs (the paper notes its high per-trade
    #: value), so its legitimate trades are scaled up.
    venue_price_multiplier: Dict[str, float] = field(
        default_factory=lambda: {
            "OpenSea": 8.0,
            "LooksRare": 120.0,
            "Rarible": 12.0,
            "SuperRare": 8.0,
            "Foundation": 2.0,
            "Decentraland": 4.0,
        }
    )
    #: Funding ranges (ETH) for ordinary legitimate traders and whales.
    trader_funding_range_eth: Tuple[float, float] = (8.0, 60.0)
    whale_funding_range_eth: Tuple[float, float] = (800.0, 4000.0)
    whale_trader_fraction: float = 0.08
    #: How many NFTs each active collection mints per day (until full).
    mints_per_collection_per_day: int = 2

    # -- wash trading -------------------------------------------------------------
    wash_mix: WashMix = field(default_factory=WashMix)
    #: Price range (ETH) of a LooksRare reward-farming trade leg.
    looksrare_leg_price_eth: Tuple[float, float] = (150.0, 1200.0)
    #: Trade legs per reward-farming operation.
    reward_farm_rounds: Tuple[int, int] = (4, 10)
    #: Price range (ETH) of Rarible farming legs.
    rarible_leg_price_eth: Tuple[float, float] = (0.3, 3.0)
    #: Price range (ETH) of OpenSea pump legs (the pump multiplies these).
    opensea_pump_start_price_eth: Tuple[float, float] = (0.15, 0.9)
    opensea_pump_multiplier: Tuple[float, float] = (1.6, 4.5)
    #: Probability that a pumped NFT finds an external buyer at all.
    resale_success_probability: float = 0.62
    #: Probability that a small wash is followed by an external sale.
    small_wash_resale_probability: float = 0.25
    #: Resale price of a small wash, as a multiple of its trading price.
    small_wash_resale_uplift: Tuple[float, float] = (0.9, 1.8)
    #: Probability that, conditioned on being sold, the resale covers costs.
    resale_profitable_probability: float = 0.45
    #: Probability that a reward farmer never claims its tokens.
    reward_unclaimed_probability: float = 0.14
    #: Probability that a reward-farming operation fails (e.g. volume too
    #: small relative to the venue's total that day).
    reward_failure_probability: float = 0.18
    #: Probability a wash group is funded through an exchange instead of a
    #: direct common funder (hides the funder; the exit still gives it away).
    funded_via_exchange_probability: float = 0.22
    #: Probability the group cashes out to a common exit account.
    common_exit_probability: float = 0.85
    #: Probability an off-market P2P wash uses fully circulating payments
    #: (making it a textbook zero-risk position).
    zero_risk_p2p_probability: float = 0.8
    #: Share of wash activities executed by the reusable "professional"
    #: account pool (creates serial wash traders).
    serial_pool_probability: float = 0.70
    serial_pool_size: int = 42
    #: Distribution of the number of colluding accounts (Fig. 6 / Fig. 7).
    account_count_weights: Dict[int, float] = field(
        default_factory=lambda: {2: 0.62, 3: 0.20, 4: 0.10, 5: 0.05, 6: 0.03}
    )
    #: Maximum days between the creation of a wash-target collection and
    #: the start of the activities targeting it (Fig. 5 clustering).
    wash_near_creation_days: int = 18
    #: Lifetime (days) buckets of wash activities: (max_days, weight).
    lifetime_buckets: Tuple[Tuple[float, float], ...] = (
        (1.0, 0.12),
        (4.0, 0.13),
        (9.0, 0.15),
        (30.0, 0.35),
        (100.0, 0.25),
    )
    #: Probability that a reward-farming burst completes within a single day.
    reward_farm_single_day_probability: float = 0.45

    # -- distractors -----------------------------------------------------------------
    position_vault_deposits: int = 40
    erc1155_transfers: int = 30
    noncompliant_contracts: int = 2
    noncompliant_transfers: int = 25
    exchange_churn_users: int = 25
    #: NFTs routed through an exchange hot wallet and back (service-account noise).
    service_account_cycles: int = 12
    #: NFTs cycled through a game/DeFi contract (contract-account noise).
    contract_account_cycles: int = 10

    # -- reward emissions ----------------------------------------------------------------
    looks_daily_emission: float = 500_000.0
    rari_daily_emission: float = 3_000.0

    # -- derived helpers -------------------------------------------------------------------
    @classmethod
    def small(cls, seed: int = 7) -> "SimulationConfig":
        """A reduced configuration for fast unit/integration tests."""
        return cls(
            seed=seed,
            duration_days=60,
            legit_collections=6,
            wash_target_collections=5,
            nfts_per_collection=(8, 16),
            legit_traders=60,
            legit_sales_per_day=5,
            wash_mix=WashMix(
                looksrare_reward_farms=8,
                rarible_reward_farms=4,
                opensea_resale_pumps=10,
                opensea_small_washes=12,
                superrare_washes=2,
                decentraland_washes=1,
                self_trades=5,
                rarity_games=2,
                zero_volume_shuffles=6,
                offmarket_p2p_washes=6,
            ),
            position_vault_deposits=8,
            erc1155_transfers=8,
            noncompliant_transfers=8,
            exchange_churn_users=8,
            service_account_cycles=4,
            contract_account_cycles=4,
            serial_pool_size=12,
        )

    @classmethod
    def tiny(cls, seed: int = 3) -> "SimulationConfig":
        """A minimal configuration for the fastest smoke tests."""
        return cls(
            seed=seed,
            duration_days=30,
            legit_collections=3,
            wash_target_collections=3,
            nfts_per_collection=(5, 8),
            legit_traders=25,
            legit_sales_per_day=3,
            wash_mix=WashMix(
                looksrare_reward_farms=3,
                rarible_reward_farms=2,
                opensea_resale_pumps=4,
                opensea_small_washes=4,
                superrare_washes=1,
                decentraland_washes=1,
                self_trades=2,
                rarity_games=1,
                zero_volume_shuffles=3,
                offmarket_p2p_washes=3,
            ),
            position_vault_deposits=4,
            erc1155_transfers=4,
            noncompliant_transfers=4,
            exchange_churn_users=4,
            service_account_cycles=2,
            contract_account_cycles=2,
            serial_pool_size=6,
        )
