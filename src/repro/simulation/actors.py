"""The trading kit: the on-chain action vocabulary of the generator.

Every scenario (legitimate or wash) is expressed as a sequence of kit
calls; the kit translates them into chain transactions with timestamps
from the global :class:`~repro.simulation.timeline.TimeAllocator`, takes
care of operator approvals, and keeps small bookkeeping caches so the
scenarios stay readable.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.chain.chain import Chain
from repro.chain.transaction import Transaction
from repro.chain.types import Call
from repro.contracts.erc721 import ERC721Collection
from repro.marketplaces.venues import DeployedMarketplaces
from repro.services.exchanges import CentralizedExchange
from repro.services.labels import LabelRegistry
from repro.simulation.timeline import TimeAllocator
from repro.utils.currency import eth_to_wei
from repro.utils.rng import DeterministicRNG


class TradingKit:
    """High-level on-chain actions used by the workload scenarios."""

    def __init__(
        self,
        chain: Chain,
        marketplaces: DeployedMarketplaces,
        collections: Dict[str, ERC721Collection],
        exchanges: list[CentralizedExchange],
        labels: LabelRegistry,
        clock: TimeAllocator,
        rng: DeterministicRNG,
        otc_desk_address: Optional[str] = None,
    ) -> None:
        self.chain = chain
        self.marketplaces = marketplaces
        self.collections = collections
        self.exchanges = exchanges
        self.labels = labels
        self.clock = clock
        self.rng = rng
        self.otc_desk_address = otc_desk_address
        self._approved: Set[Tuple[str, str, str]] = set()
        self._account_serial = 0

    # -- accounts and funding --------------------------------------------------
    def new_account(self, role: str = "trader") -> str:
        """Create a fresh EOA address."""
        self._account_serial += 1
        return self.rng.address(role, self._account_serial)

    def pick_exchange(self) -> CentralizedExchange:
        """Pick one of the deployed exchanges."""
        return self.rng.choice(self.exchanges)

    def fund_from_exchange(
        self, account: str, amount_eth: float, day: int, exchange: Optional[CentralizedExchange] = None
    ) -> Transaction:
        """Fund an account with an exchange withdrawal."""
        exchange = exchange or self.pick_exchange()
        timestamp = self.clock.next_timestamp(day)
        return exchange.withdraw_to(account, eth_to_wei(amount_eth), timestamp)

    def transfer_eth(self, sender: str, recipient: str, amount_eth: float, day: int) -> Transaction:
        """Plain ETH transfer between two EOAs."""
        timestamp = self.clock.next_timestamp(day)
        return self.chain.transact(
            sender=sender,
            to=recipient,
            value_wei=eth_to_wei(amount_eth),
            timestamp=timestamp,
        )

    def deposit_to_exchange(
        self, account: str, amount_eth: float, day: int, exchange: Optional[CentralizedExchange] = None
    ) -> Transaction:
        """Send ETH from an account back to an exchange hot wallet."""
        exchange = exchange or self.pick_exchange()
        timestamp = self.clock.next_timestamp(day)
        return exchange.deposit_from(account, eth_to_wei(amount_eth), timestamp)

    def balance_eth(self, account: str) -> float:
        """Current ETH balance of an account."""
        return self.chain.state.balance_of(account) / 10**18

    # -- NFT primitives -----------------------------------------------------------
    def collection_contract(self, collection_address: str) -> ERC721Collection:
        """The deployed collection object behind an address."""
        return self.collections[collection_address]

    def mint(self, collection_address: str, to: str, day: int) -> int:
        """Mint a fresh NFT to ``to`` (the recipient signs and pays gas)."""
        timestamp = self.clock.next_timestamp(day)
        tx = self.chain.transact(
            sender=to,
            to=collection_address,
            call=Call("mint", {"to": to}),
            timestamp=timestamp,
        )
        # The token id is recoverable from the emitted Transfer log.
        for log in tx.logs:
            if log.is_erc721_transfer and log.address == collection_address:
                return int(log.topics[3], 16)
        raise RuntimeError("mint transaction emitted no Transfer event")

    def owner_of(self, collection_address: str, token_id: int) -> Optional[str]:
        """Current owner of an NFT."""
        return self.collection_contract(collection_address).ownerOf(token_id)

    def ensure_approval(
        self, owner: str, collection_address: str, operator: str, day: int
    ) -> None:
        """Issue a ``setApprovalForAll`` transaction if not already granted."""
        key = (owner, collection_address, operator)
        if key in self._approved:
            return
        timestamp = self.clock.next_timestamp(day)
        self.chain.transact(
            sender=owner,
            to=collection_address,
            call=Call("setApprovalForAll", {"operator": operator, "approved": True}),
            timestamp=timestamp,
        )
        self._approved.add(key)

    def direct_transfer(
        self,
        collection_address: str,
        token_id: int,
        sender: str,
        recipient: str,
        day: int,
        attached_value_eth: float = 0.0,
    ) -> Transaction:
        """Move an NFT outside any marketplace (optionally attaching ETH)."""
        timestamp = self.clock.next_timestamp(day)
        return self.chain.transact(
            sender=sender,
            to=collection_address,
            value_wei=eth_to_wei(attached_value_eth),
            call=Call(
                "transferFrom",
                {"sender": sender, "to": recipient, "token_id": token_id},
            ),
            timestamp=timestamp,
        )

    # -- marketplace trades -----------------------------------------------------------
    def marketplace_sale(
        self,
        venue_name: str,
        collection_address: str,
        token_id: int,
        seller: str,
        buyer: str,
        price_eth: float,
        day: int,
    ) -> Transaction:
        """Execute one marketplace sale (buyer signs, attaches the price)."""
        venue = self.marketplaces.venue(venue_name)
        venue_address = venue.bound_address
        if venue.uses_escrow:
            self._ensure_escrowed(venue_name, collection_address, token_id, seller, day)
            self.ensure_approval(venue.escrow_address, collection_address, venue_address, day)
        else:
            self.ensure_approval(seller, collection_address, venue_address, day)
        timestamp = self.clock.next_timestamp(day)
        return self.chain.transact(
            sender=buyer,
            to=venue_address,
            value_wei=eth_to_wei(price_eth),
            call=Call(
                "buy",
                {
                    "collection": collection_address,
                    "token_id": token_id,
                    "seller": seller,
                    "price_wei": eth_to_wei(price_eth),
                },
            ),
            timestamp=timestamp,
        )

    def _ensure_escrowed(
        self, venue_name: str, collection_address: str, token_id: int, seller: str, day: int
    ) -> None:
        """Deposit an NFT into a venue's escrow if it is not already there."""
        venue = self.marketplaces.venue(venue_name)
        owner = self.owner_of(collection_address, token_id)
        if owner == venue.escrow_address:
            return
        self.ensure_approval(seller, collection_address, venue.bound_address, day)
        timestamp = self.clock.next_timestamp(day)
        self.chain.transact(
            sender=seller,
            to=venue.bound_address,
            call=Call(
                "depositToEscrow",
                {"collection": collection_address, "token_id": token_id},
            ),
            timestamp=timestamp,
        )

    def p2p_trade(
        self,
        collection_address: str,
        token_id: int,
        seller: str,
        buyer: str,
        price_eth: float,
        day: int,
    ) -> Tuple[Transaction, Transaction]:
        """An off-market paid trade: a payment transfer plus the NFT transfer."""
        payment = self.transfer_eth(buyer, seller, price_eth, day)
        transfer = self.direct_transfer(collection_address, token_id, seller, buyer, day)
        return payment, transfer

    def otc_trade(
        self,
        collection_address: str,
        token_id: int,
        seller: str,
        buyer: str,
        price_eth: float,
        day: int,
    ) -> Transaction:
        """An atomic off-market trade through the OTC swap desk contract."""
        if self.otc_desk_address is None:
            raise RuntimeError("no OTC swap desk deployed in this world")
        self.ensure_approval(seller, collection_address, self.otc_desk_address, day)
        timestamp = self.clock.next_timestamp(day)
        return self.chain.transact(
            sender=buyer,
            to=self.otc_desk_address,
            value_wei=eth_to_wei(price_eth),
            call=Call(
                "swap",
                {
                    "collection": collection_address,
                    "token_id": token_id,
                    "seller": seller,
                    "price_wei": eth_to_wei(price_eth),
                },
            ),
            timestamp=timestamp,
        )

    def self_trade(
        self,
        collection_address: str,
        token_id: int,
        owner: str,
        day: int,
        attached_value_eth: float,
    ) -> Transaction:
        """Transfer an NFT from an account to itself, attaching ETH as fake volume."""
        return self.direct_transfer(
            collection_address,
            token_id,
            sender=owner,
            recipient=owner,
            day=day,
            attached_value_eth=attached_value_eth,
        )

    # -- reward machinery -----------------------------------------------------------------
    def pending_rewards(self, venue_name: str, account: str, day: int) -> int:
        """Token units claimable by ``account`` on ``day`` (0 for non-reward venues)."""
        distributor = self.marketplaces.reward_distributors.get(venue_name)
        if distributor is None:
            return 0
        from repro.utils.timeutil import day_of

        probe_ts = self.clock.day_start(day)
        return distributor.program.pending_rewards(account, day_of(probe_ts))

    def claim_rewards(self, venue_name: str, account: str, day: int) -> Optional[Transaction]:
        """Claim pending reward tokens (no-op if nothing is claimable)."""
        if self.pending_rewards(venue_name, account, day) <= 0:
            return None
        distributor_address = self.marketplaces.distributor_addresses[venue_name]
        timestamp = self.clock.next_timestamp(day)
        return self.chain.transact(
            sender=account,
            to=distributor_address,
            call=Call("claim", {}),
            timestamp=timestamp,
        )

    def reward_token_balance(self, venue_name: str, account: str) -> int:
        """Reward-token units currently held by ``account``."""
        token = self.marketplaces.reward_tokens.get(venue_name)
        return token.balanceOf(account) if token else 0
