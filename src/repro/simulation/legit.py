"""Legitimate (non-wash) trading activity.

Legitimate traders mint NFTs and sell them forward to new owners on the
six venues.  Sales never route an NFT back to a previous owner, so
legitimate activity does not create strongly connected components --
which is exactly the property the candidate search exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.chain.errors import ChainError
from repro.simulation.actors import TradingKit
from repro.simulation.config import SimulationConfig
from repro.simulation.world import DeployedCollection
from repro.utils.rng import DeterministicRNG


@dataclass
class LegitInventory:
    """Ownership bookkeeping for legitimately held NFTs."""

    #: (collection address, token id) -> current owner.
    owners: Dict[Tuple[str, int], str] = field(default_factory=dict)
    #: (collection address, token id) -> every past owner.
    history: Dict[Tuple[str, int], Set[str]] = field(default_factory=dict)
    #: Collection address -> number of NFTs minted so far.
    minted: Dict[str, int] = field(default_factory=dict)

    def add(self, collection: str, token_id: int, owner: str) -> None:
        """Register a freshly minted NFT."""
        key = (collection, token_id)
        self.owners[key] = owner
        self.history.setdefault(key, set()).add(owner)
        self.minted[collection] = self.minted.get(collection, 0) + 1

    def move(self, collection: str, token_id: int, new_owner: str) -> None:
        """Register a sale."""
        key = (collection, token_id)
        self.owners[key] = new_owner
        self.history.setdefault(key, set()).add(new_owner)

    def sellable(self) -> List[Tuple[str, int]]:
        """Every NFT currently available for a legitimate sale."""
        return list(self.owners)


class LegitMarket:
    """Drives day-by-day legitimate minting and trading."""

    def __init__(
        self,
        kit: TradingKit,
        config: SimulationConfig,
        rng: DeterministicRNG,
        collections: List[DeployedCollection],
        traders: List[str],
        whales: List[str],
        collection_targets: Dict[str, int],
    ) -> None:
        self.kit = kit
        self.config = config
        self.rng = rng
        self.collections = collections
        self.traders = traders
        self.whales = whales
        self.collection_targets = collection_targets
        self.inventory = LegitInventory()
        self.sales_executed = 0
        self.sales_skipped = 0

    # -- daily driver -----------------------------------------------------------
    def run_day(self, day: int) -> None:
        """Perform the day's legitimate mints and sales."""
        self._mint_new_supply(day)
        sales_today = max(
            0, self.config.legit_sales_per_day + self.rng.randint(-3, 3)
        )
        for _ in range(sales_today):
            self._try_sale(day)

    # -- internals -----------------------------------------------------------------
    def _active_collections(self, day: int) -> List[DeployedCollection]:
        return [
            collection
            for collection in self.collections
            if collection.creation_day <= day
            and self.inventory.minted.get(collection.address, 0)
            < self.collection_targets.get(collection.address, 0)
        ]

    def _mint_new_supply(self, day: int) -> None:
        for collection in self._active_collections(day):
            for _ in range(self.config.mints_per_collection_per_day):
                minted = self.inventory.minted.get(collection.address, 0)
                if minted >= self.collection_targets.get(collection.address, 0):
                    break
                minter = self.rng.choice(self.traders)
                try:
                    token_id = self.kit.mint(collection.address, minter, day)
                except ChainError:
                    continue
                self.inventory.add(collection.address, token_id, minter)

    def _pick_venue(self) -> str:
        venues = list(self.config.venue_popularity)
        weights = [self.config.venue_popularity[name] for name in venues]
        return self.rng.weighted_choice(venues, weights)

    def _pick_price_eth(self, venue: str) -> float:
        low, high = self.config.legit_price_range_eth
        base = self.rng.lognormal(mean=0.0, sigma=1.1)
        price = min(max(base * low * 12, low), high)
        return price * self.config.venue_price_multiplier.get(venue, 1.0)

    def _try_sale(self, day: int) -> None:
        sellable = self.inventory.sellable()
        if not sellable:
            self.sales_skipped += 1
            return
        collection_address, token_id = self.rng.choice(sellable)
        seller = self.inventory.owners[(collection_address, token_id)]
        venue = self._pick_venue()
        price = self._pick_price_eth(venue)

        buyer_pool = self.whales if price > 50 and self.whales else self.traders
        buyer = self._pick_buyer(buyer_pool, collection_address, token_id, seller, price)
        if buyer is None:
            self.sales_skipped += 1
            return
        try:
            self.kit.marketplace_sale(
                venue, collection_address, token_id, seller, buyer, price, day
            )
        except ChainError:
            self.sales_skipped += 1
            return
        self.inventory.move(collection_address, token_id, buyer)
        self.sales_executed += 1

    def _pick_buyer(
        self,
        pool: List[str],
        collection_address: str,
        token_id: int,
        seller: str,
        price_eth: float,
    ) -> Optional[str]:
        """A buyer who can afford the price and never owned this NFT."""
        past_owners = self.inventory.history.get((collection_address, token_id), set())
        for _ in range(6):
            candidate = self.rng.choice(pool)
            if candidate == seller or candidate in past_owners:
                continue
            if self.kit.balance_eth(candidate) >= price_eth + 0.5:
                return candidate
        return None
