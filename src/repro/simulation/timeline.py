"""Timestamp allocation for the workload generator.

The chain accepts only non-decreasing timestamps, so the generator
processes the simulated history day by day and asks a single global
:class:`TimeAllocator` for every transaction timestamp.  The allocator
hands out strictly increasing timestamps inside the requested day (and
never goes backwards even if a day overflows its nominal length).
"""

from __future__ import annotations

from repro.utils.timeutil import SECONDS_PER_DAY, SIMULATION_EPOCH


class TimeAllocator:
    """Hands out monotonically increasing timestamps, day by day."""

    def __init__(
        self,
        start_timestamp: int = SIMULATION_EPOCH,
        step_seconds: int = 17,
        day_start_offset: int = 3600,
    ) -> None:
        self.start_timestamp = start_timestamp
        self.step_seconds = step_seconds
        self.day_start_offset = day_start_offset
        self._last_timestamp = start_timestamp

    def day_start(self, day: int) -> int:
        """Timestamp of midnight (simulation time) of a simulation day."""
        return self.start_timestamp + day * SECONDS_PER_DAY

    def next_timestamp(self, day: int, spacing: int | None = None) -> int:
        """A fresh timestamp within (or after) the given simulation day.

        Timestamps inside one day advance by ``spacing`` (default: the
        allocator's step); the result is always strictly greater than any
        previously returned timestamp.
        """
        spacing = self.step_seconds if spacing is None else max(int(spacing), 1)
        candidate = self.day_start(day) + self.day_start_offset
        timestamp = max(candidate, self._last_timestamp + spacing)
        self._last_timestamp = timestamp
        return timestamp

    def jump_to_day(self, day: int) -> None:
        """Fast-forward the allocator to the start of a day (never backwards)."""
        self._last_timestamp = max(self._last_timestamp, self.day_start(day))

    @property
    def last_timestamp(self) -> int:
        """The most recently allocated timestamp."""
        return self._last_timestamp

    def current_day(self) -> int:
        """The simulation day of the most recently allocated timestamp."""
        return (self._last_timestamp - self.start_timestamp) // SECONDS_PER_DAY
