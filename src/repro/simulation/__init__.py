"""Synthetic workload generation.

The paper measures behaviours on the real Ethereum history; this package
plants the same behaviours -- legitimate collecting and flipping, reward
farming on LooksRare/Rarible, resale pumping on OpenSea, self-trades,
rarity games, serial wash traders, plus the distractors that stress the
refinement steps -- into a deterministic synthetic world built on the
:mod:`repro.chain` substrate, with ground-truth labels for every planted
activity.
"""

from repro.simulation.config import SimulationConfig
from repro.simulation.ground_truth import GroundTruth, PlannedActivity
from repro.simulation.reorg import (
    ReorgStorm,
    ReorgSummary,
    apply_random_reorg,
    build_replacement_blocks,
)
from repro.simulation.world import World
from repro.simulation.builder import WorldBuilder, build_default_world

__all__ = [
    "SimulationConfig",
    "GroundTruth",
    "PlannedActivity",
    "ReorgStorm",
    "ReorgSummary",
    "World",
    "WorldBuilder",
    "apply_random_reorg",
    "build_replacement_blocks",
    "build_default_world",
]
