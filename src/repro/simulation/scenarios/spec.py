"""Declarative scenario specifications.

A :class:`ScenarioSpec` is pure frozen data: it composes *world
generation* (a config preset plus overrides plus build-time
interventions such as fee-regime shifts and ERC-1155 tokenization
waves) with an *adversarial replay schedule* (ordered phases, each with
its own tick width, reorg pressure and alert-latency SLOs).  The runner
(:mod:`repro.simulation.scenarios.runner`) interprets a spec; nothing
here executes anything, so specs can be registered, listed, compared
and embedded in tests without side effects.

The replay produces a :class:`ScenarioReport` -- typed per-phase SLO
verdicts, parity checks, determinism digests -- and a failing run
raises :class:`ScenarioFailure` *carrying that report*, never a bare
assert, so callers (CLI, CI, tests) always get the full structured
picture of what broke.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "FeeShift",
    "TokenizationWave",
    "WorldSpec",
    "ReorgProfile",
    "PhaseSLO",
    "PhaseSpec",
    "ScenarioSpec",
    "PhaseVerdict",
    "ParityCheck",
    "PhaseStats",
    "ScenarioReport",
    "ScenarioFailure",
]

#: Stages of the ``alert_latency_seconds`` histogram a phase SLO may
#: target (see :mod:`repro.obs.latency`).
_LATENCY_STAGES = ("schedule", "detect", "fanout", "deliver", "total")

_PRESETS = ("tiny", "small", "default")


@dataclass(frozen=True)
class FeeShift:
    """A marketplace fee-regime change staged mid-history.

    ``at_fraction`` places the shift as a fraction of the simulated
    duration (0.5 = halfway through the history).  The marketplace
    contract reads its fee live at ``buy()`` time, so every sale from
    that day on pays the new rate -- reward farmers included.
    """

    venue: str
    fee_bps: int
    at_fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.at_fraction <= 1.0:
            raise ValueError("at_fraction must be within [0, 1]")
        if self.fee_bps < 0:
            raise ValueError("fee_bps must be >= 0")


@dataclass(frozen=True)
class TokenizationWave:
    """ERC-1155-style batch mint/burn churn staged over part of the build.

    Models a game-item tokenizer: a pool of holders batch-mints mixed
    inventories and batch-burns them back, emitting ``TransferBatch``
    events throughout the wave's day range.  None of it is ERC-721, so
    detection results must be byte-identical with or without the wave --
    the scenario's parity checks prove the scan's discrimination rule.
    """

    holders: int = 5
    token_kinds: int = 6
    max_units: int = 40
    batches_per_day: int = 2
    start_fraction: float = 0.2
    end_fraction: float = 0.8

    def __post_init__(self) -> None:
        if self.holders < 1 or self.token_kinds < 1 or self.max_units < 1:
            raise ValueError("holders, token_kinds and max_units must be >= 1")
        if not 0.0 <= self.start_fraction <= self.end_fraction <= 1.0:
            raise ValueError("wave fractions must satisfy 0 <= start <= end <= 1")


@dataclass(frozen=True)
class WorldSpec:
    """Which synthetic world to build, and how to perturb it."""

    preset: str = "tiny"
    seed: Optional[int] = None
    #: ``SimulationConfig`` attribute overrides, e.g. (("duration_days", 20),).
    overrides: Tuple[Tuple[str, object], ...] = ()
    #: ``WashMix`` attribute overrides, e.g. (("looksrare_reward_farms", 9),).
    wash_mix: Tuple[Tuple[str, int], ...] = ()
    fee_shifts: Tuple[FeeShift, ...] = ()
    tokenization: Optional[TokenizationWave] = None

    def __post_init__(self) -> None:
        if self.preset not in _PRESETS:
            raise ValueError(
                f"unknown preset {self.preset!r}; expected one of {_PRESETS}"
            )

    def build_config(self, seed: Optional[int] = None):
        """Materialize the :class:`SimulationConfig` this spec describes."""
        from repro.simulation.config import SimulationConfig

        factories = {
            "tiny": SimulationConfig.tiny,
            "small": SimulationConfig.small,
            "default": SimulationConfig,
        }
        config = factories[self.preset]()
        for name, value in self.overrides:
            if not hasattr(config, name):
                raise ValueError(f"unknown SimulationConfig override {name!r}")
            setattr(config, name, value)
        for name, value in self.wash_mix:
            if not hasattr(config.wash_mix, name):
                raise ValueError(f"unknown WashMix override {name!r}")
            setattr(config.wash_mix, name, value)
        effective_seed = seed if seed is not None else self.seed
        if effective_seed is not None:
            config.seed = effective_seed
        return config


@dataclass(frozen=True)
class ReorgProfile:
    """Adversarial reorg pressure applied between ticks of a phase."""

    probability: float = 0.35
    max_depth: int = 6
    drop_probability: float = 0.3
    delay_probability: float = 0.25
    max_shorten: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if self.max_shorten < 0:
            raise ValueError("max_shorten must be >= 0")


@dataclass(frozen=True)
class PhaseSLO:
    """One per-phase alert-latency objective, evaluated every tick."""

    stage: str = "detect"
    quantile: float = 0.95
    threshold_seconds: float = 5.0
    window: int = 16
    budget: float = 0.25

    def __post_init__(self) -> None:
        if self.stage not in _LATENCY_STAGES:
            raise ValueError(
                f"unknown latency stage {self.stage!r}; "
                f"expected one of {_LATENCY_STAGES}"
            )
        if self.threshold_seconds < 0:
            raise ValueError("threshold_seconds must be >= 0")


@dataclass(frozen=True)
class PhaseSpec:
    """One stretch of the replay: its traffic shape and its bars."""

    name: str
    #: Share of the chain's blocks this phase covers; the runner
    #: normalizes across phases, so fractions need not sum to 1 exactly.
    fraction: float
    step_blocks: int = 25
    reorg: Optional[ReorgProfile] = None
    slos: Tuple[PhaseSLO, ...] = (PhaseSLO(),)

    def __post_init__(self) -> None:
        if self.fraction <= 0:
            raise ValueError("fraction must be > 0")
        if self.step_blocks < 1:
            raise ValueError("step_blocks must be >= 1")


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, registrable scenario: world + adversarial schedule."""

    name: str
    description: str
    world: WorldSpec
    phases: Tuple[PhaseSpec, ...]
    #: Default clock acceleration: simulated seconds per wall second.
    #: 0 replays unpaced (as fast as the machine allows).
    default_speed: float = 0.0
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must not be empty")
        if not self.phases:
            raise ValueError("a scenario needs at least one phase")
        names = [phase.name for phase in self.phases]
        if len(set(names)) != len(names):
            raise ValueError("phase names must be unique within a scenario")
        if self.default_speed < 0:
            raise ValueError("default_speed must be >= 0")


# -- replay outcome types ---------------------------------------------------


@dataclass(frozen=True)
class PhaseVerdict:
    """One phase SLO, judged at phase end from the engine's budget state."""

    phase: str
    objective: str
    stage: str
    ok: bool
    threshold_seconds: float
    observed_seconds: Optional[float]
    budget_used: float
    evaluations: int
    note: str = ""

    def render(self) -> str:
        mark = "PASS" if self.ok else "FAIL"
        observed = (
            "no observations"
            if self.observed_seconds is None
            else f"observed {self.observed_seconds * 1000:.1f}ms"
        )
        return (
            f"[{mark}] {self.phase}/{self.objective}: {observed} vs "
            f"{self.threshold_seconds:g}s bar, budget {self.budget_used:.0%} "
            f"used over {self.evaluations} evaluations"
            + (f" ({self.note})" if self.note else "")
        )


@dataclass(frozen=True)
class ParityCheck:
    """One end-of-run parity comparison and its mismatches ([] = OK)."""

    name: str
    mismatches: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def render(self) -> str:
        if self.ok:
            return f"[PASS] parity/{self.name}"
        head = "; ".join(self.mismatches[:3])
        more = len(self.mismatches) - 3
        return f"[FAIL] parity/{self.name}: {head}" + (
            f" (+{more} more)" if more > 0 else ""
        )


@dataclass(frozen=True)
class PhaseStats:
    """What one phase actually did during the replay."""

    phase: str
    from_block: int
    to_block: int
    ticks: int
    alerts: int
    reorgs: int
    wall_seconds: float


@dataclass
class ScenarioReport:
    """Everything one scenario run produced, in one typed object."""

    scenario: str
    seed: int
    speed: float
    shards: int
    workers: int
    blocks: int
    wall_seconds: float = 0.0
    phases: List[PhaseStats] = field(default_factory=list)
    verdicts: List[PhaseVerdict] = field(default_factory=list)
    parity: List[ParityCheck] = field(default_factory=list)
    delivered_wire_alerts: int = 0
    #: Canonical encoding of the detection-alert stream (operator
    #: SLO_BREACH alerts excluded: their latencies are wall-clock).
    alert_log: bytes = b""
    #: Canonical JSON of the funnel statistics at the final version.
    funnel_stats_json: str = ""

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts) and all(
            p.ok for p in self.parity
        )

    def failures(self) -> List[str]:
        out = [v.render() for v in self.verdicts if not v.ok]
        out.extend(p.render() for p in self.parity if not p.ok)
        return out

    def render(self) -> str:
        lines = [
            f"scenario {self.scenario}: "
            f"{'PASS' if self.ok else 'FAIL'} "
            f"(seed {self.seed}, speed {self.speed:g}, "
            f"{self.shards} shard(s), {self.workers} worker(s), "
            f"{self.blocks} blocks, {self.wall_seconds:.1f}s wall)"
        ]
        for stats in self.phases:
            lines.append(
                f"  phase {stats.phase}: blocks {stats.from_block}-"
                f"{stats.to_block}, {stats.ticks} ticks, {stats.alerts} "
                f"alerts, {stats.reorgs} reorgs, {stats.wall_seconds:.1f}s"
            )
        for verdict in self.verdicts:
            lines.append("  " + verdict.render())
        for check in self.parity:
            lines.append("  " + check.render())
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "ok": self.ok,
            "seed": self.seed,
            "speed": self.speed,
            "shards": self.shards,
            "workers": self.workers,
            "blocks": self.blocks,
            "wall_seconds": self.wall_seconds,
            "phases": [vars(stats) for stats in self.phases],
            "verdicts": [vars(verdict) for verdict in self.verdicts],
            "parity": [
                {"name": check.name, "mismatches": list(check.mismatches)}
                for check in self.parity
            ],
            "delivered_wire_alerts": self.delivered_wire_alerts,
            "alert_log_lines": self.alert_log.count(b"\n"),
            "funnel_stats": self.funnel_stats_json,
        }


class ScenarioFailure(AssertionError):
    """A scenario run missed a bar; carries the full typed report."""

    def __init__(self, report: ScenarioReport) -> None:
        self.report = report
        summary = "; ".join(report.failures()) or "scenario failed"
        super().__init__(f"scenario {report.scenario} failed: {summary}")
