"""An accelerated simulated clock for scenario replays.

The synthetic histories span weeks of simulated time; replaying one in
real time is useless and replaying it unpaced exercises none of the
time-dependent machinery (background cadence, latency windows).  The
:class:`SimulatedClock` maps simulated timestamps onto wall time at a
configurable acceleration -- ``speed`` simulated seconds pass per wall
second -- so a full "day in the life" soak compresses into CI-smoke
seconds while still *pacing* the drive loop like a live chain would.

``speed=0`` disables pacing entirely (the benchmark/test mode).
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["SimulatedClock"]


class SimulatedClock:
    """Maps simulated seconds to wall seconds at ``speed``:1.

    ``sleep`` and ``wall`` are injectable for tests; by default they are
    :func:`time.sleep` and :func:`time.monotonic`.  Individual sleeps
    are capped at ``max_sleep`` so a mis-specified speed cannot hang a
    replay for hours -- the clock simply falls behind and stops pacing.
    """

    def __init__(
        self,
        start_timestamp: float,
        speed: float = 0.0,
        max_sleep: float = 2.0,
        sleep: Callable[[float], None] = time.sleep,
        wall: Callable[[], float] = time.monotonic,
    ) -> None:
        if speed < 0:
            raise ValueError("speed must be >= 0")
        self.start_timestamp = float(start_timestamp)
        self.speed = float(speed)
        self.max_sleep = float(max_sleep)
        self._sleep = sleep
        self._wall = wall
        self._wall_start = wall()
        self.total_slept = 0.0

    @property
    def paced(self) -> bool:
        """True when the clock actually paces the replay."""
        return self.speed > 0

    def now(self) -> float:
        """The current simulated timestamp, given elapsed wall time."""
        if not self.paced:
            return self.start_timestamp
        elapsed = self._wall() - self._wall_start
        return self.start_timestamp + elapsed * self.speed

    def pace(self, sim_timestamp: float) -> float:
        """Block until the wall clock reaches ``sim_timestamp``.

        Returns the seconds actually slept (0 when already past due or
        unpaced).  The replay loop calls this with each tick's head
        block timestamp, so tick cadence follows simulated time.
        """
        if not self.paced:
            return 0.0
        target_wall = (
            self._wall_start
            + (float(sim_timestamp) - self.start_timestamp) / self.speed
        )
        delay = target_wall - self._wall()
        if delay <= 0:
            return 0.0
        delay = min(delay, self.max_sleep)
        self._sleep(delay)
        self.total_slept += delay
        return delay

    def wall_elapsed(self) -> float:
        """Wall seconds since the clock started."""
        return self._wall() - self._wall_start
