"""Scenario machinery: the wash catalogue plus the declarative engine.

Two layers share this package:

* :mod:`~repro.simulation.scenarios.catalogue` -- the generator-based
  wash-trading catalogue the world builder executes day by day (this
  was the original ``repro.simulation.scenarios`` module; its public
  names are re-exported here unchanged).
* the declarative scenario engine -- frozen
  :class:`~repro.simulation.scenarios.spec.ScenarioSpec` entries in a
  :mod:`registry <repro.simulation.scenarios.registry>`, executed
  against the full live stack by the
  :mod:`runner <repro.simulation.scenarios.runner>` under a
  :class:`~repro.simulation.scenarios.clock.SimulatedClock`
  (``python -m repro scenario NAME``).
"""

from repro.simulation.scenarios.catalogue import (
    GAS_BUFFER_ETH,
    Scenario,
    ScenarioFactory,
    WashGroup,
)
from repro.simulation.scenarios.clock import SimulatedClock
from repro.simulation.scenarios.registry import (
    SCENARIOS,
    get_scenario,
    register,
    scenario_names,
)
from repro.simulation.scenarios.runner import (
    RunOptions,
    build_scenario_world,
    run_scenario,
)
from repro.simulation.scenarios.spec import (
    FeeShift,
    ParityCheck,
    PhaseSLO,
    PhaseSpec,
    PhaseStats,
    PhaseVerdict,
    ReorgProfile,
    ScenarioFailure,
    ScenarioReport,
    ScenarioSpec,
    TokenizationWave,
    WorldSpec,
)

__all__ = [
    # catalogue (back-compat)
    "GAS_BUFFER_ETH",
    "Scenario",
    "ScenarioFactory",
    "WashGroup",
    # engine
    "SimulatedClock",
    "SCENARIOS",
    "get_scenario",
    "register",
    "scenario_names",
    "RunOptions",
    "build_scenario_world",
    "run_scenario",
    "FeeShift",
    "ParityCheck",
    "PhaseSLO",
    "PhaseSpec",
    "PhaseStats",
    "PhaseVerdict",
    "ReorgProfile",
    "ScenarioFailure",
    "ScenarioReport",
    "ScenarioSpec",
    "TokenizationWave",
    "WorldSpec",
]
