"""The scenario runner: build the world, replay it, judge the run.

One :func:`run_scenario` call executes a
:class:`~repro.simulation.scenarios.spec.ScenarioSpec` end to end
against the *full* live stack -- streaming ingest, the (optionally
sharded) serving read model, the wire tier -- under a
:class:`~repro.simulation.scenarios.clock.SimulatedClock`:

1. the spec's world is built, with its fee shifts and tokenization
   waves staged as builder day hooks;
2. each phase drives the service tick by tick at the phase's step
   width, paced by the accelerated clock, injecting the phase's reorg
   profile between ticks, with the phase's SLOs armed on the monitor;
3. at the end the run settles to head and the four parity bars are
   checked -- stream-vs-batch, serve-vs-batch, per-shard structure,
   wire-vs-in-process -- plus one typed verdict per phase SLO.

A run that misses any bar raises
:class:`~repro.simulation.scenarios.spec.ScenarioFailure` carrying the
full :class:`~repro.simulation.scenarios.spec.ScenarioReport`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple, Union

from repro.core.detectors.pipeline import WashTradingPipeline
from repro.ingest.dataset import build_dataset
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import SLOEngine, latency_objective
from repro.serve.parity import (
    activity_fingerprint,
    serving_parity_mismatches,
    sharded_parity_mismatches,
)
from repro.serve.service import ServeService
from repro.simulation.reorg import apply_random_reorg
from repro.simulation.scenarios.clock import SimulatedClock
from repro.simulation.scenarios.registry import get_scenario
from repro.simulation.scenarios.spec import (
    ParityCheck,
    PhaseSpec,
    PhaseStats,
    PhaseVerdict,
    ScenarioFailure,
    ScenarioReport,
    ScenarioSpec,
    TokenizationWave,
)
from repro.stream.alerts import AlertKind
from repro.utils.rng import DeterministicRNG

if TYPE_CHECKING:  # pragma: no cover - annotation-only import; a real
    # one would close the builder <-> scenarios package cycle (the
    # builder pulls the wash catalogue from this package at import time)
    from repro.simulation.builder import DayHookContext

__all__ = ["RunOptions", "run_scenario", "build_scenario_world"]

#: ETH given to tokenization-wave holders so batch calls never run dry.
_HOLDER_FUNDING_ETH = 5.0


@dataclass
class RunOptions:
    """Execution knobs orthogonal to the spec itself."""

    #: Clock acceleration override; None uses the spec's default, 0
    #: replays unpaced.
    speed: Optional[float] = None
    seed: Optional[int] = None
    shards: int = 1
    workers: int = 0
    #: Serve the wire tier and check wire parity.
    wire: bool = True
    #: Arm per-phase SLO engines.  Disable for byte-identity studies:
    #: SLO evaluations depend on wall-clock latencies, so their
    #: operator alerts are the one non-deterministic part of a run.
    evaluate_slos: bool = True
    #: Run the end-of-run parity battery.
    verify_parity: bool = True
    #: Called with one line per replay milestone (CLI progress).
    progress: Optional[Callable[[str], None]] = None
    #: Raise ScenarioFailure when the report is not ok.
    raise_on_failure: bool = True


@dataclass
class _PhaseOutcome:
    stats: PhaseStats
    verdicts: List[PhaseVerdict] = field(default_factory=list)


def _build_day_hooks(spec: ScenarioSpec, duration_days: int):
    """Turn the spec's declarative interventions into builder hooks."""
    hooks: List[Tuple[int, Callable[[DayHookContext], None]]] = []
    last_day = max(duration_days - 1, 0)

    for shift in spec.world.fee_shifts:
        day = min(int(duration_days * shift.at_fraction), last_day)

        def fee_hook(ctx: DayHookContext, _shift=shift) -> None:
            ctx.marketplaces.venue(_shift.venue).fee_bps = _shift.fee_bps

        hooks.append((day, fee_hook))

    wave = spec.world.tokenization
    if wave is not None:
        hooks.extend(_tokenization_hooks(wave, duration_days))
    return hooks


def _tokenization_hooks(wave: TokenizationWave, duration_days: int):
    """Daily batch mint/burn churn against the world's ERC-1155 contract.

    Holder accounts and a child RNG are created lazily on the first
    firing so the hook stays a closure over pure spec data until the
    build actually reaches the wave.
    """
    from repro.chain.types import Call

    state: dict = {}

    def fire(ctx: DayHookContext) -> None:
        if ctx.erc1155_address is None:
            return
        rng = state.get("rng")
        if rng is None:
            rng = state["rng"] = ctx.rng.child("tokenization")
            holders = state["holders"] = [
                ctx.kit.new_account("tokenizer") for _ in range(wave.holders)
            ]
            for holder in holders:
                ctx.kit.fund_from_exchange(holder, _HOLDER_FUNDING_ETH, day=ctx.day)
        holders = state["holders"]
        for _ in range(wave.batches_per_day):
            holder = rng.choice(holders)
            kinds = rng.randint(1, wave.token_kinds)
            token_ids = sorted(
                {rng.randint(1, wave.token_kinds * 4) for _ in range(kinds)}
            )
            amounts = [rng.randint(1, wave.max_units) for _ in token_ids]
            timestamp = ctx.kit.clock.next_timestamp(ctx.day)
            ctx.chain.transact(
                sender=holder,
                to=ctx.erc1155_address,
                call=Call(
                    "mintBatch",
                    {"to": holder, "token_ids": token_ids, "amounts": amounts},
                ),
                timestamp=timestamp,
            )
            if rng.random() < 0.6:
                burn_ids = token_ids[: max(len(token_ids) // 2, 1)]
                burn_amounts = [
                    max(amounts[index] // 2, 1)
                    for index in range(len(burn_ids))
                ]
                timestamp = ctx.kit.clock.next_timestamp(ctx.day)
                ctx.chain.transact(
                    sender=holder,
                    to=ctx.erc1155_address,
                    call=Call(
                        "burnBatch",
                        {
                            "sender": holder,
                            "token_ids": burn_ids,
                            "amounts": burn_amounts,
                        },
                    ),
                    timestamp=timestamp,
                )

    first = min(int(duration_days * wave.start_fraction), duration_days - 1)
    last = min(int(duration_days * wave.end_fraction), duration_days - 1)
    return [(day, fire) for day in range(first, last + 1)]


def build_scenario_world(spec: ScenarioSpec, seed: Optional[int] = None):
    """Build the world a spec describes (hooks staged), returning it."""
    from repro.simulation.builder import WorldBuilder

    config = spec.world.build_config(seed=seed)
    hooks = _build_day_hooks(spec, config.duration_days)
    return WorldBuilder(config, day_hooks=hooks).build()


def _phase_bounds(head: int, phases) -> List[Tuple[PhaseSpec, int]]:
    """Cumulative upper block bound per phase (normalized fractions)."""
    total = sum(phase.fraction for phase in phases)
    bounds: List[Tuple[PhaseSpec, int]] = []
    cumulative = 0.0
    for index, phase in enumerate(phases):
        cumulative += phase.fraction
        bound = head if index == len(phases) - 1 else int(
            head * cumulative / total
        )
        bounds.append((phase, max(bound, 1)))
    return bounds


def _slo_engine_for(registry, phase: PhaseSpec) -> Optional[SLOEngine]:
    if not phase.slos:
        return None
    objectives = [
        latency_objective(
            slo.threshold_seconds,
            stage=slo.stage,
            quantile=slo.quantile,
            window=slo.window,
            budget=slo.budget,
            name=(
                f"{phase.name}-{slo.stage}-"
                f"p{int(round(slo.quantile * 100))}"
            ),
        )
        for slo in phase.slos
    ]
    return SLOEngine(registry, objectives)


def _observed_latency(registry, stage: str, quantile: float) -> Optional[float]:
    family = registry.histogram(
        "alert_latency_seconds",
        "Ingest-to-alert latency, broken down by pipeline stage.",
        labels=("stage",),
    )
    child = family.labels(stage=stage)
    if child.count == 0:
        return None
    return child.percentile(quantile)


def _phase_verdicts(
    registry, phase: PhaseSpec, engine: Optional[SLOEngine]
) -> List[PhaseVerdict]:
    if engine is None:
        return []
    state = engine.state()
    verdicts: List[PhaseVerdict] = []
    for objective, slo in zip(engine.objectives, phase.slos):
        budget = state[objective.name]
        observed = _observed_latency(registry, slo.stage, slo.quantile)
        evaluations = int(budget["window"])
        ok = bool(budget["healthy"]) and not bool(budget["breached"])
        note = "" if evaluations else "no observations this phase"
        verdicts.append(
            PhaseVerdict(
                phase=phase.name,
                objective=objective.name,
                stage=slo.stage,
                ok=ok,
                threshold_seconds=slo.threshold_seconds,
                observed_seconds=observed,
                budget_used=float(budget["budget_used"]),
                evaluations=evaluations,
                note=note,
            )
        )
    return verdicts


def _block_timestamp(node, number: int) -> Optional[int]:
    try:
        return node.get_block(number).timestamp
    except (IndexError, AttributeError):
        return None


def _stream_batch_mismatches(stream, batch) -> List[str]:
    """Structural stream-vs-batch divergence, as readable strings."""
    problems: List[str] = []
    if stream.refinement.stages != batch.refinement.stages:
        problems.append("refinement funnel stages diverge")
    stream_acts = sorted(map(activity_fingerprint, stream.activities))
    batch_acts = sorted(map(activity_fingerprint, batch.activities))
    if stream_acts != batch_acts:
        problems.append(
            f"confirmed activities diverge: stream {len(stream_acts)}, "
            f"batch {len(batch_acts)}"
        )
    if stream.count_by_method() != batch.count_by_method():
        problems.append("per-method confirmation counts diverge")
    if stream.venn_counts() != batch.venn_counts():
        problems.append("method venn counts diverge")
    if stream.washed_nfts() != batch.washed_nfts():
        problems.append("washed NFT sets diverge")
    return problems


def _encode_alert_log(alerts) -> bytes:
    """Canonical bytes of the detection-alert stream.

    Operator SLO_BREACH alerts are excluded: they are triggered by
    wall-clock latencies, the one legitimately non-deterministic input
    of a run, so byte-identity is asserted over detections only.
    """
    from repro.serve.wire import codec

    lines = [
        json.dumps(codec.encode_alert(alert), sort_keys=True)
        for alert in alerts
        if alert.kind is not AlertKind.SLO_BREACH
    ]
    return ("\n".join(lines) + "\n").encode("utf-8")


def _encode_funnel(query) -> str:
    from repro.serve.wire import codec

    return json.dumps(codec.encode_funnel(query.funnel_stats()), sort_keys=True)


def run_scenario(
    scenario: Union[str, ScenarioSpec],
    options: Optional[RunOptions] = None,
) -> ScenarioReport:
    """Execute one scenario end to end; return (or raise with) its report."""
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    options = options or RunOptions()
    say = options.progress or (lambda line: None)

    speed = options.speed if options.speed is not None else spec.default_speed
    seed = (
        options.seed
        if options.seed is not None
        else spec.world.seed
        if spec.world.seed is not None
        else spec.world.build_config().seed
    )

    say(f"building world for {spec.name!r} (seed {seed})...")
    build_started = time.monotonic()
    world = build_scenario_world(spec, seed=seed)
    head = world.node.block_number
    say(
        f"world ready: {head} blocks in "
        f"{time.monotonic() - build_started:.1f}s"
    )

    registry = MetricsRegistry()
    service = ServeService.for_world(
        world,
        registry=registry,
        shards=options.shards,
        workers=options.workers,
    )
    report = ScenarioReport(
        scenario=spec.name,
        seed=seed,
        speed=speed,
        shards=options.shards,
        workers=options.workers,
        blocks=head,
    )
    run_started = time.monotonic()
    subscriber = None
    stream = None
    try:
        if options.wire:
            from repro.serve.wire import WireClient

            server = service.serve_wire("127.0.0.1", 0)
            host, port = server.address
            subscriber = WireClient(host, port).connect()
            stream = subscriber.subscribe(-1)

        start_timestamp = _block_timestamp(world.node, 0) or 0
        clock = SimulatedClock(start_timestamp, speed=speed)
        reorg_rng = DeterministicRNG(seed).child("scenario-reorgs")

        for phase, bound in _phase_bounds(head, spec.phases):
            engine = (
                _slo_engine_for(registry, phase)
                if options.evaluate_slos
                else None
            )
            service.attach_slo(engine)
            phase_started = time.monotonic()
            alerts_before = len(service.monitor.alerts)
            from_block = service.monitor.processed_block + 1
            ticks = 0
            reorgs = 0
            limit = 10 * (bound + 2) + 100
            for _ in range(limit):
                chain_head = world.node.block_number
                target = min(bound, chain_head)
                if service.monitor.processed_block >= target:
                    break
                upper = min(
                    service.monitor.processed_block + phase.step_blocks,
                    target,
                )
                service.advance(upper)
                ticks += 1
                timestamp = _block_timestamp(
                    world.node, min(upper, world.node.block_number)
                )
                if timestamp is not None:
                    clock.pace(timestamp)
                profile = phase.reorg
                if (
                    profile is not None
                    and world.chain.blocks
                    and reorg_rng.random() < profile.probability
                ):
                    depth = reorg_rng.randint(
                        1, min(profile.max_depth, len(world.chain.blocks))
                    )
                    shorten = reorg_rng.randint(
                        0, min(profile.max_shorten, depth)
                    )
                    apply_random_reorg(
                        world.chain,
                        depth,
                        reorg_rng,
                        drop_probability=profile.drop_probability,
                        delay_probability=profile.delay_probability,
                        shorten=shorten,
                    )
                    reorgs += 1
            else:
                raise RuntimeError(
                    f"phase {phase.name!r} did not converge in {limit} ticks"
                )
            stats = PhaseStats(
                phase=phase.name,
                from_block=from_block,
                to_block=service.monitor.processed_block,
                ticks=ticks,
                alerts=len(service.monitor.alerts) - alerts_before,
                reorgs=reorgs,
                wall_seconds=time.monotonic() - phase_started,
            )
            report.phases.append(stats)
            verdicts = _phase_verdicts(registry, phase, engine)
            report.verdicts.extend(verdicts)
            say(
                f"phase {phase.name}: blocks {stats.from_block}-"
                f"{stats.to_block}, {stats.ticks} ticks, "
                f"{stats.alerts} alerts, {stats.reorgs} reorgs"
                + (
                    ""
                    if all(v.ok for v in verdicts)
                    else " [SLO FAIL]"
                )
            )

        service.attach_slo(None)
        # Settle: a trailing reorg may have left the cursor past a
        # shortened head; one final advance rolls back / re-ingests.
        service.advance()
        if stream is not None:
            report.delivered_wire_alerts = len(stream.poll())

        report.alert_log = _encode_alert_log(service.monitor.alerts)
        report.funnel_stats_json = _encode_funnel(service.query)

        if options.verify_parity:
            say("verifying parity against a batch build...")
            stream_result = service.monitor.result()
            dataset = build_dataset(
                world.node, world.marketplace_addresses
            )
            batch = WashTradingPipeline(
                labels=world.labels,
                is_contract=world.is_contract,
                engine="columnar",
            ).run(dataset)
            report.parity.append(
                ParityCheck(
                    "stream-vs-batch",
                    tuple(_stream_batch_mismatches(stream_result, batch)),
                )
            )
            report.parity.append(
                ParityCheck(
                    "serve-vs-batch",
                    tuple(serving_parity_mismatches(service.query, batch)),
                )
            )
            if options.shards > 1:
                report.parity.append(
                    ParityCheck(
                        "shards",
                        tuple(
                            sharded_parity_mismatches(service.index, batch)
                        ),
                    )
                )
            if options.wire:
                from repro.serve.wire import (
                    WireClient,
                    wire_parity_mismatches,
                )

                host, port = service.wire.address
                with WireClient(host, port) as parity_client:
                    report.parity.append(
                        ParityCheck(
                            "wire-vs-in-process",
                            tuple(
                                wire_parity_mismatches(
                                    parity_client,
                                    service.query,
                                    service.wire.lookup_version,
                                )
                            ),
                        )
                    )
    finally:
        if stream is not None:
            stream.close()
        if subscriber is not None:
            subscriber.close()
        service.shutdown()

    report.wall_seconds = time.monotonic() - run_started
    say(report.render())
    if options.raise_on_failure and not report.ok:
        raise ScenarioFailure(report)
    return report
