"""Wash trading and noise scenarios.

Each scenario is a Python generator driven by the day-by-day scheduler in
:mod:`repro.simulation.builder`: it yields the next simulation day it
wants to act on, performs its chain actions when resumed, and registers
what it did in the ground truth.  The catalogue covers every behaviour
the paper describes:

* reward farming on LooksRare and Rarible (Sec. VI-A),
* resale pumping and small washes on OpenSea / SuperRare / Decentraland
  (Sec. VI-B),
* self-trades (Sec. IV-C iv),
* rarity games a la OG:Crystals (Sec. VII),
* off-market peer-to-peer washes with fully circulating payments (the
  textbook zero-risk position),
* zero-volume shuffles, service-account cycles and contract-account
  cycles -- planted negatives the refinement must remove.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Iterable, List, Optional, Sequence, Tuple

from repro.chain.types import Call, NFTKey
from repro.services.exchanges import CentralizedExchange
from repro.simulation.actors import TradingKit
from repro.simulation.config import SimulationConfig
from repro.simulation.ground_truth import (
    GroundTruth,
    KIND_CONTRACT_NOISE,
    KIND_P2P_WASH,
    KIND_RARITY_GAME,
    KIND_RESALE_PUMP,
    KIND_REWARD_FARM,
    KIND_SELF_TRADE,
    KIND_SERVICE_NOISE,
    KIND_SMALL_WASH,
    KIND_ZERO_VOLUME,
    PlannedActivity,
)
from repro.simulation.world import DeployedCollection
from repro.utils.currency import eth_to_wei
from repro.utils.rng import DeterministicRNG

#: A scenario is a generator yielding the simulation days it wants to act on.
Scenario = Generator[int, None, None]

#: Gas/approval headroom granted to every colluding account, in ETH.
GAS_BUFFER_ETH = 2.0


@dataclass
class WashGroup:
    """A funded set of colluding accounts plus its funding metadata."""

    accounts: List[str]
    funder: Optional[str]
    exit_account: Optional[str]
    funded_via_exchange: bool
    is_serial: bool


class ScenarioFactory:
    """Builds the full catalogue of scenario generators for one world."""

    def __init__(
        self,
        kit: TradingKit,
        config: SimulationConfig,
        rng: DeterministicRNG,
        ground_truth: GroundTruth,
        wash_collections: Sequence[DeployedCollection],
        game_address: Optional[str] = None,
        dex_addresses: Optional[Dict[str, str]] = None,
    ) -> None:
        self.kit = kit
        self.config = config
        self.rng = rng
        self.ground_truth = ground_truth
        self.wash_collections = list(wash_collections)
        self.game_address = game_address
        self.dex_addresses = dex_addresses or {}
        #: Reusable "professional" wash accounts (serial traders).
        self.serial_pool: List[str] = [
            kit.new_account("serial-washer") for _ in range(config.serial_pool_size)
        ]
        #: The account bankrolling and collecting for the serial pool.
        self.pool_master = kit.new_account("serial-pool-master")
        self._pool_master_funded = False
        #: Start days of full-size reward farms per venue; deliberately
        #: small ("failing") farms are scheduled on these days so their
        #: reward share is diluted and the operation closes at a loss.
        self._reward_farm_days: Dict[str, List[int]] = {}

    # ------------------------------------------------------------------ helpers
    def _pick_group_size(self) -> int:
        weights = self.config.account_count_weights
        sizes = sorted(weights)
        return self.rng.weighted_choice(sizes, [weights[size] for size in sizes])

    def _pick_accounts(self, size: int) -> Tuple[List[str], bool]:
        """Pick colluding accounts, preferring the serial pool."""
        use_serial = (
            self.rng.bernoulli(self.config.serial_pool_probability)
            and len(self.serial_pool) >= size
        )
        if use_serial:
            return self.rng.sample(self.serial_pool, size), True
        return [self.kit.new_account("washer") for _ in range(size)], False

    def _pick_collection_and_start(self, earliest_day: int = 1) -> Tuple[DeployedCollection, int]:
        """Pick a wash-target collection and a start day near its creation."""
        collection = self.rng.choice(self.wash_collections)
        offset = self.rng.randint(0, self.config.wash_near_creation_days)
        start_day = max(collection.creation_day + offset, earliest_day)
        start_day = min(start_day, self.config.duration_days - 3)
        return collection, start_day

    def _lifetime_days(self) -> float:
        buckets = self.config.lifetime_buckets
        limits = [limit for limit, _weight in buckets]
        weights = [weight for _limit, weight in buckets]
        chosen_limit = self.rng.weighted_choice(limits, weights)
        return self.rng.uniform(0.0, chosen_limit)

    def _fund_group(
        self,
        accounts: Sequence[str],
        per_account_eth: float,
        day: int,
        is_serial: bool,
    ) -> WashGroup:
        """Fund the colluding accounts and decide the funder/exit topology."""
        via_exchange = self.rng.bernoulli(self.config.funded_via_exchange_probability)
        wants_exit = self.rng.bernoulli(self.config.common_exit_probability)

        if is_serial:
            funder: Optional[str] = self.pool_master
            exit_account: Optional[str] = self.pool_master if wants_exit else None
            needed = per_account_eth * len(accounts) + 10.0
            if not self._pool_master_funded or self.kit.balance_eth(self.pool_master) < needed:
                self.kit.fund_from_exchange(self.pool_master, needed + 50.0, day)
                self._pool_master_funded = True
            for account in accounts:
                missing = per_account_eth - self.kit.balance_eth(account)
                if missing > 0:
                    self.kit.transfer_eth(self.pool_master, account, missing, day)
            return WashGroup(
                accounts=list(accounts),
                funder=funder,
                exit_account=exit_account,
                funded_via_exchange=False,
                is_serial=True,
            )

        if via_exchange:
            exchange = self.kit.pick_exchange()
            for account in accounts:
                self.kit.fund_from_exchange(account, per_account_eth, day, exchange=exchange)
            funder = None
        else:
            funder = self.kit.new_account("funder")
            total = per_account_eth * len(accounts)
            self.kit.fund_from_exchange(funder, total + 5.0, day)
            for account in accounts:
                self.kit.transfer_eth(funder, account, per_account_eth, day)
        exit_account = self.kit.new_account("exit") if wants_exit else None
        return WashGroup(
            accounts=list(accounts),
            funder=funder,
            exit_account=exit_account,
            funded_via_exchange=via_exchange,
            is_serial=False,
        )

    def _top_up(self, group: WashGroup, account: str, needed_eth: float, day: int) -> None:
        """Make sure a colluding account can cover an upcoming payment.

        Serial-pool accounts participate in overlapping activities and may
        have been drained to the pool master by another activity's exit;
        the pool master (or the group funder) tops them up, which is both
        realistic and additional funding evidence for the detectors.
        """
        balance = self.kit.balance_eth(account)
        if balance >= needed_eth:
            return
        missing = needed_eth - balance + 0.5
        source = self.pool_master if group.is_serial else group.funder
        if source is None:
            self.kit.fund_from_exchange(account, missing, day)
            return
        if self.kit.balance_eth(source) < missing + 1.0:
            self.kit.fund_from_exchange(source, missing + 25.0, day)
        self.kit.transfer_eth(source, account, missing, day)

    def _drain_to_exit(self, group: WashGroup, day: int, keep_eth: float = 0.3) -> None:
        """Send each member's remaining ETH to the common exit account."""
        if group.exit_account is None:
            return
        for account in group.accounts:
            balance = self.kit.balance_eth(account)
            amount = balance - keep_eth
            if amount > 0.05:
                self.kit.transfer_eth(account, group.exit_account, amount, day)

    @staticmethod
    def _legs_for_pattern(
        accounts: Sequence[str], shape: str, rounds: int
    ) -> List[Tuple[str, str]]:
        """The (seller, buyer) sequence realising a Fig. 7 shape.

        The NFT starts at ``accounts[0]``; every sequence keeps ownership
        consistent (the seller of each leg is the current owner).
        """
        n = len(accounts)
        legs: List[Tuple[str, str]] = []
        if n == 1:
            return [(accounts[0], accounts[0])] * max(rounds, 1)
        if shape == "chain" and n >= 3:
            path = list(range(n)) + list(range(n - 2, -1, -1))
            while len(legs) < max(rounds, 2 * (n - 1)):
                for i in range(len(path) - 1):
                    legs.append((accounts[path[i]], accounts[path[i + 1]]))
                    if len(legs) >= max(rounds, 2 * (n - 1)):
                        break
            return legs
        if shape == "hub" and n >= 3:
            spokes: List[int] = []
            for spoke in range(1, n):
                spokes.extend([0, spoke])
            path = spokes + [0]
            for i in range(len(path) - 1):
                legs.append((accounts[path[i]], accounts[path[i + 1]]))
            return legs
        # Default: the circular pattern (also the round trip for n == 2).
        rounds = max(rounds, n)
        for leg in range(rounds):
            legs.append((accounts[leg % n], accounts[(leg + 1) % n]))
        # Close the cycle so the last owner is accounts[0] again only if the
        # count left it elsewhere; an open tail still forms an SCC because
        # the first full cycle already closed it.
        return legs

    def _pick_shape(self, size: int) -> str:
        if size <= 2:
            return "cycle"
        roll = self.rng.random()
        if size == 3:
            return "cycle" if roll < 0.62 else "chain"
        if roll < 0.55:
            return "cycle"
        if roll < 0.80:
            return "chain"
        return "hub"

    def _trade_days(self, start_day: int, legs: int, lifetime_days: float) -> List[int]:
        """Assign each trade leg to a day within the activity's lifetime."""
        end_day = start_day + int(lifetime_days)
        end_day = min(end_day, self.config.duration_days - 2)
        if end_day <= start_day:
            return [start_day] * legs
        days = sorted(
            self.rng.randint(start_day, end_day) for _ in range(legs - 2)
        ) if legs > 2 else []
        return [start_day] + days + [end_day]

    def _record(self, **kwargs) -> None:
        self.ground_truth.record(PlannedActivity(**kwargs))

    # ------------------------------------------------------------------ scenarios
    def reward_farm(self, venue: str, failing: Optional[bool] = None) -> Scenario:
        """Wash trading to farm a venue's token rewards (LooksRare / Rarible)."""
        config = self.config
        collection, start_day = self._pick_collection_and_start()
        size = 2 if self.rng.random() < 0.75 else self._pick_group_size()
        if failing is None:
            failing = self.rng.bernoulli(config.reward_failure_probability)
        if failing:
            # Failing farms are opportunistic one-off attempts: fresh
            # accounts, not the professional pool (the pool's later claims
            # would otherwise mix rewards from unrelated operations in).
            accounts, is_serial = [self.kit.new_account("washer") for _ in range(size)], False
        else:
            accounts, is_serial = self._pick_accounts(size)
        shape = self._pick_shape(size)

        farm_days = self._reward_farm_days.setdefault(venue, [])
        if failing and farm_days:
            # Failing farms trade tiny volumes on a day already dominated by
            # a full-size farm: their reward share is negligible while gas
            # and venue fees are not, so the balance ends negative.
            start_day = self.rng.choice(farm_days)
        elif not failing:
            farm_days.append(start_day)
        if venue == "LooksRare":
            price_range = (0.01, 0.06) if failing else config.looksrare_leg_price_eth
        else:
            price_range = (0.002, 0.02) if failing else config.rarible_leg_price_eth
        start_price = self.rng.uniform(*price_range)
        rounds = (
            self.rng.randint(6, 10) if failing else self.rng.randint(*config.reward_farm_rounds)
        )
        legs = self._legs_for_pattern(accounts, shape, rounds)
        # Reward farming is a burst: the large majority fits in one day.
        lifetime = (
            0.0
            if self.rng.random() < config.reward_farm_single_day_probability
            else self._lifetime_days()
        )
        leg_days = self._trade_days(start_day, len(legs), min(lifetime, 4.0))
        # Failing farms always claim (that is what makes them measurable
        # losses); otherwise a share never bothers to claim at all.
        unclaimed = False if failing else self.rng.bernoulli(config.reward_unclaimed_probability)

        def run() -> Scenario:
            funding_day = max(start_day - self.rng.randint(0, 2), 0)
            yield funding_day
            venue_fee = self.kit.marketplaces.venue(venue).fee_bps / 10_000
            group = self._fund_group(
                accounts, start_price * 1.15 + GAS_BUFFER_ETH, funding_day, is_serial
            )
            acquisition_delay = 0 if self.rng.random() < 0.45 else self.rng.randint(1, 13)
            acquisition_day = max(start_day - acquisition_delay, funding_day)
            yield acquisition_day
            token_id = self.kit.mint(collection.address, accounts[0], acquisition_day)
            nft = NFTKey(contract=collection.address, token_id=token_id)

            price = start_price
            last_day: Optional[int] = None
            for (seller, buyer), day in zip(legs, leg_days):
                if day != last_day:
                    yield day
                    last_day = day
                self._top_up(group, buyer, price + GAS_BUFFER_ETH, day)
                self.kit.marketplace_sale(
                    venue, collection.address, token_id, seller, buyer, price, day
                )
                # The next leg is priced so the freshly paid seller can fund
                # it: the price drops by the venue fee plus a hair of slack,
                # exactly the staircase the paper's case study observes.
                price = max(price * (1 - venue_fee) - 0.01, 0.01)

            claim_day = min(last_day + 1 + self.rng.randint(0, 1), config.duration_days - 1)
            if not unclaimed:
                yield claim_day
                for account in accounts:
                    self.kit.claim_rewards(venue, account, claim_day)
                exit_day = min(claim_day + self.rng.randint(0, 1), config.duration_days - 1)
                if exit_day != claim_day:
                    yield exit_day
                self._drain_to_exit(group, exit_day)
            else:
                exit_day = min(last_day + 1, config.duration_days - 1)
                yield exit_day
                self._drain_to_exit(group, exit_day)

            self._record(
                kind=KIND_REWARD_FARM,
                nft=nft,
                accounts=frozenset(accounts),
                venue=venue,
                start_day=start_day,
                end_day=last_day,
                planned_volume_wei=eth_to_wei(start_price * len(legs)),
                funder=group.funder,
                exit_account=group.exit_account,
                metadata={
                    "shape": shape,
                    "unclaimed": unclaimed,
                    "failing": failing,
                    "serial": is_serial,
                },
            )

        return run()

    def resale_pump(self, venue: str = "OpenSea") -> Scenario:
        """Pump an NFT's price through wash trades, then try to resell it."""
        config = self.config
        collection, start_day = self._pick_collection_and_start()
        size = self._pick_group_size()
        accounts, is_serial = self._pick_accounts(size)
        shape = self._pick_shape(size)
        start_price = self.rng.uniform(*config.opensea_pump_start_price_eth)
        multiplier = self.rng.uniform(*config.opensea_pump_multiplier)
        rounds = max(self.rng.randint(3, 7), size)
        legs = self._legs_for_pattern(accounts, shape, rounds)
        final_price = start_price * multiplier
        lifetime = self._lifetime_days()
        leg_days = self._trade_days(start_day, len(legs), lifetime)
        will_sell = self.rng.bernoulli(config.resale_success_probability)
        profitable = self.rng.bernoulli(config.resale_profitable_probability)

        def run() -> Scenario:
            funding_day = max(start_day - self.rng.randint(0, 3), 0)
            yield funding_day
            group = self._fund_group(
                accounts, final_price * 1.3 + GAS_BUFFER_ETH, funding_day, is_serial
            )
            acquisition_delay = 0 if self.rng.random() < 0.4 else self.rng.randint(1, 13)
            acquisition_day = max(start_day - acquisition_delay, funding_day)
            yield acquisition_day
            # The wash trader buys the NFT from its creator shortly before
            # the manipulation starts (the paper finds most targets are
            # acquired within two weeks of the activity) -- this purchase
            # price is the cost basis of the whole operation.
            creator = self.kit.new_account("creator")
            self.kit.fund_from_exchange(creator, 3.0, acquisition_day)
            token_id = self.kit.mint(collection.address, creator, acquisition_day)
            self._top_up(group, accounts[0], start_price + GAS_BUFFER_ETH, acquisition_day)
            self.kit.marketplace_sale(
                venue, collection.address, token_id, creator, accounts[0],
                start_price, acquisition_day,
            )
            nft = NFTKey(contract=collection.address, token_id=token_id)

            last_day: Optional[int] = None
            for index, ((seller, buyer), day) in enumerate(zip(legs, leg_days)):
                if day != last_day:
                    yield day
                    last_day = day
                fraction = (index + 1) / len(legs)
                price = start_price + (final_price - start_price) * fraction
                self._top_up(group, buyer, price + GAS_BUFFER_ETH, day)
                self.kit.marketplace_sale(
                    venue, collection.address, token_id, seller, buyer, price, day
                )

            current_owner = self.kit.owner_of(collection.address, token_id)
            resale_price = 0.0
            if will_sell:
                # ~40% of resales land the day the manipulation ends, the
                # rest mostly within a month (Sec. VI-B).
                offset = 0 if self.rng.random() < 0.4 else self.rng.randint(1, 28)
                resale_day = min(last_day + offset, config.duration_days - 1)
                yield resale_day
                overhead = final_price * 0.08 + 0.4
                if profitable:
                    resale_price = final_price * self.rng.uniform(1.02, 1.35) + overhead
                else:
                    resale_price = max(
                        start_price * self.rng.uniform(0.5, 0.95), 0.05
                    )
                victim = self.kit.new_account("external-buyer")
                self.kit.fund_from_exchange(victim, resale_price + GAS_BUFFER_ETH, resale_day)
                self.kit.marketplace_sale(
                    venue, collection.address, token_id, current_owner, victim,
                    resale_price, resale_day,
                )
                exit_day = resale_day
            else:
                exit_day = min(last_day + 1, config.duration_days - 1)
                yield exit_day
                if self.rng.random() < 0.4 and size >= 2:
                    # An internal zero-price movement, as the paper observes
                    # for many unsold NFTs.
                    other = accounts[(accounts.index(current_owner) + 1) % size]
                    self.kit.direct_transfer(
                        collection.address, token_id, current_owner, other, exit_day
                    )
            self._drain_to_exit(group, exit_day)

            self._record(
                kind=KIND_RESALE_PUMP,
                nft=nft,
                accounts=frozenset(accounts),
                venue=venue,
                start_day=start_day,
                end_day=last_day,
                planned_volume_wei=eth_to_wei(final_price * len(legs) * 0.6),
                funder=group.funder,
                exit_account=group.exit_account,
                metadata={
                    "shape": shape,
                    "sold": will_sell,
                    "profitable": profitable,
                    "resale_price_eth": resale_price,
                    "serial": is_serial,
                },
            )

        return run()

    def small_wash(self, venue: str = "OpenSea") -> Scenario:
        """A low-value wash on a non-reward venue (bulk of the operation count)."""
        config = self.config
        collection, start_day = self._pick_collection_and_start()
        size = self._pick_group_size()
        accounts, is_serial = self._pick_accounts(size)
        shape = self._pick_shape(size)
        price = self.rng.uniform(0.05, 3.0)
        rounds = max(self.rng.randint(2, 5), size)
        legs = self._legs_for_pattern(accounts, shape, rounds)
        lifetime = self._lifetime_days()
        leg_days = self._trade_days(start_day, len(legs), lifetime)

        def run() -> Scenario:
            funding_day = max(start_day - self.rng.randint(0, 2), 0)
            yield funding_day
            group = self._fund_group(
                accounts, price * 1.4 + GAS_BUFFER_ETH, funding_day, is_serial
            )
            acquisition_day = max(start_day - (0 if self.rng.random() < 0.4 else self.rng.randint(1, 10)), funding_day)
            yield acquisition_day
            creator = self.kit.new_account("creator")
            self.kit.fund_from_exchange(creator, 3.0, acquisition_day)
            token_id = self.kit.mint(collection.address, creator, acquisition_day)
            self._top_up(group, accounts[0], price + GAS_BUFFER_ETH, acquisition_day)
            self.kit.marketplace_sale(
                venue, collection.address, token_id, creator, accounts[0], price, acquisition_day
            )
            nft = NFTKey(contract=collection.address, token_id=token_id)

            leg_price = price
            last_day: Optional[int] = None
            venue_fee = self.kit.marketplaces.venue(venue).fee_bps / 10_000
            for (seller, buyer), day in zip(legs, leg_days):
                if day != last_day:
                    yield day
                    last_day = day
                self._top_up(group, buyer, leg_price + GAS_BUFFER_ETH, day)
                self.kit.marketplace_sale(
                    venue, collection.address, token_id, seller, buyer, leg_price, day
                )
                leg_price = max(leg_price * (1 - venue_fee) - 0.002, 0.01)

            if self.rng.bernoulli(config.small_wash_resale_probability):
                resale_day = min(
                    last_day + (0 if self.rng.random() < 0.4 else self.rng.randint(1, 25)),
                    config.duration_days - 1,
                )
                yield resale_day
                owner = self.kit.owner_of(collection.address, token_id)
                resale_price = price * self.rng.uniform(*config.small_wash_resale_uplift)
                victim = self.kit.new_account("external-buyer")
                self.kit.fund_from_exchange(victim, resale_price + GAS_BUFFER_ETH, resale_day)
                self.kit.marketplace_sale(
                    venue, collection.address, token_id, owner, victim, resale_price, resale_day
                )
                exit_day = resale_day
            else:
                exit_day = min(last_day + 1, config.duration_days - 1)
                yield exit_day
            self._drain_to_exit(group, exit_day)
            self._record(
                kind=KIND_SMALL_WASH,
                nft=nft,
                accounts=frozenset(accounts),
                venue=venue,
                start_day=start_day,
                end_day=last_day,
                planned_volume_wei=eth_to_wei(price * len(legs)),
                funder=group.funder,
                exit_account=group.exit_account,
                metadata={"shape": shape, "serial": is_serial},
            )

        return run()

    def self_trade(self) -> Scenario:
        """An account trading an NFT with itself, outside any venue."""
        config = self.config
        collection, start_day = self._pick_collection_and_start()
        accounts, is_serial = self._pick_accounts(1)
        account = accounts[0]
        attached = self.rng.uniform(0.3, 6.0)
        repeats = self.rng.randint(1, 3)

        def run() -> Scenario:
            funding_day = max(start_day - 1, 0)
            yield funding_day
            group = self._fund_group(
                [account], attached * repeats + GAS_BUFFER_ETH, funding_day, is_serial
            )
            yield start_day
            self._top_up(group, account, attached * repeats + GAS_BUFFER_ETH, start_day)
            token_id = self.kit.mint(collection.address, account, start_day)
            nft = NFTKey(contract=collection.address, token_id=token_id)
            for _ in range(repeats):
                self.kit.self_trade(collection.address, token_id, account, start_day, attached)
            self._record(
                kind=KIND_SELF_TRADE,
                nft=nft,
                accounts=frozenset([account]),
                venue=None,
                start_day=start_day,
                end_day=start_day,
                planned_volume_wei=eth_to_wei(attached * repeats),
                funder=group.funder,
                exit_account=group.exit_account,
                metadata={"repeats": repeats, "serial": is_serial},
            )

        return run()

    def rarity_game(self, venue: str = "OpenSea") -> Scenario:
        """Sell-and-return cycles to farm sale-triggered trait upgrades."""
        config = self.config
        collection, start_day = self._pick_collection_and_start()
        buyer_count = self.rng.randint(2, 4)
        seller = self.kit.new_account("rarity-seller")
        buyers = [self.kit.new_account("rarity-buyer") for _ in range(buyer_count)]
        price = self.rng.uniform(0.4, 3.0)

        def run() -> Scenario:
            funding_day = max(start_day - 1, 0)
            yield funding_day
            group = self._fund_group(
                [seller, *buyers], price * 1.5 + GAS_BUFFER_ETH, funding_day, is_serial=False
            )
            yield start_day
            token_id = self.kit.mint(collection.address, seller, start_day)
            nft = NFTKey(contract=collection.address, token_id=token_id)
            day = start_day
            for index, buyer in enumerate(buyers):
                day = min(start_day + index, config.duration_days - 2)
                if index:
                    yield day
                self._top_up(group, buyer, price + GAS_BUFFER_ETH, day)
                self.kit.marketplace_sale(
                    venue, collection.address, token_id, seller, buyer, price, day
                )
                # The buyer hands the NFT back off-market, for free.
                self.kit.direct_transfer(collection.address, token_id, buyer, seller, day)
            exit_day = min(day + 1, config.duration_days - 1)
            yield exit_day
            self._drain_to_exit(group, exit_day)
            self._record(
                kind=KIND_RARITY_GAME,
                nft=nft,
                accounts=frozenset([seller, *buyers]),
                venue=venue,
                start_day=start_day,
                end_day=day,
                planned_volume_wei=eth_to_wei(price * buyer_count),
                funder=group.funder,
                exit_account=group.exit_account,
                metadata={"buyers": buyer_count},
            )

        return run()

    def p2p_wash(self) -> Scenario:
        """An off-market wash with payments that fully circulate (zero risk)."""
        config = self.config
        collection, start_day = self._pick_collection_and_start()
        accounts, is_serial = self._pick_accounts(2)
        price = self.rng.uniform(0.5, 8.0)
        rounds = self.rng.randint(2, 6)
        zero_risk = self.rng.bernoulli(config.zero_risk_p2p_probability)
        lifetime = self._lifetime_days()
        leg_days = self._trade_days(start_day, rounds, min(lifetime, 6.0))

        def run() -> Scenario:
            funding_day = max(start_day - self.rng.randint(0, 2), 0)
            yield funding_day
            group = self._fund_group(
                accounts, price + GAS_BUFFER_ETH, funding_day, is_serial
            )
            yield leg_days[0]
            token_id = self.kit.mint(collection.address, accounts[0], leg_days[0])
            nft = NFTKey(contract=collection.address, token_id=token_id)
            owner_index = 0
            last_day = leg_days[0]
            for day in leg_days:
                if day != last_day:
                    yield day
                    last_day = day
                seller = accounts[owner_index]
                buyer = accounts[1 - owner_index]
                leg_price = price if zero_risk else price * self.rng.uniform(0.8, 1.2)
                self._top_up(group, buyer, leg_price + 1.0, day)
                # The atomic OTC desk keeps the payment in the same
                # transaction as the NFT move (non-zero volume, zero venue
                # fee) -- the textbook zero-risk position.
                self.kit.otc_trade(
                    collection.address, token_id, seller, buyer, leg_price, day
                )
                owner_index = 1 - owner_index
            exit_day = min(last_day + 1, config.duration_days - 1)
            yield exit_day
            self._drain_to_exit(group, exit_day)
            self._record(
                kind=KIND_P2P_WASH,
                nft=nft,
                accounts=frozenset(accounts),
                venue=None,
                start_day=start_day,
                end_day=last_day,
                planned_volume_wei=eth_to_wei(price * rounds),
                funder=group.funder,
                exit_account=group.exit_account,
                metadata={"zero_risk": zero_risk, "serial": is_serial},
            )

        return run()

    # ------------------------------------------------------------------ planted negatives
    def zero_volume_shuffle(self) -> Scenario:
        """Accounts moving an NFT in a circle without any payment (filtered)."""
        collection, start_day = self._pick_collection_and_start()
        size = self.rng.randint(2, 3)
        accounts = [self.kit.new_account("shuffler") for _ in range(size)]

        def run() -> Scenario:
            yield max(start_day - 1, 0)
            funder = self.kit.new_account("shuffle-funder")
            self.kit.fund_from_exchange(funder, GAS_BUFFER_ETH * (size + 1), max(start_day - 1, 0))
            for account in accounts:
                self.kit.transfer_eth(funder, account, GAS_BUFFER_ETH, max(start_day - 1, 0))
            yield start_day
            token_id = self.kit.mint(collection.address, accounts[0], start_day)
            nft = NFTKey(contract=collection.address, token_id=token_id)
            for index in range(size):
                sender = accounts[index]
                recipient = accounts[(index + 1) % size]
                self.kit.direct_transfer(collection.address, token_id, sender, recipient, start_day)
            self._record(
                kind=KIND_ZERO_VOLUME,
                nft=nft,
                accounts=frozenset(accounts),
                venue=None,
                start_day=start_day,
                end_day=start_day,
                expected_detectable=False,
            )

        return run()

    def service_account_cycle(self, exchange: CentralizedExchange) -> Scenario:
        """An NFT parked at an exchange hot wallet and returned (filtered)."""
        collection, start_day = self._pick_collection_and_start()
        user = self.kit.new_account("custodial-user")

        def run() -> Scenario:
            yield max(start_day - 1, 0)
            self.kit.fund_from_exchange(user, GAS_BUFFER_ETH + 2.0, max(start_day - 1, 0), exchange=exchange)
            yield start_day
            token_id = self.kit.mint(collection.address, user, start_day)
            nft = NFTKey(contract=collection.address, token_id=token_id)
            self.kit.direct_transfer(
                collection.address, token_id, user, exchange.hot_wallet, start_day
            )
            return_day = min(start_day + self.rng.randint(1, 5), self.config.duration_days - 1)
            yield return_day
            # The custodian needs gas to hand the NFT back; hot wallets hold plenty.
            self.kit.direct_transfer(
                collection.address, token_id, exchange.hot_wallet, user, return_day
            )
            self._record(
                kind=KIND_SERVICE_NOISE,
                nft=nft,
                accounts=frozenset([user, exchange.hot_wallet]),
                venue=None,
                start_day=start_day,
                end_day=return_day,
                expected_detectable=False,
            )

        return run()

    def contract_account_cycle(self) -> Scenario:
        """An NFT staked into a game contract and unstaked (filtered)."""
        collection, start_day = self._pick_collection_and_start()
        user = self.kit.new_account("gamer")
        game = self.game_address

        def run() -> Scenario:
            yield max(start_day - 1, 0)
            self.kit.fund_from_exchange(user, GAS_BUFFER_ETH + 2.0, max(start_day - 1, 0))
            yield start_day
            token_id = self.kit.mint(collection.address, user, start_day)
            nft = NFTKey(contract=collection.address, token_id=token_id)
            if game is None:
                return
            self.kit.ensure_approval(user, collection.address, game, start_day)
            timestamp = self.kit.clock.next_timestamp(start_day)
            self.kit.chain.transact(
                sender=user,
                to=game,
                call=Call("stake", {"collection": collection.address, "token_id": token_id}),
                timestamp=timestamp,
            )
            unstake_day = min(start_day + self.rng.randint(1, 7), self.config.duration_days - 1)
            yield unstake_day
            timestamp = self.kit.clock.next_timestamp(unstake_day)
            self.kit.chain.transact(
                sender=user,
                to=game,
                call=Call("unstake", {"collection": collection.address, "token_id": token_id}),
                timestamp=timestamp,
            )
            self._record(
                kind=KIND_CONTRACT_NOISE,
                nft=nft,
                accounts=frozenset([user, game]),
                venue=None,
                start_day=start_day,
                end_day=unstake_day,
                expected_detectable=False,
            )

        return run()

    # ------------------------------------------------------------------ catalogue
    def build_all(self, exchanges: Sequence[CentralizedExchange]) -> List[Scenario]:
        """Instantiate every planted scenario according to the configured mix."""
        mix = self.config.wash_mix
        scenarios: List[Scenario] = []
        # Full-size farms are instantiated before the failing ones so the
        # failing ones can piggy-back on a whale day (diluting their share).
        looks_failing = max(int(round(mix.looksrare_reward_farms * self.config.reward_failure_probability)), 1)
        rari_failing = max(int(round(mix.rarible_reward_farms * self.config.reward_failure_probability)), 1)
        scenarios.extend(
            self.reward_farm("LooksRare", failing=False)
            for _ in range(mix.looksrare_reward_farms - looks_failing)
        )
        scenarios.extend(
            self.reward_farm("Rarible", failing=False)
            for _ in range(mix.rarible_reward_farms - rari_failing)
        )
        scenarios.extend(self.reward_farm("LooksRare", failing=True) for _ in range(looks_failing))
        scenarios.extend(self.reward_farm("Rarible", failing=True) for _ in range(rari_failing))
        scenarios.extend(self.resale_pump("OpenSea") for _ in range(mix.opensea_resale_pumps))
        scenarios.extend(self.small_wash("OpenSea") for _ in range(mix.opensea_small_washes))
        scenarios.extend(self.small_wash("SuperRare") for _ in range(mix.superrare_washes))
        scenarios.extend(self.small_wash("Decentraland") for _ in range(mix.decentraland_washes))
        scenarios.extend(self.self_trade() for _ in range(mix.self_trades))
        scenarios.extend(self.rarity_game() for _ in range(mix.rarity_games))
        scenarios.extend(self.p2p_wash() for _ in range(mix.offmarket_p2p_washes))
        scenarios.extend(self.zero_volume_shuffle() for _ in range(mix.zero_volume_shuffles))
        for index in range(self.config.service_account_cycles):
            exchange = exchanges[index % len(exchanges)]
            scenarios.append(self.service_account_cycle(exchange))
        scenarios.extend(
            self.contract_account_cycle() for _ in range(self.config.contract_account_cycles)
        )
        return scenarios
