"""The scenario registry and the built-in adversarial catalogue.

Each entry is a frozen :class:`~repro.simulation.scenarios.spec.ScenarioSpec`
keyed by name; ``python -m repro scenario NAME`` resolves here, and
tests/benchmarks iterate :func:`scenario_names` to run the standing
gauntlet.  Register project-specific specs with :func:`register` --
duplicate names are rejected so a catalogue entry can never be silently
shadowed.

The built-ins cover the adversarial regimes the paper (La Morgia et
al., ICDCS 2023) and the follow-up marketplace studies single out:
reward-farming waves around incentive shifts, fee-regime changes,
reorg storms under traffic spikes, multi-venue serial traders, and
ERC-1155 batch tokenization churn that detection must ignore.
"""

from __future__ import annotations

from typing import Dict, List

from repro.simulation.scenarios.spec import (
    FeeShift,
    PhaseSLO,
    PhaseSpec,
    ReorgProfile,
    ScenarioSpec,
    TokenizationWave,
    WorldSpec,
)

__all__ = ["SCENARIOS", "register", "get_scenario", "scenario_names"]

SCENARIOS: Dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec) -> ScenarioSpec:
    """Add a spec to the registry; returns it (decorator-friendly)."""
    if spec.name in SCENARIOS:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    SCENARIOS[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario; unknown names list the catalogue."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(scenario_names()) or "<none>"
        raise ValueError(
            f"unknown scenario {name!r}; registered: {known}"
        ) from None


def scenario_names() -> List[str]:
    """Registered scenario names, sorted."""
    return sorted(SCENARIOS)


#: A relaxed default latency bar: the detect stage (tick start to alert
#: publish) is pure compute and lands in milliseconds on any machine;
#: the 5s bar exists to catch pathological regressions, not to flake CI.
_DETECT_BAR = PhaseSLO(stage="detect", threshold_seconds=5.0)


register(
    ScenarioSpec(
        name="reward-wave",
        description=(
            "Reward-farming waves around a marketplace incentive shift: "
            "LooksRare zeroes its fee mid-history, farms pile in, the fee "
            "snaps back"
        ),
        world=WorldSpec(
            preset="tiny",
            wash_mix=(
                ("looksrare_reward_farms", 6),
                ("rarible_reward_farms", 4),
            ),
            fee_shifts=(
                FeeShift(venue="LooksRare", fee_bps=0, at_fraction=0.35),
                FeeShift(venue="LooksRare", fee_bps=200, at_fraction=0.75),
            ),
        ),
        phases=(
            PhaseSpec(name="warmup", fraction=0.35, step_blocks=30),
            PhaseSpec(name="farm-wave", fraction=0.40, step_blocks=12),
            PhaseSpec(name="settle", fraction=0.25, step_blocks=30),
        ),
        tags=("fast", "fees", "farming"),
    )
)

register(
    ScenarioSpec(
        name="fee-regime-shift",
        description=(
            "Marketplace fee-regime changes mid-history: OpenSea slashes "
            "fees, Foundation abandons its prohibitive 15% -- detection "
            "must stay batch-identical across both regimes"
        ),
        world=WorldSpec(
            preset="tiny",
            fee_shifts=(
                FeeShift(venue="OpenSea", fee_bps=50, at_fraction=0.33),
                FeeShift(venue="Foundation", fee_bps=150, at_fraction=0.66),
            ),
        ),
        phases=(
            PhaseSpec(name="old-regime", fraction=0.33, step_blocks=25),
            PhaseSpec(name="transition", fraction=0.34, step_blocks=25),
            PhaseSpec(name="new-regime", fraction=0.33, step_blocks=25),
        ),
        tags=("fast", "fees"),
    )
)

register(
    ScenarioSpec(
        name="reorg-storm-rush",
        description=(
            "A reorg storm under a traffic spike: tight ticks while the "
            "chain tail is repeatedly orphaned, shortened and re-mined "
            "with dropped/delayed wash evidence"
        ),
        world=WorldSpec(preset="tiny"),
        phases=(
            PhaseSpec(name="calm", fraction=0.35, step_blocks=40),
            PhaseSpec(
                name="storm",
                fraction=0.40,
                step_blocks=8,
                reorg=ReorgProfile(
                    probability=0.45,
                    max_depth=6,
                    drop_probability=0.3,
                    delay_probability=0.25,
                    max_shorten=1,
                ),
            ),
            PhaseSpec(name="recovery", fraction=0.25, step_blocks=25),
        ),
        tags=("fast", "reorg"),
    )
)

register(
    ScenarioSpec(
        name="serial-multi-venue",
        description=(
            "A professional serial-trader pool washing across every venue "
            "at once -- the paper's cross-marketplace operator profile, "
            "concentrated"
        ),
        world=WorldSpec(
            preset="tiny",
            overrides=(
                ("serial_pool_probability", 0.95),
                ("serial_pool_size", 8),
            ),
            wash_mix=(
                ("superrare_washes", 3),
                ("decentraland_washes", 3),
                ("opensea_small_washes", 6),
                ("offmarket_p2p_washes", 5),
            ),
        ),
        phases=(
            PhaseSpec(name="ramp", fraction=0.5, step_blocks=25),
            PhaseSpec(name="crescendo", fraction=0.5, step_blocks=15),
        ),
        tags=("serial", "multi-venue"),
    )
)

register(
    ScenarioSpec(
        name="tokenization-churn",
        description=(
            "ERC-1155 batch mint/burn tokenization waves (game-item "
            "tokenizer style) churning beside the market -- TransferBatch "
            "volume the ERC-721 scan must not pick up"
        ),
        world=WorldSpec(
            preset="tiny",
            tokenization=TokenizationWave(
                holders=4,
                token_kinds=6,
                max_units=30,
                batches_per_day=3,
                start_fraction=0.15,
                end_fraction=0.85,
            ),
        ),
        phases=(
            PhaseSpec(name="quiet", fraction=0.4, step_blocks=30),
            PhaseSpec(name="churn", fraction=0.6, step_blocks=20),
        ),
        tags=("fast", "erc1155"),
    )
)

register(
    ScenarioSpec(
        name="day-in-the-life",
        description=(
            "The full soak: a compressed day in the life of the live "
            "stack -- quiet ingest, a traffic rush, a reorg storm, "
            "wind-down -- with a fee shift and an ERC-1155 wave staged "
            "into the world, end-to-end SLOs armed"
        ),
        world=WorldSpec(
            preset="tiny",
            fee_shifts=(
                FeeShift(venue="LooksRare", fee_bps=0, at_fraction=0.3),
            ),
            tokenization=TokenizationWave(
                holders=3,
                token_kinds=5,
                max_units=25,
                batches_per_day=2,
                start_fraction=0.25,
                end_fraction=0.75,
            ),
        ),
        phases=(
            PhaseSpec(name="overnight", fraction=0.25, step_blocks=40),
            PhaseSpec(
                name="rush",
                fraction=0.30,
                step_blocks=10,
                slos=(
                    _DETECT_BAR,
                    PhaseSLO(
                        stage="total",
                        threshold_seconds=30.0,
                        window=16,
                        budget=0.5,
                    ),
                ),
            ),
            PhaseSpec(
                name="storm",
                fraction=0.25,
                step_blocks=12,
                reorg=ReorgProfile(probability=0.4, max_depth=5, max_shorten=1),
            ),
            PhaseSpec(name="wind-down", fraction=0.20, step_blocks=30),
        ),
        #: ~2.6M simulated seconds (30 days) replay in about 10s of wall
        #: pacing at this speed; CI raises --speed further.
        default_speed=250_000.0,
        tags=("soak",),
    )
)
