"""The world builder: assembles and runs a full synthetic history."""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.chain.chain import Chain
from repro.chain.node import EthereumNode
from repro.contracts.erc721 import ERC721Collection
from repro.contracts.erc1155 import ERC1155Collection
from repro.contracts.noncompliant import NonCompliantNFTContract
from repro.contracts.registry import ContractRegistry
from repro.marketplaces.venues import build_standard_marketplaces
from repro.services.defi import (
    ConstantProductPool,
    FlashLoanProvider,
    OTCSwapDesk,
    PositionNFTVault,
)
from repro.services.exchanges import CentralizedExchange
from repro.services.games import NFTStakingGame
from repro.services.labels import LabelRegistry
from repro.services.oracle import PriceOracle
from repro.simulation.actors import TradingKit
from repro.simulation.config import SimulationConfig
from repro.simulation.distractors import DistractorEngine
from repro.simulation.ground_truth import GroundTruth
from repro.simulation.legit import LegitMarket
from repro.simulation.scenarios import ScenarioFactory
from repro.simulation.timeline import TimeAllocator
from repro.simulation.world import DeployedCollection, World
from repro.utils.currency import eth_to_wei
from repro.utils.rng import DeterministicRNG
from repro.utils.timeutil import SIMULATION_EPOCH

#: Collections the paper names as the most wash-traded; the synthetic
#: wash-target collections borrow these names so reports read naturally.
WASH_TARGET_NAMES = (
    "Meebits",
    "Terraforms",
    "Loot",
    "Rollbots",
    "Avastar",
    "OG:Crystals",
    "ArtBlocks",
    "The n project",
    "BFH-Unit",
    "Staked Critterz",
    "EthermonMonster",
    "BFH: Sphere",
)


@dataclass
class DayHookContext:
    """What a day hook may touch while the history is being generated.

    Hooks run at the start of their day, before any of that day's
    organic activity, so a fee change or token churn is visible to every
    trade the day produces -- the same ordering a real governance change
    taking effect at midnight would have.
    """

    day: int
    chain: Chain
    kit: TradingKit
    marketplaces: object
    erc1155_address: Optional[str]
    rng: DeterministicRNG


#: A build-time intervention: called once on its scheduled day.
DayHook = Callable[[DayHookContext], None]


class WorldBuilder:
    """Builds a deterministic synthetic world from a :class:`SimulationConfig`.

    ``day_hooks`` is an optional iterable of ``(day, hook)`` pairs; each
    hook fires at the start of its day with a :class:`DayHookContext`.
    The scenario engine uses this to stage mid-history regime changes --
    marketplace fee shifts, ERC-1155 tokenization waves -- without the
    builder having to know about any specific intervention.
    """

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        day_hooks: Iterable[Tuple[int, DayHook]] = (),
    ) -> None:
        self.config = config or SimulationConfig()
        self.day_hooks: Dict[int, List[DayHook]] = {}
        for day, hook in day_hooks:
            self.day_hooks.setdefault(day, []).append(hook)

    # -- public API -----------------------------------------------------------------
    def build(self) -> World:
        """Deploy the ecosystem, run the simulated history, return the world."""
        config = self.config
        rng = DeterministicRNG(config.seed)
        clock = TimeAllocator(start_timestamp=SIMULATION_EPOCH)
        chain = Chain(genesis_timestamp=SIMULATION_EPOCH)
        labels = LabelRegistry()
        registry = ContractRegistry()
        oracle = PriceOracle()

        marketplaces = build_standard_marketplaces(
            chain,
            labels,
            registry,
            looks_daily_emission=config.looks_daily_emission,
            rari_daily_emission=config.rari_daily_emission,
        )
        exchanges = self._deploy_exchanges(chain, labels)
        defi_addresses, erc1155_address, noncompliant_addresses, game_address = (
            self._deploy_defi_and_distractor_contracts(
                chain, labels, registry, marketplaces
            )
        )
        collections, collections_map, collection_targets = self._deploy_collections(
            chain, registry, clock, rng.child("collections")
        )

        kit = TradingKit(
            chain=chain,
            marketplaces=marketplaces,
            collections=collections_map,
            exchanges=exchanges,
            labels=labels,
            clock=clock,
            rng=rng.child("kit"),
            otc_desk_address=defi_addresses.get("otc-desk"),
        )
        traders, whales = self._fund_traders(kit, rng.child("traders"))

        ground_truth = GroundTruth()
        wash_collections = [item for item in collections if item.is_wash_target]
        factory = ScenarioFactory(
            kit=kit,
            config=config,
            rng=rng.child("wash"),
            ground_truth=ground_truth,
            wash_collections=wash_collections,
            game_address=game_address,
            dex_addresses=defi_addresses,
        )
        scenarios = factory.build_all(exchanges)

        legit = LegitMarket(
            kit=kit,
            config=config,
            rng=rng.child("legit"),
            collections=collections,
            traders=traders,
            whales=whales,
            collection_targets=collection_targets,
        )
        distractors = DistractorEngine(
            kit=kit,
            config=config,
            rng=rng.child("distractors"),
            vault_address=defi_addresses.get("position-vault"),
            erc1155_address=erc1155_address,
            noncompliant_addresses=noncompliant_addresses,
            traders=traders,
            )

        hook_context = DayHookContext(
            day=0,
            chain=chain,
            kit=kit,
            marketplaces=marketplaces,
            erc1155_address=erc1155_address,
            rng=rng.child("day-hooks"),
        )
        self._run_timeline(clock, legit, distractors, scenarios, hook_context)

        return World(
            config=config,
            chain=chain,
            node=EthereumNode(chain),
            labels=labels,
            registry=registry,
            oracle=oracle,
            marketplaces=marketplaces,
            exchanges=exchanges,
            collections=collections,
            ground_truth=ground_truth,
            defi_addresses=defi_addresses,
        )

    # -- deployment helpers -----------------------------------------------------------
    @staticmethod
    def _deploy_exchanges(chain: Chain, labels: LabelRegistry) -> List[CentralizedExchange]:
        exchanges = [
            CentralizedExchange("Coinbase", chain, labels, initial_liquidity_eth=4_000_000),
            CentralizedExchange("Binance", chain, labels, initial_liquidity_eth=4_000_000),
            CentralizedExchange("Kraken", chain, labels, initial_liquidity_eth=2_000_000),
        ]
        # A CeFi lender hot wallet, to exercise the CeFi label too.
        CentralizedExchange("NexoCustody", chain, labels, initial_liquidity_eth=500_000, label="cefi")
        return exchanges

    def _deploy_defi_and_distractor_contracts(
        self,
        chain: Chain,
        labels: LabelRegistry,
        registry: ContractRegistry,
        marketplaces,
    ) -> Tuple[Dict[str, str], Optional[str], List[str], Optional[str]]:
        defi_addresses: Dict[str, str] = {}

        looks_pool = ConstantProductPool(marketplaces.reward_tokens["LooksRare"])
        looks_pool_address = chain.deploy_contract(looks_pool)
        looks_pool.seed_liquidity(
            token_amount=int(3_500_000 * 10**18), eth_amount_wei=eth_to_wei(5_000), chain=chain
        )
        registry.register(looks_pool_address, kind="dex", name="LOOKS/ETH Pool")
        labels.add(looks_pool_address, "dex", name="LOOKS/ETH Pool")
        defi_addresses["looks-pool"] = looks_pool_address

        rari_pool = ConstantProductPool(marketplaces.reward_tokens["Rarible"])
        rari_pool_address = chain.deploy_contract(rari_pool)
        rari_pool.seed_liquidity(
            token_amount=int(150_000 * 10**18), eth_amount_wei=eth_to_wei(1_000), chain=chain
        )
        registry.register(rari_pool_address, kind="dex", name="RARI/ETH Pool")
        labels.add(rari_pool_address, "dex", name="RARI/ETH Pool")
        defi_addresses["rari-pool"] = rari_pool_address

        lender = FlashLoanProvider()
        lender_address = chain.deploy_contract(lender)
        lender.seed_liquidity(eth_to_wei(80_000), chain)
        registry.register(lender_address, kind="lending", name="FlashLender")
        labels.add(lender_address, "lending", name="FlashLender")
        defi_addresses["flash-lender"] = lender_address

        position_collection = ERC721Collection(
            "DEX LP Positions", "DEX-POS", creation_timestamp=SIMULATION_EPOCH
        )
        position_collection_address = chain.deploy_contract(position_collection)
        registry.register(position_collection_address, kind="erc721", name="DEX LP Positions")
        vault = PositionNFTVault(position_collection)
        vault_address = chain.deploy_contract(vault)
        registry.register(vault_address, kind="defi", name="DEX Position Vault")
        labels.add(vault_address, "defi", name="DEX Position Vault")
        defi_addresses["position-vault"] = vault_address
        defi_addresses["position-collection"] = position_collection_address

        erc1155 = ERC1155Collection("MultiToken Art")
        erc1155_address = chain.deploy_contract(erc1155)
        registry.register(erc1155_address, kind="erc1155", name="MultiToken Art")

        noncompliant_addresses: List[str] = []
        for index in range(self.config.noncompliant_contracts):
            contract = NonCompliantNFTContract(
                f"Legacy Token {index}", broken_erc165=(index % 2 == 1)
            )
            address = chain.deploy_contract(contract)
            registry.register(address, kind="noncompliant-nft", name=contract.collection_name)
            noncompliant_addresses.append(address)

        game = NFTStakingGame("ChainQuest")
        game_address = chain.deploy_contract(game)
        registry.register(game_address, kind="defi", name="ChainQuest Staking")

        otc_desk = OTCSwapDesk()
        otc_address = chain.deploy_contract(otc_desk)
        registry.register(otc_address, kind="other", name="OTC Swap Desk")
        defi_addresses["otc-desk"] = otc_address

        return defi_addresses, erc1155_address, noncompliant_addresses, game_address

    def _deploy_collections(
        self,
        chain: Chain,
        registry: ContractRegistry,
        clock: TimeAllocator,
        rng: DeterministicRNG,
    ) -> Tuple[List[DeployedCollection], Dict[str, ERC721Collection], Dict[str, int]]:
        config = self.config
        collections: List[DeployedCollection] = []
        collections_map: Dict[str, ERC721Collection] = {}
        targets: Dict[str, int] = {}
        latest_creation_day = max(int(config.duration_days * 0.75), 1)

        def deploy(name: str, symbol: str, creation_day: int, wash_target: bool) -> None:
            contract = ERC721Collection(
                name, symbol, creation_timestamp=clock.day_start(creation_day)
            )
            address = chain.deploy_contract(contract)
            registry.register(
                address,
                kind="erc721",
                name=name,
                creation_timestamp=clock.day_start(creation_day),
            )
            collections.append(
                DeployedCollection(
                    name=name,
                    address=address,
                    contract=contract,
                    creation_day=creation_day,
                    is_wash_target=wash_target,
                )
            )
            collections_map[address] = contract
            targets[address] = rng.randint(*config.nfts_per_collection)

        for index in range(config.legit_collections):
            creation_day = rng.randint(0, latest_creation_day)
            deploy(f"Collection {index:03d}", f"C{index:03d}", creation_day, wash_target=False)

        wash_names = list(WASH_TARGET_NAMES)
        for index in range(config.wash_target_collections):
            name = wash_names[index % len(wash_names)]
            if index >= len(wash_names):
                name = f"{name} v{index // len(wash_names) + 1}"
            creation_day = rng.randint(0, latest_creation_day)
            deploy(name, name[:4].upper(), creation_day, wash_target=True)

        return collections, collections_map, targets

    def _fund_traders(
        self, kit: TradingKit, rng: DeterministicRNG
    ) -> Tuple[List[str], List[str]]:
        config = self.config
        traders: List[str] = []
        whales: List[str] = []
        whale_count = max(int(config.legit_traders * config.whale_trader_fraction), 2)
        for index in range(config.legit_traders):
            account = kit.new_account("collector")
            if index < whale_count:
                amount = rng.uniform(*config.whale_funding_range_eth)
                whales.append(account)
            else:
                amount = rng.uniform(*config.trader_funding_range_eth)
            kit.fund_from_exchange(account, amount, day=0)
            traders.append(account)
        return traders, whales

    # -- timeline ----------------------------------------------------------------------
    def _run_timeline(
        self,
        clock: TimeAllocator,
        legit: LegitMarket,
        distractors: DistractorEngine,
        scenarios,
        hook_context: Optional[DayHookContext] = None,
    ) -> None:
        config = self.config
        heap: List[Tuple[int, int, object]] = []
        for sequence, generator in enumerate(scenarios):
            try:
                first_day = next(generator)
            except StopIteration:
                continue
            heapq.heappush(heap, (max(first_day, 0), sequence, generator))

        for day in range(config.duration_days):
            clock.jump_to_day(day)
            if hook_context is not None:
                for hook in self.day_hooks.get(day, ()):
                    hook_context.day = day
                    hook(hook_context)
            legit.run_day(day)
            distractors.run_day(day)
            while heap and heap[0][0] <= day:
                _, sequence, generator = heapq.heappop(heap)
                try:
                    next_day = next(generator)
                except StopIteration:
                    continue
                heapq.heappush(heap, (max(next_day, day), sequence, generator))

        # Let scenarios that still want future days finish on the last day so
        # no planted activity is left half-executed.
        final_day = config.duration_days - 1
        clock.jump_to_day(final_day)
        while heap:
            _, sequence, generator = heapq.heappop(heap)
            try:
                next_day = next(generator)
            except StopIteration:
                continue
            heapq.heappush(heap, (max(next_day, final_day), sequence, generator))


def build_default_world(
    config: Optional[SimulationConfig] = None,
    day_hooks: Iterable[Tuple[int, DayHook]] = (),
) -> World:
    """Build a world from the default (or a provided) configuration."""
    return WorldBuilder(config, day_hooks=day_hooks).build()
