"""Distractor activity: on-chain noise the pipeline must not flag.

The paper's dataset is dominated by activity that has nothing to do with
collectible trading: UniswapV3 position NFTs (91% of raw volume),
ERC-1155 and non-compliant token contracts, exchange deposit churn.
This module plants the equivalent noise so the ingest filters and the
refinement steps have something real to reject.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chain.errors import ChainError
from repro.chain.types import Call
from repro.simulation.actors import TradingKit
from repro.simulation.config import SimulationConfig
from repro.utils.currency import eth_to_wei
from repro.utils.rng import DeterministicRNG


@dataclass
class DistractorPlan:
    """Pre-computed schedule of distractor actions, keyed by day."""

    position_deposits: Dict[int, int] = field(default_factory=dict)
    erc1155_transfers: Dict[int, int] = field(default_factory=dict)
    noncompliant_transfers: Dict[int, int] = field(default_factory=dict)
    exchange_churn: Dict[int, int] = field(default_factory=dict)


def spread_over_days(total: int, duration_days: int, rng: DeterministicRNG) -> Dict[int, int]:
    """Distribute ``total`` actions over the simulation, one day key per action."""
    schedule: Dict[int, int] = {}
    for _ in range(total):
        day = rng.randint(1, max(duration_days - 2, 1))
        schedule[day] = schedule.get(day, 0) + 1
    return schedule


class DistractorEngine:
    """Executes the distractor schedule day by day."""

    def __init__(
        self,
        kit: TradingKit,
        config: SimulationConfig,
        rng: DeterministicRNG,
        vault_address: Optional[str],
        erc1155_address: Optional[str],
        noncompliant_addresses: List[str],
        traders: List[str],
    ) -> None:
        self.kit = kit
        self.config = config
        self.rng = rng
        self.vault_address = vault_address
        self.erc1155_address = erc1155_address
        self.noncompliant_addresses = noncompliant_addresses
        self.traders = traders
        self.plan = DistractorPlan(
            position_deposits=spread_over_days(
                config.position_vault_deposits, config.duration_days, rng
            ),
            erc1155_transfers=spread_over_days(
                config.erc1155_transfers, config.duration_days, rng
            ),
            noncompliant_transfers=spread_over_days(
                config.noncompliant_transfers, config.duration_days, rng
            ),
            exchange_churn=spread_over_days(
                config.exchange_churn_users, config.duration_days, rng
            ),
        )
        #: Open vault positions awaiting redemption: (owner, token id, redeem day).
        self._open_positions: List[Tuple[str, int, int]] = []

    def run_day(self, day: int) -> None:
        """Execute every distractor action scheduled for ``day``."""
        for _ in range(self.plan.position_deposits.get(day, 0)):
            self._position_deposit(day)
        self._redeem_due_positions(day)
        for _ in range(self.plan.erc1155_transfers.get(day, 0)):
            self._erc1155_transfer(day)
        for _ in range(self.plan.noncompliant_transfers.get(day, 0)):
            self._noncompliant_transfer(day)
        for _ in range(self.plan.exchange_churn.get(day, 0)):
            self._exchange_churn(day)

    # -- individual distractors -----------------------------------------------------
    def _position_deposit(self, day: int) -> None:
        if self.vault_address is None:
            return
        user = self.kit.new_account("lp")
        amount_eth = self.rng.uniform(20.0, 800.0)
        self.kit.fund_from_exchange(user, amount_eth + 2.0, day)
        timestamp = self.kit.clock.next_timestamp(day)
        try:
            tx = self.kit.chain.transact(
                sender=user,
                to=self.vault_address,
                value_wei=eth_to_wei(amount_eth),
                call=Call("deposit", {}),
                timestamp=timestamp,
            )
        except ChainError:
            return
        token_id: Optional[int] = None
        for log in tx.logs:
            if log.is_erc721_transfer:
                token_id = int(log.topics[3], 16)
        if token_id is not None and self.rng.bernoulli(0.5):
            redeem_day = min(day + self.rng.randint(2, 20), self.config.duration_days - 1)
            self._open_positions.append((user, token_id, redeem_day))

    def _redeem_due_positions(self, day: int) -> None:
        if self.vault_address is None:
            return
        due = [entry for entry in self._open_positions if entry[2] <= day]
        self._open_positions = [entry for entry in self._open_positions if entry[2] > day]
        for owner, token_id, _redeem_day in due:
            timestamp = self.kit.clock.next_timestamp(day)
            try:
                self.kit.chain.transact(
                    sender=owner,
                    to=self.vault_address,
                    call=Call("redeem", {"token_id": token_id}),
                    timestamp=timestamp,
                )
            except ChainError:
                continue

    def _erc1155_transfer(self, day: int) -> None:
        if self.erc1155_address is None:
            return
        sender = self.rng.choice(self.traders)
        recipient = self.rng.choice(self.traders)
        token_id = self.rng.randint(1, 50)
        timestamp = self.kit.clock.next_timestamp(day)
        try:
            self.kit.chain.transact(
                sender=sender,
                to=self.erc1155_address,
                call=Call("mint", {"to": sender, "token_id": token_id, "amount": 3}),
                timestamp=timestamp,
            )
            if recipient != sender:
                timestamp = self.kit.clock.next_timestamp(day)
                self.kit.chain.transact(
                    sender=sender,
                    to=self.erc1155_address,
                    call=Call(
                        "safeTransferFrom",
                        {"sender": sender, "to": recipient, "token_id": token_id, "amount": 1},
                    ),
                    timestamp=timestamp,
                )
        except ChainError:
            return

    def _noncompliant_transfer(self, day: int) -> None:
        if not self.noncompliant_addresses:
            return
        contract = self.rng.choice(self.noncompliant_addresses)
        sender = self.rng.choice(self.traders)
        recipient = self.rng.choice(self.traders)
        timestamp = self.kit.clock.next_timestamp(day)
        try:
            tx = self.kit.chain.transact(
                sender=sender,
                to=contract,
                call=Call("mint", {"to": sender}),
                timestamp=timestamp,
            )
            token_id = None
            for log in tx.logs:
                if log.is_erc721_transfer:
                    token_id = int(log.topics[3], 16)
            if token_id is not None and recipient != sender:
                timestamp = self.kit.clock.next_timestamp(day)
                self.kit.chain.transact(
                    sender=sender,
                    to=contract,
                    call=Call(
                        "transferFrom",
                        {"sender": sender, "to": recipient, "token_id": token_id},
                    ),
                    timestamp=timestamp,
                )
        except ChainError:
            return

    def _exchange_churn(self, day: int) -> None:
        trader = self.rng.choice(self.traders)
        amount = self.rng.uniform(0.5, 5.0)
        if self.kit.balance_eth(trader) < amount + 0.2:
            return
        try:
            self.kit.deposit_to_exchange(trader, amount, day)
        except ChainError:
            return
