"""Token contracts.

The paper's data collection distinguishes ERC-721 NFTs from ERC-20 and
ERC-1155 tokens by (a) the topic layout of their Transfer events and
(b) the ERC-165 ``supportsInterface(0x80ac58cd)`` compliance check.
This package provides Python implementations of all three standards,
plus a deliberately non-compliant contract used to exercise the
compliance filter.
"""

from repro.contracts.base import Contract, ERC165_INTERFACE_ID, ERC721_INTERFACE_ID, ERC1155_INTERFACE_ID
from repro.contracts.erc20 import ERC20Token
from repro.contracts.erc721 import ERC721Collection
from repro.contracts.erc1155 import ERC1155Collection
from repro.contracts.noncompliant import NonCompliantNFTContract
from repro.contracts.registry import ContractRegistry, ContractInfo

__all__ = [
    "Contract",
    "ERC165_INTERFACE_ID",
    "ERC721_INTERFACE_ID",
    "ERC1155_INTERFACE_ID",
    "ERC20Token",
    "ERC721Collection",
    "ERC1155Collection",
    "NonCompliantNFTContract",
    "ContractRegistry",
    "ContractInfo",
]
