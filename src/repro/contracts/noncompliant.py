"""A deliberately non-compliant NFT-like contract.

The paper finds that 3.2% of the contracts emitting ERC-721-shaped
Transfer events do **not** pass the ERC-165 compliance check.  This
contract reproduces that situation: it emits four-topic Transfer events
but answers ``supportsInterface(0x80ac58cd)`` with ``False`` (or, if
``broken_erc165`` is set, refuses the probe entirely), so the ingest
compliance filter must drop it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.chain.events import erc721_transfer_log
from repro.chain.types import NULL_ADDRESS
from repro.contracts.base import Contract, ERC165_INTERFACE_ID

if TYPE_CHECKING:  # pragma: no cover
    from repro.chain.context import TxContext


class NonCompliantNFTContract(Contract):
    """Emits ERC-721-shaped Transfer events without being ERC-721 compliant."""

    EXPOSED_FUNCTIONS = {"mint", "transferFrom"}
    VIEW_FUNCTIONS = {"supportsInterface", "name"}
    SUPPORTED_INTERFACES = {ERC165_INTERFACE_ID}

    def __init__(self, name: str, broken_erc165: bool = False) -> None:
        super().__init__()
        self.collection_name = name
        #: If True the contract does not even answer the ERC-165 probe,
        #: modelling contracts where the check itself reverts.
        self.broken_erc165 = broken_erc165
        self._owners: Dict[int, str] = {}
        self._next_token_id = 1

    def name(self) -> str:
        """Pseudo-collection name."""
        return self.collection_name

    def supportsInterface(self, interface_id: str) -> bool:
        """Never claims ERC-721 support; may refuse the probe entirely."""
        if self.broken_erc165:
            raise ValueError("supportsInterface is not implemented")
        return interface_id in self.SUPPORTED_INTERFACES

    def ownerOf(self, token_id: int) -> Optional[str]:
        """Owner lookup (not exposed as a view, like many ad-hoc contracts)."""
        return self._owners.get(token_id)

    def mint(self, ctx: "TxContext", to: str, token_id: Optional[int] = None) -> int:
        """Mint a pseudo-NFT, emitting an ERC-721-shaped event."""
        if token_id is None:
            token_id = self._next_token_id
        self._next_token_id = max(self._next_token_id, token_id + 1)
        self._owners[token_id] = to
        ctx.emit(erc721_transfer_log(self.bound_address, NULL_ADDRESS, to, token_id))
        return token_id

    def transferFrom(self, ctx: "TxContext", sender: str, to: str, token_id: int) -> None:
        """Move a pseudo-NFT, emitting an ERC-721-shaped event."""
        ctx.require(self._owners.get(token_id) == sender, "not the owner")
        self._owners[token_id] = to
        ctx.emit(erc721_transfer_log(self.bound_address, sender, to, token_id))
