"""ERC-721 NFT collections.

Each deployed :class:`ERC721Collection` manages one collection: the set
of NFTs minted by the same contract, identified inside it by a token id.
Transfers emit the four-topic ``Transfer`` event the paper's scan keys
on, and ``supportsInterface(0x80ac58cd)`` answers the compliance probe.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Set

from repro.chain.events import erc721_transfer_log
from repro.chain.types import NFTKey, NULL_ADDRESS
from repro.contracts.base import (
    Contract,
    ERC165_INTERFACE_ID,
    ERC721_INTERFACE_ID,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.chain.context import TxContext


class ERC721Collection(Contract):
    """A standard-compliant NFT collection."""

    EXPOSED_FUNCTIONS = {"mint", "transferFrom", "safeTransferFrom", "burn", "setApprovalForAll"}
    VIEW_FUNCTIONS = {
        "supportsInterface",
        "ownerOf",
        "balanceOf",
        "name",
        "symbol",
        "totalSupply",
    }
    SUPPORTED_INTERFACES = {ERC165_INTERFACE_ID, ERC721_INTERFACE_ID}

    def __init__(self, name: str, symbol: str, creation_timestamp: int = 0) -> None:
        super().__init__()
        self.collection_name = name
        self.collection_symbol = symbol
        #: Timestamp at which the collection was deployed; used by the
        #: temporal analysis (Fig. 5: wash trading clusters near creation).
        self.creation_timestamp = creation_timestamp
        self._owners: Dict[int, str] = {}
        self._balances: Dict[str, int] = defaultdict(int)
        self._operators: Dict[str, Set[str]] = defaultdict(set)
        self._next_token_id = 1
        self._minted = 0

    # -- views ---------------------------------------------------------------
    def ownerOf(self, token_id: int) -> Optional[str]:
        """Current owner of a token id (None if not minted or burned)."""
        return self._owners.get(token_id)

    def balanceOf(self, owner: str) -> int:
        """Number of NFTs of this collection held by ``owner``."""
        return self._balances[owner]

    def name(self) -> str:
        """Collection name."""
        return self.collection_name

    def symbol(self) -> str:
        """Collection ticker symbol."""
        return self.collection_symbol

    def totalSupply(self) -> int:
        """Number of NFTs minted so far (including burned ones)."""
        return self._minted

    def token_ids(self) -> Iterable[int]:
        """Token ids currently in existence."""
        return self._owners.keys()

    def key_of(self, token_id: int) -> NFTKey:
        """The (contract, token id) pair identifying one NFT globally."""
        return NFTKey(contract=self.bound_address, token_id=token_id)

    def is_approved(self, owner: str, operator: str) -> bool:
        """True if ``operator`` may move the NFTs of ``owner``."""
        return operator in self._operators[owner]

    # -- mutations -----------------------------------------------------------------
    def mint(self, ctx: "TxContext", to: str, token_id: Optional[int] = None) -> int:
        """Mint a new NFT to ``to`` and return its token id.

        The Transfer event is emitted from the null address, which is why
        the paper strips the null address from transaction graphs.
        """
        if token_id is None:
            token_id = self._next_token_id
        ctx.require(token_id not in self._owners, f"token {token_id} already minted")
        self._next_token_id = max(self._next_token_id, token_id + 1)
        self._owners[token_id] = to
        self._balances[to] += 1
        self._minted += 1
        ctx.emit(erc721_transfer_log(self.bound_address, NULL_ADDRESS, to, token_id))
        return token_id

    def setApprovalForAll(self, ctx: "TxContext", operator: str, approved: bool) -> None:
        """Grant or revoke an operator's right to move the caller's NFTs."""
        owner = ctx.caller
        if approved:
            self._operators[owner].add(operator)
        else:
            self._operators[owner].discard(operator)

    def transferFrom(self, ctx: "TxContext", sender: str, to: str, token_id: int) -> None:
        """Move one NFT; the caller must be the owner or an approved operator."""
        owner = self._owners.get(token_id)
        ctx.require(owner is not None, f"token {token_id} does not exist")
        ctx.require(owner == sender, f"{sender} does not own token {token_id}")
        authorised = ctx.caller == owner or ctx.caller in self._operators[owner]
        ctx.require(authorised, f"{ctx.caller} is not authorised to move token {token_id}")
        self._owners[token_id] = to
        self._balances[sender] -= 1
        self._balances[to] += 1
        ctx.emit(erc721_transfer_log(self.bound_address, sender, to, token_id))

    def safeTransferFrom(self, ctx: "TxContext", sender: str, to: str, token_id: int) -> None:
        """Alias of :meth:`transferFrom` (receiver hooks are not modelled)."""
        self.transferFrom(ctx, sender=sender, to=to, token_id=token_id)

    def burn(self, ctx: "TxContext", token_id: int) -> None:
        """Destroy an NFT owned by the caller."""
        owner = self._owners.get(token_id)
        ctx.require(owner is not None, f"token {token_id} does not exist")
        ctx.require(owner == ctx.caller, f"{ctx.caller} does not own token {token_id}")
        del self._owners[token_id]
        self._balances[owner] -= 1
        ctx.emit(erc721_transfer_log(self.bound_address, owner, NULL_ADDRESS, token_id))
