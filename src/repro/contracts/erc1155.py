"""ERC-1155 multi-token collections.

These exist in the reproduction purely as *distractors*: their transfer
events use a different signature than ERC-721, so the paper's scan (and
ours) must not pick them up.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Dict, Sequence, Tuple

from repro.chain.events import erc1155_transfer_batch_log, erc1155_transfer_log
from repro.chain.types import NULL_ADDRESS
from repro.contracts.base import (
    Contract,
    ERC165_INTERFACE_ID,
    ERC1155_INTERFACE_ID,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.chain.context import TxContext


class ERC1155Collection(Contract):
    """A minimal ERC-1155 implementation emitting TransferSingle events.

    Besides single mint/transfer it supports the batch operations real
    1155 tokenizers lean on -- ``mintBatch`` / ``burnBatch`` emit one
    ``TransferBatch`` event covering many token ids at once, the pattern
    game-item tokenizers use for inventory churn.
    """

    EXPOSED_FUNCTIONS = {
        "mint",
        "safeTransferFrom",
        "mintBatch",
        "burn",
        "burnBatch",
    }
    VIEW_FUNCTIONS = {"supportsInterface", "balanceOf", "name"}
    SUPPORTED_INTERFACES = {ERC165_INTERFACE_ID, ERC1155_INTERFACE_ID}

    def __init__(self, name: str) -> None:
        super().__init__()
        self.collection_name = name
        self._balances: Dict[Tuple[str, int], int] = defaultdict(int)

    def name(self) -> str:
        """Collection name."""
        return self.collection_name

    def balanceOf(self, owner: str, token_id: int) -> int:
        """Balance of one token id for one owner."""
        return self._balances[(owner, token_id)]

    def mint(self, ctx: "TxContext", to: str, token_id: int, amount: int) -> None:
        """Mint ``amount`` units of ``token_id`` to ``to``."""
        ctx.require(amount > 0, "mint amount must be positive")
        self._balances[(to, token_id)] += amount
        ctx.emit(
            erc1155_transfer_log(
                self.bound_address, ctx.caller, NULL_ADDRESS, to, token_id, amount
            )
        )

    def safeTransferFrom(
        self, ctx: "TxContext", sender: str, to: str, token_id: int, amount: int
    ) -> None:
        """Move units of a token id between accounts."""
        ctx.require(
            self._balances[(sender, token_id)] >= amount,
            f"{sender} holds fewer than {amount} of token {token_id}",
        )
        ctx.require(ctx.caller == sender, "only the owner may transfer in this model")
        self._balances[(sender, token_id)] -= amount
        self._balances[(to, token_id)] += amount
        ctx.emit(
            erc1155_transfer_log(
                self.bound_address, ctx.caller, sender, to, token_id, amount
            )
        )

    def burn(self, ctx: "TxContext", sender: str, token_id: int, amount: int) -> None:
        """Destroy ``amount`` units of ``token_id`` held by ``sender``."""
        ctx.require(ctx.caller == sender, "only the owner may burn in this model")
        ctx.require(
            self._balances[(sender, token_id)] >= amount,
            f"{sender} holds fewer than {amount} of token {token_id}",
        )
        self._balances[(sender, token_id)] -= amount
        ctx.emit(
            erc1155_transfer_log(
                self.bound_address, ctx.caller, sender, NULL_ADDRESS, token_id, amount
            )
        )

    def _require_batch(
        self, ctx: "TxContext", token_ids: Sequence[int], amounts: Sequence[int]
    ) -> None:
        ctx.require(len(token_ids) > 0, "batch must not be empty")
        ctx.require(
            len(token_ids) == len(amounts), "ids and amounts length mismatch"
        )
        ctx.require(
            all(amount > 0 for amount in amounts),
            "batch amounts must be positive",
        )

    def mintBatch(
        self,
        ctx: "TxContext",
        to: str,
        token_ids: Sequence[int],
        amounts: Sequence[int],
    ) -> None:
        """Mint several token ids in one call, emitting one TransferBatch."""
        self._require_batch(ctx, token_ids, amounts)
        for token_id, amount in zip(token_ids, amounts):
            self._balances[(to, token_id)] += amount
        ctx.emit(
            erc1155_transfer_batch_log(
                self.bound_address, ctx.caller, NULL_ADDRESS, to, token_ids, amounts
            )
        )

    def burnBatch(
        self,
        ctx: "TxContext",
        sender: str,
        token_ids: Sequence[int],
        amounts: Sequence[int],
    ) -> None:
        """Destroy several token ids in one call, emitting one TransferBatch."""
        self._require_batch(ctx, token_ids, amounts)
        ctx.require(ctx.caller == sender, "only the owner may burn in this model")
        for token_id, amount in zip(token_ids, amounts):
            ctx.require(
                self._balances[(sender, token_id)] >= amount,
                f"{sender} holds fewer than {amount} of token {token_id}",
            )
        for token_id, amount in zip(token_ids, amounts):
            self._balances[(sender, token_id)] -= amount
        ctx.emit(
            erc1155_transfer_batch_log(
                self.bound_address, ctx.caller, sender, NULL_ADDRESS, token_ids, amounts
            )
        )
