"""ERC-1155 multi-token collections.

These exist in the reproduction purely as *distractors*: their transfer
events use a different signature than ERC-721, so the paper's scan (and
ours) must not pick them up.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Dict, Tuple

from repro.chain.events import erc1155_transfer_log
from repro.chain.types import NULL_ADDRESS
from repro.contracts.base import (
    Contract,
    ERC165_INTERFACE_ID,
    ERC1155_INTERFACE_ID,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.chain.context import TxContext


class ERC1155Collection(Contract):
    """A minimal ERC-1155 implementation emitting TransferSingle events."""

    EXPOSED_FUNCTIONS = {"mint", "safeTransferFrom"}
    VIEW_FUNCTIONS = {"supportsInterface", "balanceOf", "name"}
    SUPPORTED_INTERFACES = {ERC165_INTERFACE_ID, ERC1155_INTERFACE_ID}

    def __init__(self, name: str) -> None:
        super().__init__()
        self.collection_name = name
        self._balances: Dict[Tuple[str, int], int] = defaultdict(int)

    def name(self) -> str:
        """Collection name."""
        return self.collection_name

    def balanceOf(self, owner: str, token_id: int) -> int:
        """Balance of one token id for one owner."""
        return self._balances[(owner, token_id)]

    def mint(self, ctx: "TxContext", to: str, token_id: int, amount: int) -> None:
        """Mint ``amount`` units of ``token_id`` to ``to``."""
        ctx.require(amount > 0, "mint amount must be positive")
        self._balances[(to, token_id)] += amount
        ctx.emit(
            erc1155_transfer_log(
                self.bound_address, ctx.caller, NULL_ADDRESS, to, token_id, amount
            )
        )

    def safeTransferFrom(
        self, ctx: "TxContext", sender: str, to: str, token_id: int, amount: int
    ) -> None:
        """Move units of a token id between accounts."""
        ctx.require(
            self._balances[(sender, token_id)] >= amount,
            f"{sender} holds fewer than {amount} of token {token_id}",
        )
        ctx.require(ctx.caller == sender, "only the owner may transfer in this model")
        self._balances[(sender, token_id)] -= amount
        self._balances[(to, token_id)] += amount
        ctx.emit(
            erc1155_transfer_log(
                self.bound_address, ctx.caller, sender, to, token_id, amount
            )
        )
