"""Contract base class and ERC-165 introspection."""

from __future__ import annotations

from typing import Any, Mapping, Optional, Set, TYPE_CHECKING

from repro.chain.errors import ContractExecutionError
from repro.chain.types import Call

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.chain.chain import Chain
    from repro.chain.context import TxContext

#: ERC-165 interface identifier of ERC-165 itself.
ERC165_INTERFACE_ID = "0x01ffc9a7"
#: ERC-165 interface identifier of ERC-721 (the paper's compliance probe).
ERC721_INTERFACE_ID = "0x80ac58cd"
#: ERC-165 interface identifier of ERC-1155.
ERC1155_INTERFACE_ID = "0xd9b67a26"


class Contract:
    """Base class for every simulated smart contract.

    Sub-classes declare the transaction-callable functions in
    ``EXPOSED_FUNCTIONS`` and the read-only ones in ``VIEW_FUNCTIONS``;
    dispatch maps the function name in a :class:`~repro.chain.types.Call`
    to a method of the same name.  ERC-165 support is expressed through
    ``SUPPORTED_INTERFACES``.
    """

    #: Function names callable through a transaction.
    EXPOSED_FUNCTIONS: Set[str] = set()
    #: Function names callable through a read-only ``eth_call``.
    VIEW_FUNCTIONS: Set[str] = {"supportsInterface"}
    #: ERC-165 interface ids this contract reports as supported.
    SUPPORTED_INTERFACES: Set[str] = {ERC165_INTERFACE_ID}

    def __init__(self) -> None:
        self.address: Optional[str] = None
        self.chain: Optional["Chain"] = None

    # -- lifecycle -----------------------------------------------------------
    def bind(self, address: str, chain: "Chain") -> None:
        """Attach the contract to its on-chain address (called on deploy)."""
        self.address = address
        self.chain = chain

    @property
    def bound_address(self) -> str:
        """The contract's address; raises if the contract is not deployed."""
        if self.address is None:
            raise RuntimeError(f"{type(self).__name__} is not deployed")
        return self.address

    # -- dispatch ---------------------------------------------------------------
    def handle(self, ctx: "TxContext", call: Call) -> Any:
        """Execute a transaction-callable function."""
        if call.function not in self.EXPOSED_FUNCTIONS:
            raise ContractExecutionError(
                self.bound_address, call.function, "unknown function"
            )
        method = getattr(self, call.function, None)
        if method is None:
            raise ContractExecutionError(
                self.bound_address, call.function, "unimplemented function"
            )
        return method(ctx, **dict(call.args))

    def view(self, function: str, args: Mapping[str, Any]) -> Any:
        """Execute a read-only function (an ``eth_call``)."""
        if function not in self.VIEW_FUNCTIONS:
            raise ValueError(f"{type(self).__name__} has no view '{function}'")
        method = getattr(self, function, None)
        if method is None:
            raise ValueError(f"{type(self).__name__} does not implement '{function}'")
        return method(**dict(args))

    # -- ERC-165 -----------------------------------------------------------------
    def supportsInterface(self, interface_id: str) -> bool:
        """ERC-165 introspection entry point."""
        return interface_id in self.SUPPORTED_INTERFACES
