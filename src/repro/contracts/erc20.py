"""ERC-20 fungible tokens.

Used for the marketplace reward tokens (LOOKS, RARI), wrapped ether and
stablecoins.  Their Transfer events carry three topics, which is exactly
what keeps them out of the paper's ERC-721 transfer scan.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Dict

from repro.chain.events import erc20_transfer_log
from repro.chain.types import NULL_ADDRESS
from repro.contracts.base import Contract, ERC165_INTERFACE_ID

if TYPE_CHECKING:  # pragma: no cover
    from repro.chain.context import TxContext


class ERC20Token(Contract):
    """A minimal but faithful ERC-20 token."""

    EXPOSED_FUNCTIONS = {"transfer", "mint", "burn"}
    VIEW_FUNCTIONS = {"supportsInterface", "balanceOf", "totalSupply", "name", "symbol"}
    # Real ERC-20 contracts generally do not implement ERC-165; keeping the
    # base ERC-165 id here only says "this contract answers the probe",
    # not that it is an NFT.
    SUPPORTED_INTERFACES = {ERC165_INTERFACE_ID}

    def __init__(self, name: str, symbol: str, decimals: int = 18) -> None:
        super().__init__()
        self.token_name = name
        self.token_symbol = symbol
        self.decimals = decimals
        self._balances: Dict[str, int] = defaultdict(int)
        self._total_supply = 0

    # -- views ------------------------------------------------------------
    def balanceOf(self, owner: str) -> int:
        """Token balance of an address (smallest units)."""
        return self._balances[owner]

    def totalSupply(self) -> int:
        """Total minted supply."""
        return self._total_supply

    def name(self) -> str:
        """Token name."""
        return self.token_name

    def symbol(self) -> str:
        """Token ticker symbol."""
        return self.token_symbol

    # -- mutations -----------------------------------------------------------
    def mint(self, ctx: "TxContext", to: str, amount: int) -> None:
        """Create new tokens for ``to`` (no access control in the simulation)."""
        ctx.require(amount >= 0, "mint amount must be non-negative")
        self._balances[to] += amount
        self._total_supply += amount
        ctx.emit(erc20_transfer_log(self.bound_address, NULL_ADDRESS, to, amount))

    def transfer(self, ctx: "TxContext", to: str, amount: int) -> None:
        """Move tokens from the caller to ``to``."""
        sender = ctx.caller
        ctx.require(amount >= 0, "transfer amount must be non-negative")
        ctx.require(
            self._balances[sender] >= amount,
            f"ERC20 balance of {sender} is below {amount}",
        )
        self._balances[sender] -= amount
        self._balances[to] += amount
        ctx.emit(erc20_transfer_log(self.bound_address, sender, to, amount))

    def burn(self, ctx: "TxContext", amount: int) -> None:
        """Destroy tokens held by the caller."""
        sender = ctx.caller
        ctx.require(
            self._balances[sender] >= amount,
            f"ERC20 balance of {sender} is below {amount}",
        )
        self._balances[sender] -= amount
        self._total_supply -= amount
        ctx.emit(erc20_transfer_log(self.bound_address, sender, NULL_ADDRESS, amount))

    # -- helpers used by other contracts -----------------------------------------
    def transfer_internal(self, ctx: "TxContext", sender: str, to: str, amount: int) -> None:
        """Move tokens on behalf of another contract (e.g. a DEX or distributor)."""
        ctx.require(
            self._balances[sender] >= amount,
            f"ERC20 balance of {sender} is below {amount}",
        )
        self._balances[sender] -= amount
        self._balances[to] += amount
        ctx.emit(erc20_transfer_log(self.bound_address, sender, to, amount))

    def mint_internal(self, ctx: "TxContext", to: str, amount: int) -> None:
        """Mint tokens on behalf of another contract (reward distributors)."""
        self._balances[to] += amount
        self._total_supply += amount
        ctx.emit(erc20_transfer_log(self.bound_address, NULL_ADDRESS, to, amount))
