"""A registry of deployed contracts and their metadata.

The analysis layer needs to resolve a contract address to a
human-readable collection name (e.g. for the "collections most affected
by wash trading" result and Fig. 5) and to know which addresses are
marketplaces, reward tokens or DeFi services.  A real study gets this
from Etherscan and marketplace APIs; the simulation fills the registry
as it deploys contracts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional


@dataclass(frozen=True)
class ContractInfo:
    """Metadata about one deployed contract."""

    address: str
    kind: str
    name: str
    creation_timestamp: int = 0

    #: Recognised values of ``kind``.
    KINDS = (
        "erc721",
        "erc20",
        "erc1155",
        "noncompliant-nft",
        "marketplace",
        "reward-distributor",
        "dex",
        "defi",
        "lending",
        "other",
    )


class ContractRegistry:
    """Address-to-metadata map for every deployed contract."""

    def __init__(self) -> None:
        self._by_address: Dict[str, ContractInfo] = {}

    def register(
        self,
        address: str,
        kind: str,
        name: str,
        creation_timestamp: int = 0,
    ) -> ContractInfo:
        """Add (or overwrite) the metadata of a deployed contract."""
        info = ContractInfo(
            address=address, kind=kind, name=name, creation_timestamp=creation_timestamp
        )
        self._by_address[address] = info
        return info

    def get(self, address: str) -> Optional[ContractInfo]:
        """Metadata of a contract address, or None."""
        return self._by_address.get(address)

    def name_of(self, address: str, default: str = "") -> str:
        """Readable name of a contract address."""
        info = self._by_address.get(address)
        return info.name if info else (default or address)

    def of_kind(self, kind: str) -> Iterable[ContractInfo]:
        """All registered contracts of one kind."""
        return [info for info in self._by_address.values() if info.kind == kind]

    def __iter__(self) -> Iterator[ContractInfo]:
        return iter(self._by_address.values())

    def __len__(self) -> int:
        return len(self._by_address)

    def __contains__(self, address: str) -> bool:
        return address in self._by_address
