"""Scenario gauntlet throughput -- the live stack under adversarial replay.

Runs the fast registered scenarios end to end (ingest + serving + parity
battery, wire tier off to keep the timing about the stack rather than
socket setup) and reports wall time and block throughput per scenario.
This is the standing answer to "how expensive is a scenario run" --
CI's scenario-smoke job budget is calibrated against these numbers.

Usage:

    PYTHONPATH=src python -m pytest benchmarks/bench_scenarios.py -q
"""

from __future__ import annotations

import time

from benchmarks.conftest import print_rows
from repro.simulation.scenarios import (
    RunOptions,
    get_scenario,
    run_scenario,
    scenario_names,
)


def gauntlet_names():
    """The quick subset: every registered scenario tagged ``fast``."""
    return [
        name for name in scenario_names() if "fast" in get_scenario(name).tags
    ]


def test_fast_scenario_gauntlet(benchmark):
    names = gauntlet_names()
    assert names, "the registry must tag at least one scenario 'fast'"

    def run_gauntlet():
        return [
            run_scenario(name, RunOptions(wire=False)) for name in names
        ]

    reports = benchmark.pedantic(run_gauntlet, rounds=1, iterations=1)

    rows = []
    for report in reports:
        assert report.ok, f"{report.scenario} failed inside the benchmark"
        rate = report.blocks / report.wall_seconds if report.wall_seconds else 0.0
        rows.append(
            (
                report.scenario,
                report.blocks,
                len(report.phases),
                sum(stats.alerts for stats in report.phases),
                sum(stats.reorgs for stats in report.phases),
                f"{report.wall_seconds:.2f}",
                f"{rate:,.0f}",
            )
        )
    print_rows(
        "Scenario gauntlet (wire off, parity on)",
        ["scenario", "blocks", "phases", "alerts", "reorgs", "wall s", "blocks/s"],
        rows,
    )


def test_soak_accelerated_clock(benchmark):
    """The day-in-the-life soak, paced hard enough for a CI smoke slot."""
    spec = get_scenario("day-in-the-life")

    def run_soak():
        return run_scenario(
            spec, RunOptions(speed=2_000_000, wire=True, shards=2)
        )

    report = benchmark.pedantic(run_soak, rounds=1, iterations=1)
    assert report.ok
    print_rows(
        "Accelerated soak (speed 2,000,000, wire on, 2 shards)",
        ["scenario", "blocks", "wire alerts", "wall s"],
        [
            (
                report.scenario,
                report.blocks,
                report.delivered_wire_alerts,
                f"{report.wall_seconds:.2f}",
            )
        ],
    )
