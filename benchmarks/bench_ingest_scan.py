"""Experiment S-ingest -- dataset construction statistics (Sec. III).

The backend-parametrized case compares the ingest cost of the two
detection paths: the legacy path consumes the dataset as-is, while the
engine path additionally builds the interned columnar transfer store
(``--backends legacy,engine`` to compare; ``engine-mp`` is skipped here
because store construction does not depend on the worker count).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_rows
from repro.engine.store import ColumnarTransferStore
from repro.ingest.dataset import build_dataset


def test_ingest_scan(benchmark, paper_world):
    dataset = benchmark(
        build_dataset, paper_world.node, paper_world.marketplace_addresses
    )
    print_rows(
        "Dataset construction (Sec. III)",
        ["statistic", "value"],
        [
            ["ERC-721-shaped Transfer events", dataset.scan.event_count],
            ["emitting contracts", dataset.scan.contract_count],
            ["ERC-165 compliant contracts", dataset.compliance.compliant_count],
            ["compliance ratio", f"{dataset.compliance.compliance_ratio:.1%}"],
            ["NFTs with transfers", dataset.nft_count],
            ["transfers retained", dataset.transfer_count],
            ["involved accounts", len(dataset.involved_accounts())],
        ],
    )
    # Shape checks: most but not all emitting contracts are compliant
    # (the paper reports 96.8%), and the compliant set excludes the planted
    # non-compliant contracts.
    assert 0.8 < dataset.compliance.compliance_ratio < 1.0
    assert dataset.nft_count > 0
    assert dataset.transfer_count >= dataset.nft_count


def test_ingest_for_backend(benchmark, paper_world, backend):
    """Ingest cost per backend: dataset alone vs. dataset + columnar store."""
    if backend == "engine-mp":
        pytest.skip("store construction is identical across worker counts")

    def ingest():
        dataset = build_dataset(paper_world.node, paper_world.marketplace_addresses)
        if backend == "engine":
            dataset.columnar_store()
        return dataset

    dataset = benchmark(ingest)
    rows = [
        ["NFTs with transfers", dataset.nft_count],
        ["transfers retained", dataset.transfer_count],
    ]
    if backend == "engine":
        store = dataset.columnar_store()
        rows += [
            ["interned accounts", store.account_count],
            ["columnar tokens", store.token_count],
            ["columnar rows", store.transfer_count],
        ]
        assert store.transfer_count == dataset.transfer_count
        assert store.token_count == dataset.nft_count
    print_rows(f"Ingest path [{backend}]", ["statistic", "value"], rows)


def test_columnar_store_build(benchmark, paper_world):
    """Cost of the store build alone, over a prebuilt dataset."""
    dataset = build_dataset(paper_world.node, paper_world.marketplace_addresses)
    store = benchmark(ColumnarTransferStore.from_dataset, dataset)
    print_rows(
        "Columnar store build",
        ["statistic", "value"],
        [
            ["interned accounts", store.account_count],
            ["tokens", store.token_count],
            ["rows", store.transfer_count],
        ],
    )
    assert store.transfer_count == dataset.transfer_count
