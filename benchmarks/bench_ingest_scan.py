"""Experiment S-ingest -- dataset construction statistics (Sec. III)."""

from __future__ import annotations

from benchmarks.conftest import print_rows
from repro.ingest.dataset import build_dataset


def test_ingest_scan(benchmark, paper_world):
    dataset = benchmark(
        build_dataset, paper_world.node, paper_world.marketplace_addresses
    )
    print_rows(
        "Dataset construction (Sec. III)",
        ["statistic", "value"],
        [
            ["ERC-721-shaped Transfer events", dataset.scan.event_count],
            ["emitting contracts", dataset.scan.contract_count],
            ["ERC-165 compliant contracts", dataset.compliance.compliant_count],
            ["compliance ratio", f"{dataset.compliance.compliance_ratio:.1%}"],
            ["NFTs with transfers", dataset.nft_count],
            ["transfers retained", dataset.transfer_count],
            ["involved accounts", len(dataset.involved_accounts())],
        ],
    )
    # Shape checks: most but not all emitting contracts are compliant
    # (the paper reports 96.8%), and the compliant set excludes the planted
    # non-compliant contracts.
    assert 0.8 < dataset.compliance.compliance_ratio < 1.0
    assert dataset.nft_count > 0
    assert dataset.transfer_count >= dataset.nft_count
