"""Experiment T1 -- Table I: per-marketplace NFTs, transactions and volume."""

from __future__ import annotations

from benchmarks.conftest import print_rows


def test_table1_nftm_overview(benchmark, paper_report):
    rows = benchmark(paper_report.table_one)
    print_rows(
        "Table I - data collected about NFTMs",
        ["NFTM", "NFTs", "Transactions", "Volume ($)"],
        [
            [row.marketplace, row.nft_count, row.transaction_count, f"{row.volume_usd:,.0f}"]
            for row in rows
        ],
    )
    by_name = {row.marketplace: row for row in rows}
    # Shape check: OpenSea is the busiest venue by NFT and transaction count.
    assert by_name["OpenSea"].nft_count == max(row.nft_count for row in rows)
    assert by_name["OpenSea"].transaction_count == max(row.transaction_count for row in rows)
