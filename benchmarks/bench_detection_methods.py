"""Experiment S-detect -- per-method confirmation counts (Sec. IV-C)."""

from __future__ import annotations

from benchmarks.conftest import print_rows
from repro.core.activity import DetectionMethod


def test_detection_method_counts(benchmark, paper_report):
    counts = benchmark(paper_report.result.count_by_method)
    funder_kinds = paper_report.result.funder_kind_counts()
    exit_kinds = paper_report.result.exit_kind_counts()
    print_rows(
        "Confirmation technique counts (Sec. IV-C)",
        ["method", "activities confirmed"],
        [[method.value, count] for method, count in sorted(counts.items(), key=lambda kv: kv[0].value)],
    )
    print_rows(
        "Common funder / exit internal vs external split",
        ["technique", "internal", "external"],
        [
            ["common-funder", funder_kinds["internal"], funder_kinds["external"]],
            ["common-exit", exit_kinds["internal"], exit_kinds["external"]],
        ],
    )
    # Shape checks: funder and exit confirm most activities, zero-risk is a
    # small class, self-trades exist.
    assert counts[DetectionMethod.COMMON_FUNDER] > counts.get(DetectionMethod.ZERO_RISK, 0)
    assert counts[DetectionMethod.COMMON_EXIT] > counts.get(DetectionMethod.ZERO_RISK, 0)
    assert counts.get(DetectionMethod.SELF_TRADE, 0) > 0
