"""Experiment S-detect -- per-method confirmation counts (Sec. IV-C)."""

from __future__ import annotations

from benchmarks.conftest import print_rows
from repro.core.activity import DetectionMethod
from repro.core.detectors.pipeline import WashTradingPipeline


def test_detection_method_counts(benchmark, paper_report):
    counts = benchmark(paper_report.result.count_by_method)
    funder_kinds = paper_report.result.funder_kind_counts()
    exit_kinds = paper_report.result.exit_kind_counts()
    print_rows(
        "Confirmation technique counts (Sec. IV-C)",
        ["method", "activities confirmed"],
        [[method.value, count] for method, count in sorted(counts.items(), key=lambda kv: kv[0].value)],
    )
    print_rows(
        "Common funder / exit internal vs external split",
        ["technique", "internal", "external"],
        [
            ["common-funder", funder_kinds["internal"], funder_kinds["external"]],
            ["common-exit", exit_kinds["internal"], exit_kinds["external"]],
        ],
    )
    # Shape checks: funder and exit confirm most activities, zero-risk is a
    # small class, self-trades exist.
    assert counts[DetectionMethod.COMMON_FUNDER] > counts.get(DetectionMethod.ZERO_RISK, 0)
    assert counts[DetectionMethod.COMMON_EXIT] > counts.get(DetectionMethod.ZERO_RISK, 0)
    assert counts.get(DetectionMethod.SELF_TRADE, 0) > 0


def test_volume_match_ablation(benchmark, paper_world, paper_report):
    """Opting into the volume-matching detector adds confirmations without
    disturbing any of the paper's five techniques (kernel engine)."""
    methods = frozenset(DetectionMethod.paper_methods()) | {
        DetectionMethod.VOLUME_MATCH
    }
    pipeline = WashTradingPipeline(
        labels=paper_world.labels,
        is_contract=paper_world.is_contract,
        engine="kernel",
        enabled_methods=methods,
    )
    from repro.ingest.dataset import build_dataset

    dataset = build_dataset(paper_world.node, paper_world.marketplace_addresses)
    result = benchmark.pedantic(
        lambda: pipeline.run(dataset), iterations=1, rounds=3
    )
    counts = result.count_by_method()
    baseline = paper_report.result.count_by_method()
    print_rows(
        "Confirmation counts with volume matching enabled (kernel engine)",
        ["method", "activities confirmed"],
        [
            [method.value, count]
            for method, count in sorted(counts.items(), key=lambda kv: kv[0].value)
        ],
    )
    assert counts.get(DetectionMethod.VOLUME_MATCH, 0) > 0
    for method in DetectionMethod.paper_methods():
        assert counts.get(method, 0) == baseline.get(method, 0)
