"""Experiment T3 -- Table III: token rewards and wash trading."""

from __future__ import annotations

from benchmarks.conftest import print_rows


def test_table3_token_rewards(benchmark, paper_report):
    columns = benchmark(paper_report.table_three)
    print_rows(
        "Table III - token reward and wash trading",
        ["NFTM", "outcome", "#events", "min vol", "max vol", "mean vol (ETH)",
         "max gain/loss ($)", "mean gain/loss ($)", "total ($)"],
        [
            [
                column.marketplace,
                column.outcome,
                column.event_count,
                f"{column.min_volume_eth:,.2f}",
                f"{column.max_volume_eth:,.2f}",
                f"{column.mean_volume_eth:,.2f}",
                f"{column.extreme_gain_or_loss_usd:,.0f}",
                f"{column.mean_gain_or_loss_usd:,.0f}",
                f"{column.total_gain_or_loss_usd:,.0f}",
            ]
            for column in columns
        ],
    )
    by_key = {(c.marketplace, c.outcome): c for c in columns}
    looks_ok = by_key[("LooksRare", "successful")]
    looks_ko = by_key[("LooksRare", "failed")]
    # Shape checks: most LooksRare operations succeed; total gains dwarf
    # total losses; mean LooksRare volume exceeds mean Rarible volume.
    assert looks_ok.event_count > looks_ko.event_count
    assert looks_ok.total_gain_or_loss_usd > abs(looks_ko.total_gain_or_loss_usd)
    assert looks_ok.mean_volume_eth > by_key[("Rarible", "successful")].mean_volume_eth
